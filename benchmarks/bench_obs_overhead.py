"""OBS — telemetry overhead: the unified registry/tracing layer must be
near-free when tracing is off.

Four modes over the same batch-clean workload:

``baseline``
    instrumentation stubbed out (``trace.span`` and
    ``trace.current_ids`` replaced with no-ops, ``Histogram.observe``
    patched to a pass) — what the code would cost had the telemetry
    layer never been written; measured wall-clock (median of several
    GC-controlled runs);
``disabled``
    the shipped default: tracing off (``span()`` returns the NOOP
    singleton after one module-flag check), metrics registry live;
``scraped``
    the disabled default plus a Prometheus scraper hitting the process
    once per second (each scrape = ``record_snapshot()`` + ``dump()``
    + ``promfmt.render()`` — what the ``/metrics?format=prometheus``
    handler runs);
``enabled``
    full span export to a JSONL file at sample rate 1.0 — the
    worst-case tracing cost, recorded for the trajectory (no
    assertion: enabling tracing is allowed to cost something);
    measured wall-clock.

The CI ``obs`` leg asserts through ``check_bench_json.py
--obs-overhead 0.02`` that ``disabled`` *and* ``scraped`` throughput
stay within 2% of ``baseline`` — the telemetry layer may not tax the
chase hot path when nobody is tracing, and being monitored must stay
in the same budget.

**Why the disabled row is constructed, not raced.** A 2% bound is far
below the wall-clock noise a shared CI box shows at this timescale:
this workload's run-to-run coefficient of variation is 6-13% even with
GC collected before and disabled during each timed region, and the
noise is multi-second contention epochs, so neither best-of-N nor
paired back-to-back ratios converge (both produced phantom overheads
of 4-12% on identical code). The disabled cost is therefore built
from two *deterministic* measurements:

1. **Exact call counts** — counting shims around the three disabled-
   mode instrument primitives (``trace.span``, ``trace.current_ids``,
   ``Histogram.observe``) during one clean run. The chase is
   deterministic, so the counts are too.
2. **Stable per-call costs** — tight-loop timing of each primitive
   exactly as the hot paths invoke it, min over several repeats. A
   loop minimum is noise-immune on a contended box: any interference-
   free window achieves the true cost. Loop overhead is left in,
   overstating the cost (conservative — the guard only gets stricter).

``disabled`` seconds = baseline median + Σ(count × per-call cost).
This fails exactly when it should: someone makes a disabled primitive
allocate, take a lock it didn't, or multiplies the call sites on the
hot path — and never because the box had a loud neighbour.

``scraped`` is built the same way: tight-loop the full scrape path
(min over repeats), then charge one scrape per second of disabled
runtime — ``scraped = disabled × (1 + per-scrape cost × 1 Hz)``.
A scrape that starts holding registry locks long enough to matter, or
a renderer that goes quadratic in metric count, moves this row past
the 2% fence.
"""

from __future__ import annotations

import gc
import os
import statistics
import time
from contextlib import contextmanager

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_json, save_table
from repro.obs import metrics as metrics_mod
from repro.obs import promfmt
from repro.obs import trace as trace_mod
from repro.scenarios import uk_customers as uk

QUICK = os.environ.get("CERFIX_BENCH_QUICK", "") == "1"

ROWS = 300 if QUICK else 1_000
RUNS = 5 if QUICK else 7  # wall-clock medians (baseline, enabled)
MICRO_N = 20_000 if QUICK else 50_000  # tight-loop iterations per repeat
MICRO_REPS = 3 if QUICK else 5
WORKERS = 1  # serial: one process, no pool jitter in the counts
MASTER_SIZE = 40
RATE = 0.15

MODES = ("baseline", "disabled", "scraped", "enabled")
SCRAPE_HZ = 1.0  # the Prometheus cadence the scraped row charges for
SCRAPE_N = 20 if QUICK else 50  # scrapes per tight-loop repeat


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "OBS — telemetry overhead: batch clean per instrumentation mode",
        ("rows", "mode", "workers", "seconds", "tuples/s"),
    )
    yield result
    result.note("baseline = instrumentation stubbed out; disabled = shipped default")
    result.note("disabled seconds = baseline + call counts x tight-loop per-call cost")
    result.note("scraped = disabled + a 1/s Prometheus scraper (snapshot+dump+render)")
    result.note("acceptance: disabled AND scraped within 2% of baseline (--obs-overhead 0.02)")
    save_table(result, "obs_overhead.txt")
    save_json(result, "BENCH_obs.json")


@pytest.fixture(scope="module")
def workload():
    master = uk.generate_master(MASTER_SIZE, seed=7)
    return master, uk.generate_workload(master, ROWS, rate=RATE, seed=8)


@contextmanager
def _instrumented_out():
    """Stub the telemetry call sites the obs layer added to hot paths.

    Call sites late-bind through the module (``trace.span``) and the
    class (``Histogram.observe``), so patching here reaches the chase,
    the executor, the session and the audit bridge without touching
    them."""
    saved_span = trace_mod.span
    saved_ids = trace_mod.current_ids
    saved_observe = metrics_mod.Histogram.observe
    trace_mod.span = lambda name, **attrs: trace_mod.NOOP
    trace_mod.current_ids = lambda: (None, None)
    metrics_mod.Histogram.observe = lambda self, seconds: None
    try:
        yield
    finally:
        trace_mod.span = saved_span
        trace_mod.current_ids = saved_ids
        metrics_mod.Histogram.observe = saved_observe


@contextmanager
def _counting():
    """Count primitive invocations without changing their behaviour."""
    counts = {"span": 0, "current_ids": 0, "observe": 0}
    saved_span = trace_mod.span
    saved_ids = trace_mod.current_ids
    saved_observe = metrics_mod.Histogram.observe

    def span(name, **attrs):
        counts["span"] += 1
        return saved_span(name, **attrs)

    def current_ids():
        counts["current_ids"] += 1
        return saved_ids()

    def observe(self, seconds):
        counts["observe"] += 1
        saved_observe(self, seconds)

    trace_mod.span = span
    trace_mod.current_ids = current_ids
    metrics_mod.Histogram.observe = observe
    try:
        yield counts
    finally:
        trace_mod.span = saved_span
        trace_mod.current_ids = saved_ids
        metrics_mod.Histogram.observe = saved_observe


def _percall_seconds() -> dict[str, float]:
    """Disabled-mode cost of each primitive, as the hot paths call it.

    Min over repeats of an N-iteration loop: immune to contention
    (any quiet window achieves true cost), loop overhead left in
    (conservative)."""

    def best(loop) -> float:
        times = []
        for _ in range(MICRO_REPS):
            started = time.perf_counter()
            loop(MICRO_N)
            times.append((time.perf_counter() - started) / MICRO_N)
        return min(times)

    def span_loop(n):
        span = trace_mod.span
        for _ in range(n):
            with span("bench", probes=1):
                pass

    def ids_loop(n):
        current_ids = trace_mod.current_ids
        for _ in range(n):
            current_ids()

    hist = metrics_mod.get_registry().histogram("cerfix.bench.obs_probe_seconds")

    def observe_loop(n):
        observe = hist.observe
        for _ in range(n):
            observe(0.00123)

    assert not trace_mod.enabled()
    return {
        "span": best(span_loop),
        "current_ids": best(ids_loop),
        "observe": best(observe_loop),
    }


def _per_scrape_seconds() -> float:
    """Cost of one ``/metrics?format=prometheus`` scrape of this
    process' (workload-populated) registry — snapshot, dump, render.

    Min over tight-loop repeats, same rationale as
    :func:`_percall_seconds`. The history ring is bounded, so looping
    scrapes does not grow the registry."""
    registry = metrics_mod.get_registry()
    times = []
    for _ in range(MICRO_REPS):
        started = time.perf_counter()
        for _ in range(SCRAPE_N):
            registry.record_snapshot()
            promfmt.render(registry.dump())
        times.append((time.perf_counter() - started) / SCRAPE_N)
    return min(times)


def test_obs_overhead(table, workload, tmp_path_factory):
    master, wl = workload
    span_file = tmp_path_factory.mktemp("obs") / "spans.jsonl"

    def clean_once() -> float:
        engine = CerFix(uk.paper_ruleset(), master)
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        result = engine.clean_relation(wl.dirty, wl.clean, workers=WORKERS)
        elapsed = time.perf_counter() - started
        gc.enable()
        assert result.report.completed == ROWS
        return elapsed

    trace_mod.disable()  # a stray CERFIX_TRACE must not skew "disabled"
    clean_once()  # warm-up: imports, first-touch allocations, caches

    # Deterministic inputs to the disabled-mode estimate.
    with _counting() as counts:
        clean_once()
    assert counts["span"] > 0 and counts["observe"] > 0
    percall = _percall_seconds()
    per_scrape = _per_scrape_seconds()

    # Wall-clock medians for the measured modes.
    with _instrumented_out():
        base_med = statistics.median(clean_once() for _ in range(RUNS))
    trace_mod.configure(str(span_file), 1.0)
    try:
        enabled_med = statistics.median(clean_once() for _ in range(RUNS))
    finally:
        trace_mod.disable()

    instrument_cost = sum(counts[k] * percall[k] for k in counts)
    disabled_secs = base_med + instrument_cost
    estimate = {
        "baseline": base_med,
        "disabled": disabled_secs,
        # one scrape per second of runtime, each costing per_scrape
        "scraped": disabled_secs * (1.0 + SCRAPE_HZ * per_scrape),
        "enabled": enabled_med,
    }
    table.note(
        "counts/run: "
        + ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
        + "; per-call ns: "
        + ", ".join(f"{k}={percall[k] * 1e9:.0f}" for k in sorted(percall))
    )
    table.note(
        f"scraped = disabled + {SCRAPE_HZ:g}/s scrapes at "
        f"{per_scrape * 1e3:.2f} ms/scrape (snapshot+dump+render)"
    )

    for mode in MODES:
        secs = estimate[mode]
        table.add(ROWS, mode, WORKERS, f"{secs:.3f}", f"{ROWS / secs:.0f}")

    # The enabled run must actually have exported spans (otherwise the
    # "worst case" row measured nothing).
    assert span_file.exists() and span_file.stat().st_size > 0
