"""Benchmark-local pytest plumbing.

Adds the ``--store`` axis: restrict store-sweeping benches (B2 in
``bench_batch_throughput.py``) to one master-store backend, e.g.::

    pytest benchmarks/bench_batch_throughput.py --store sharded
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--store",
        action="store",
        default="all",
        choices=("all", "single", "sharded", "sqlite"),
        help="master store backend to sweep (default: all)",
    )


@pytest.fixture(scope="module")
def store_axis(request):
    return request.config.getoption("--store")
