"""B3 — async entry service: concurrency sweep vs the serial surface.

The point-of-entry scenario (paper §1) at load: many users entering
dirty tuples at once. This bench drives the async entry service
(:mod:`repro.service`) with the shared load generator across a
concurrency sweep (1 → 64 in-flight sessions) and compares against the
**single-session serial baseline** — the pre-existing synchronous
``http.server`` explorer (`repro.explorer.web`), which serializes every
request through one handler thread and shares nothing between sessions.
An in-process `StreamProcessor` row is recorded as the no-HTTP
reference ceiling.

Per point we record throughput, client latency percentiles, the shared
probe-cache hit rate, suggestion-memo hit rate, coalesced/batched probe
counts and 429 retries. One extra point runs ``dispatch="executor"``
so the micro-batcher's coalescing counters are exercised through HTTP
(under the default ``auto`` dispatch a single-core host runs sessions
inline on the loop, where probes take the direct path).

Acceptance (ISSUE 4): async throughput at 32+ concurrent sessions must
be >= 3x the single-session serial baseline on the same machine. The
JSON snapshot lands in ``BENCH_service.json`` at the repo root.
"""

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_json, save_table, time_call
from repro.explorer.web import serve as serve_sync
from repro.scenarios import uk_customers as uk
from repro.service.loadgen import run_load

SESSIONS = 256
MASTER_SIZE = 40   # small population -> duplicate-heavy entry traffic
RATE = 0.15
CONCURRENCY_SWEEP = (1, 2, 4, 8, 16, 32, 64)
ACCEPT_AT = 32     # the >= 3x gate applies from this concurrency up
TARGET = 3.0
REPEAT = 2         # best-of runs per point (loopback jitter)


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "B3 — async entry service: concurrency sweep vs serial baseline",
        ("point", "sessions/s", "vs serial", "p50 ms", "p95 ms",
         "cache hits", "memo hits", "coalesced", "batches", "429 retries"),
    )
    yield result
    result.note("serial baseline = the sync http.server explorer driven one "
                "session at a time (the pre-PR entry surface; no shared caches)")
    result.note("stream = in-process StreamProcessor (no HTTP) — the transport-free ceiling")
    result.note(f"acceptance: async throughput at {ACCEPT_AT}+ concurrent sessions "
                f">= {TARGET}x the serial baseline")
    save_table(result, "b3_service_load.txt")
    save_json(result, "BENCH_service.json")


@pytest.fixture(scope="module")
def workload():
    master = uk.generate_master(MASTER_SIZE, seed=81)
    wl = uk.generate_workload(master, SESSIONS, rate=RATE, seed=82)
    rows = [r.to_dict() for r in wl.dirty.rows()]
    truth = [r.to_dict() for r in wl.clean.rows()]
    return master, wl, rows, truth


def _drive_async(master, rows, truth, concurrency, **service_options):
    """Best-of-REPEAT load runs against a fresh service per run."""
    best = None
    metrics = None
    for _ in range(REPEAT):
        engine = CerFix(uk.paper_ruleset(), master)
        server = engine.serve_async(port=0, **service_options)
        try:
            report = run_load(server.url, rows, truth, concurrency=concurrency)
            assert report.dropped == 0 and not report.errors
            if best is None or report.throughput > best.throughput:
                best = report
                metrics = server.service.metrics_json()
        finally:
            server.close()
    return best, metrics


def test_service_concurrency_sweep(table, workload):
    master, wl, rows, truth = workload

    # -- reference ceiling: in-process stream (no HTTP at all) --------------
    def stream_once():
        return CerFix(uk.paper_ruleset(), master).stream(wl.dirty, wl.clean)

    t_stream, stream_report = time_call(stream_once, repeat=1)
    assert stream_report.completed == SESSIONS
    table.add("stream (in-process)", f"{SESSIONS / t_stream:.0f}", "-",
              "-", "-", "-", "-", "-", "-", "-")

    # -- the serial baseline: sync http.server, one session at a time ------
    serial = None
    for _ in range(REPEAT + 1):  # one extra: the baseline sets the bar
        engine = CerFix(uk.paper_ruleset(), master)
        sync_server = serve_sync(engine, port=0)
        try:
            report = run_load(sync_server.url, rows, truth, concurrency=1)
            assert report.dropped == 0 and not report.errors
            if serial is None or report.throughput > serial.throughput:
                serial = report
        finally:
            sync_server.close()
    baseline = serial.throughput
    table.add("serial (sync http.server)", f"{baseline:.0f}", "1.00x",
              f"{serial.latency_percentile(.5) * 1000:.1f}",
              f"{serial.latency_percentile(.95) * 1000:.1f}",
              "-", "-", "-", "-", serial.retries_429)

    # -- the async sweep ----------------------------------------------------
    ratios = {}
    for concurrency in CONCURRENCY_SWEEP:
        report, metrics = _drive_async(master, rows, truth, concurrency)
        ratio = report.throughput / baseline
        ratios[concurrency] = ratio
        cache = metrics["probe_cache"]
        memo = metrics["suggestion_memo"]
        table.add(
            f"async c={concurrency} ({metrics['dispatch']})",
            f"{report.throughput:.0f}",
            f"{ratio:.2f}x",
            f"{report.latency_percentile(.5) * 1000:.1f}",
            f"{report.latency_percentile(.95) * 1000:.1f}",
            f"{cache['hit_rate']:.0%}",
            f"{memo['hit_rate']:.0%}",
            metrics["probes"]["coalesced"],
            metrics["probes"]["batches"],
            report.retries_429,
        )
        assert cache["hits"] > 0, "shared probe cache never hit"

    # -- coalescing through HTTP: force executor dispatch -------------------
    report, metrics = _drive_async(
        master, rows, truth, 32, dispatch="executor", batch_window_ms=2.0
    )
    table.add(
        "async c=32 (executor)",
        f"{report.throughput:.0f}",
        f"{report.throughput / baseline:.2f}x",
        f"{report.latency_percentile(.5) * 1000:.1f}",
        f"{report.latency_percentile(.95) * 1000:.1f}",
        f"{metrics['probe_cache']['hit_rate']:.0%}",
        f"{metrics['suggestion_memo']['hit_rate']:.0%}",
        metrics["probes"]["coalesced"],
        metrics["probes"]["batches"],
        report.retries_429,
    )
    assert metrics["probes"]["batches"] > 0, "micro-batching never engaged"

    # -- acceptance ---------------------------------------------------------
    for concurrency in CONCURRENCY_SWEEP:
        if concurrency >= ACCEPT_AT:
            assert ratios[concurrency] >= TARGET, (
                f"async at {concurrency} concurrent sessions is only "
                f"{ratios[concurrency]:.2f}x the serial baseline (need {TARGET}x)"
            )
