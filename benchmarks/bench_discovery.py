"""X1 — constraint discovery: the rule-bootstrap pipeline.

Extension experiment (DESIGN.md §3 allows ablations beyond the paper's
figures): the demo notes rules can be "derived from cfds and matching
dependencies for which discovery algorithms are already in place" — we
built those algorithms, so this bench measures them: discovery cost vs
sample size, and the *equivalence gate* — rules derived from mined
constraints must chase dirty tuples to the same fixes as the
hand-written scenario rules.
"""

import pytest

from repro import RuleSet
from repro.bench.harness import BenchResult, save_table, time_call
from repro.core.chase import chase
from repro.discovery.cfd import discover_constant_cfds
from repro.discovery.fd import discover_fds
from repro.discovery.md import discover_mds
from repro.master.manager import MasterDataManager
from repro.rules.derive import editing_rules_from_cfds, editing_rules_from_md
from repro.scenarios import hospital

SAMPLE_SIZES = (100, 400, 1600)

VOCAB_TARGETS = ["measure_name", "condition", "category", "state_name", "county_code"]
VOCAB_LHS = ["measure_code", "state", "county"]


@pytest.fixture(scope="module")
def master():
    return hospital.generate_master(60, seed=21)


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "X1 — discovery: cost vs sample size (hospital scenario)",
        ("sample rows", "FDs", "constant CFDs", "CFD rows", "MDs", "seconds"),
    )
    yield result
    result.note("extension: the 'discovery algorithms already in place' of paper §2")
    save_table(result, "x1_discovery.txt")


@pytest.mark.parametrize("n", SAMPLE_SIZES)
def test_discovery_cost(benchmark, table, master, n):
    sample = hospital.clean_inputs_from_master(master, n, seed=22)
    by_id = {r["provider_id"]: r for r in master.rows()}
    pairs = [(t.to_dict(), by_id[t["provider_id"]]) for t in sample.rows()][:150]

    def run():
        fds = discover_fds(sample, max_lhs=1, targets=VOCAB_TARGETS)
        cfds = discover_constant_cfds(
            sample, max_lhs=1, min_support=3,
            lhs_candidates=VOCAB_LHS, targets=VOCAB_TARGETS,
        )
        mds = discover_mds(pairs, md_id="provider")
        return fds, cfds, mds

    fds, cfds, mds = benchmark.pedantic(run, rounds=2, iterations=1)
    seconds, _ = time_call(run, repeat=1)
    rows = sum(len(c.tableau) for c in cfds)
    table.add(n, len(fds), len(cfds), rows, len(mds), f"{seconds:.3f}")
    assert cfds and mds


def test_mined_rules_equivalent_to_handwritten(benchmark, table, master):
    """The equivalence gate: mined-and-derived rules produce the same
    certain fixes as the scenario's hand-written rule set."""
    sample = hospital.clean_inputs_from_master(master, 800, seed=23)
    by_id = {r["provider_id"]: r for r in master.rows()}
    pairs = [(t.to_dict(), by_id[t["provider_id"]]) for t in sample.rows()][:150]

    cfds = discover_constant_cfds(
        sample, max_lhs=2, min_support=3,
        lhs_candidates=["measure_code", "state", "county"],
        targets=VOCAB_TARGETS + ["stateavg"],
    )
    md = next(
        m for m in discover_mds(pairs, md_id="provider")
        if m.md_id == "provider_provider_id"
    )
    mined = RuleSet(
        editing_rules_from_cfds(cfds) + editing_rules_from_md(md),
        hospital.INPUT_SCHEMA,
        hospital.MASTER_SCHEMA,
    )
    handwritten = hospital.hospital_ruleset()
    manager = MasterDataManager(master)

    workload = hospital.generate_workload(master, 60, rate=0.3, seed=24)
    validated = ["provider_id", "measure_code", "score", "sample"]

    def chase_both():
        agreements = 0
        for dirty_row, clean_row in zip(workload.dirty.rows(), workload.clean.rows()):
            a = chase(dirty_row.to_dict(), validated, mined, manager)
            b = chase(dirty_row.to_dict(), validated, handwritten, manager)
            if a.values == b.values == clean_row.to_dict():
                agreements += 1
        return agreements

    agreements = benchmark.pedantic(chase_both, rounds=1, iterations=1)
    assert agreements == 60
    table.add("(equivalence)", "-", len(cfds), "-", 1, f"{agreements}/60 fixes identical")
