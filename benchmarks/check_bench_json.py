"""Validate ``BENCH_*.json`` dumps against the harness schema.

The bench-smoke CI leg runs every benchmark in quick mode and then
checks each JSON snapshot it produced: a bench that silently wrote an
empty table (fixture skipped, sweep filtered to nothing, exception
swallowed by a plugin) must fail the leg, not land as a hollow
"performance trail" commit.

With ``--baseline`` the checker also guards against throughput
regressions, over the (rows, mode, workers) configurations the fresh
dump shares with the committed snapshot (the full B1 sweep keeps the
quick sweep's 300-row point precisely so this intersection is never
empty — batch throughput is size-dependent, so only same-size rows are
comparable):

* **stream** rows are compared absolutely — fresh tuples/s must stay
  within ``--max-regression`` (default 30%) of the baseline;
* **batch** rows are compared relative to the stream anchor at the
  same relation size: the baseline expectation is scaled by
  ``fresh_stream / base_stream`` (capped at 1.0) before applying the
  tolerance, so a slower machine lowers the bar proportionally while
  a batch-layer regression (disabled cache, broken planner dedup)
  still fails — batch fell against the stream measured in the *same*
  run, and no amount of machine noise explains that away.

With ``--remote-baseline`` the same guard covers the B5 remote dump,
keyed on (mode, probes) with ``naive per-probe`` as the anchor (the
full B5 sweep replays the quick-geometry workload so the intersection
with CI's quick run is never empty — see
:func:`check_remote_regression`).

The wide tolerance absorbs scheduling noise; a real perf bug blows
straight through it.

Usage::

    python benchmarks/check_bench_json.py BENCH_batch.json BENCH_remote.json
    python benchmarks/check_bench_json.py --all   # every BENCH_*.json in cwd
    python benchmarks/check_bench_json.py BENCH_batch.json \
        --baseline committed_BENCH_batch.json --max-regression 0.30
    python benchmarks/check_bench_json.py BENCH_remote.json \
        --remote-baseline committed_BENCH_remote.json

Checks per file: valid JSON; ``experiment``/``headers``/``rows``/
``machine`` present; headers non-empty strings; at least one row; every
row carries exactly the header keys with non-empty values; machine
records python/platform/cpus.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def check_file(path: Path) -> list[str]:
    """All schema violations found in one dump (empty = good)."""
    problems: list[str] = []
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    if not isinstance(obj, dict):
        return [f"top level is {type(obj).__name__}, expected object"]

    experiment = obj.get("experiment")
    if not isinstance(experiment, str) or not experiment.strip():
        problems.append("'experiment' missing or empty")

    headers = obj.get("headers")
    if (
        not isinstance(headers, list)
        or not headers
        or not all(isinstance(h, str) and h.strip() for h in headers)
    ):
        problems.append("'headers' must be a non-empty list of non-empty strings")
        headers = None

    rows = obj.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("'rows' missing or empty — a silently-empty bench dump")
    elif headers is not None:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"row {i} is {type(row).__name__}, expected object")
                continue
            if set(row) != set(headers):
                problems.append(f"row {i} keys {sorted(row)} != headers {sorted(headers)}")
            empty = [k for k, v in row.items() if v is None or v == ""]
            if empty:
                problems.append(f"row {i} has empty cells: {empty}")

    machine = obj.get("machine")
    if not isinstance(machine, dict) or not all(
        machine.get(k) for k in ("python", "platform", "cpus")
    ):
        problems.append("'machine' must record python/platform/cpus")
    return problems


def _throughputs(obj: dict) -> dict[tuple[int, str, int], float]:
    """tuples/s per (rows, mode, workers) configuration.

    Tolerates rows the schema checker would flag (it runs first); rows
    without a parseable throughput are skipped.
    """
    out: dict[tuple[int, str, int], float] = {}
    for row in obj.get("rows", ()):
        if not isinstance(row, dict):
            continue
        try:
            key = (int(row["rows"]), str(row["mode"]), int(row["workers"]))
            out[key] = float(str(row["tuples/s"]).replace(",", ""))
        except (KeyError, TypeError, ValueError):
            continue
    return out


def check_regression(
    fresh_path: Path, baseline_path: Path, max_regression: float
) -> list[str]:
    """Throughput drops beyond tolerance, per configuration (empty = good)."""
    try:
        fresh = _throughputs(json.loads(fresh_path.read_text(encoding="utf-8")))
    except (OSError, ValueError) as exc:
        return [f"fresh dump unreadable: {exc}"]
    try:
        base = _throughputs(json.loads(baseline_path.read_text(encoding="utf-8")))
    except (OSError, ValueError) as exc:
        return [f"baseline unreadable: {exc}"]

    shared = sorted(set(fresh) & set(base))
    if not shared:
        return [
            f"no comparable (rows, mode, workers) configurations between "
            f"{fresh_path} and {baseline_path} — refresh the committed "
            f"baseline with a sweep that includes the quick sizes"
        ]
    # Per-size stream anchors: batch expectations scale with how fast
    # *this* machine runs the stream path on the same relation size,
    # measured in the same fresh dump (capped at 1.0 — a faster box
    # only ever relaxes the bar, it is never required to be faster).
    fresh_stream = {r: v for (r, m, _), v in fresh.items() if m == "stream"}
    base_stream = {r: v for (r, m, _), v in base.items() if m == "stream"}

    problems = []
    floor_share = 1.0 - max_regression
    for rows, mode, workers in shared:
        got = fresh[(rows, mode, workers)]
        if mode == "stream":
            scale, anchor = 1.0, ""
        else:
            f_anchor, b_anchor = fresh_stream.get(rows), base_stream.get(rows)
            scale = min(1.0, f_anchor / b_anchor) if f_anchor and b_anchor else 1.0
            anchor = f" (stream-anchored x{scale:.2f})"
        expected = base[(rows, mode, workers)] * scale
        if got < expected * floor_share:
            problems.append(
                f"{mode} @ {rows} rows, {workers} worker(s): {got:.0f} tuples/s "
                f"is below {floor_share:.0%} of the baseline "
                f"{expected:.0f} tuples/s{anchor}"
            )
    return problems


def _remote_throughputs(obj: dict) -> dict[tuple[str, int], float]:
    """probes/s per (mode, probes) configuration (B5 remote dumps).

    Rows without a parseable probes/s cell (the end-to-end pipeline row
    reports tuples, the failover row reports failover counts in other
    columns) are skipped — they are trajectory records, not guard rows.
    """
    out: dict[tuple[str, int], float] = {}
    for row in obj.get("rows", ()):
        if not isinstance(row, dict):
            continue
        try:
            key = (str(row["mode"]), int(row["probes"]))
            out[key] = float(str(row["probes/s"]).replace(",", ""))
        except (KeyError, TypeError, ValueError):
            continue
    return out


def check_remote_regression(
    fresh_path: Path, baseline_path: Path, max_regression: float
) -> list[str]:
    """Remote probe-throughput drops beyond tolerance (empty = good).

    The B5 analogue of :func:`check_regression`: configurations are
    keyed on (mode, probes) — probe throughput depends on workload
    size, so only same-size rows compare — and the full sweep replays
    the quick geometry precisely so this intersection is never empty.
    ``naive per-probe`` rows are compared absolutely; batched/replicated
    rows are anchored on the naive row at the same probes count from
    the *same* fresh dump (capped at 1.0): a slower network stack or
    machine lowers the bar proportionally, while a batching regression
    (chunking disabled, router degraded to per-probe trips) still
    fails — batched fell against naive measured in the same run.
    """
    try:
        fresh = _remote_throughputs(json.loads(fresh_path.read_text(encoding="utf-8")))
    except (OSError, ValueError) as exc:
        return [f"fresh dump unreadable: {exc}"]
    try:
        base = _remote_throughputs(
            json.loads(baseline_path.read_text(encoding="utf-8"))
        )
    except (OSError, ValueError) as exc:
        return [f"baseline unreadable: {exc}"]

    shared = sorted(set(fresh) & set(base))
    if not shared:
        return [
            f"no comparable (mode, probes) configurations between "
            f"{fresh_path} and {baseline_path} — refresh the committed "
            f"baseline with a full sweep (it replays the quick geometry)"
        ]
    anchor_mode = "naive per-probe"
    fresh_naive = {p: v for (m, p), v in fresh.items() if m == anchor_mode}
    base_naive = {p: v for (m, p), v in base.items() if m == anchor_mode}

    problems = []
    floor_share = 1.0 - max_regression
    for mode, probes in shared:
        got = fresh[(mode, probes)]
        if mode == anchor_mode:
            scale, anchor = 1.0, ""
        else:
            f_anchor, b_anchor = fresh_naive.get(probes), base_naive.get(probes)
            scale = min(1.0, f_anchor / b_anchor) if f_anchor and b_anchor else 1.0
            anchor = f" (naive-anchored x{scale:.2f})"
        expected = base[(mode, probes)] * scale
        if got < expected * floor_share:
            problems.append(
                f"{mode} @ {probes} probes: {got:.0f} probes/s is below "
                f"{floor_share:.0%} of the baseline {expected:.0f} "
                f"probes/s{anchor}"
            )
    return problems


def check_obs_overhead(path: Path, max_overhead: float) -> list[str]:
    """Telemetry-off / being-scraped overhead beyond tolerance (empty = good).

    Reads one ``BENCH_obs.json`` dump and compares, per (rows, workers)
    configuration, the ``disabled`` mode (tracing off, registry live —
    the shipped default) and the ``scraped`` mode (disabled plus a 1/s
    Prometheus scraper) against the ``baseline`` mode (instrumentation
    stubbed out). Each must keep at least ``1 - max_overhead`` of the
    baseline throughput: the telemetry layer may not tax the hot path
    when nobody is tracing, and being monitored must stay in the same
    budget. The ``disabled`` rows are mandatory; ``scraped`` rows are
    checked when present (older dumps predate the monitoring plane).
    """
    try:
        modes = _throughputs(json.loads(path.read_text(encoding="utf-8")))
    except (OSError, ValueError) as exc:
        return [f"obs dump unreadable: {exc}"]
    baseline = {(r, w): v for (r, m, w), v in modes.items() if m == "baseline"}
    problems = []
    floor_share = 1.0 - max_overhead
    for mode, required in (("disabled", True), ("scraped", False)):
        rows_for_mode = {(r, w): v for (r, m, w), v in modes.items() if m == mode}
        shared = sorted(set(baseline) & set(rows_for_mode))
        if not shared:
            if required:
                problems.append(
                    "no comparable (rows, workers) configurations carrying "
                    f"both a 'baseline' and a '{mode}' mode row — the "
                    "overhead guard has nothing to compare"
                )
            continue
        for rows, workers in shared:
            got, base = rows_for_mode[(rows, workers)], baseline[(rows, workers)]
            if got < base * floor_share:
                problems.append(
                    f"{mode} @ {rows} rows, {workers} worker(s): "
                    f"{got:.0f} tuples/s is below {floor_share:.0%} of the "
                    f"instrumented-out baseline {base:.0f} tuples/s "
                    f"({(1 - got / base):.1%} overhead > {max_overhead:.0%} budget)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path, help="BENCH_*.json dumps")
    parser.add_argument(
        "--all",
        action="store_true",
        help="check every BENCH_*.json in the current directory",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="committed B1 dump to guard throughput against "
        "(compared with the first file given)",
    )
    parser.add_argument(
        "--remote-baseline",
        type=Path,
        dest="remote_baseline",
        help="committed B5 remote dump to guard probe throughput against "
        "(compared with the first file given, keyed on (mode, probes), "
        "batched rows anchored on the fresh naive per-probe row)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="tolerated fractional tuples/s drop vs the baseline (default 0.30)",
    )
    parser.add_argument(
        "--obs-overhead",
        type=float,
        default=None,
        dest="obs_overhead",
        help="treat the first file as a BENCH_obs.json dump and require "
        "tracing-disabled throughput within this fraction of the "
        "instrumented-out baseline (e.g. 0.02 for 2%%)",
    )
    args = parser.parse_args(argv)
    files = list(args.files)
    if args.all:
        files.extend(sorted(Path.cwd().glob("BENCH_*.json")))
    if not files:
        parser.error("no files given (pass dumps or --all)")
    if not 0.0 <= args.max_regression < 1.0:
        parser.error(f"--max-regression must be in [0, 1), got {args.max_regression}")
    if args.obs_overhead is not None and not 0.0 < args.obs_overhead < 1.0:
        parser.error(f"--obs-overhead must be in (0, 1), got {args.obs_overhead}")

    failed = 0
    for path in files:
        problems = check_file(path)
        if problems:
            failed += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            rows = len(json.loads(path.read_text(encoding='utf-8'))["rows"])
            print(f"ok   {path} ({rows} rows)")

    if args.baseline is not None:
        fresh = files[0]
        problems = check_regression(fresh, args.baseline, args.max_regression)
        if problems:
            failed += 1
            print(f"FAIL {fresh} vs baseline {args.baseline}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {fresh} within {args.max_regression:.0%} of {args.baseline}")

    if args.remote_baseline is not None:
        fresh = files[0]
        problems = check_remote_regression(
            fresh, args.remote_baseline, args.max_regression
        )
        if problems:
            failed += 1
            print(f"FAIL {fresh} vs remote baseline {args.remote_baseline}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(
                f"ok   {fresh} within {args.max_regression:.0%} of "
                f"{args.remote_baseline} (remote probe throughput)"
            )

    if args.obs_overhead is not None:
        target = files[0]
        problems = check_obs_overhead(target, args.obs_overhead)
        if problems:
            failed += 1
            print(f"FAIL {target} telemetry overhead")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(
                f"ok   {target} disabled/scraped telemetry within "
                f"{args.obs_overhead:.0%} of baseline"
            )

    if failed:
        print(f"{failed} bench check(s) failed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
