"""Validate ``BENCH_*.json`` dumps against the harness schema.

The bench-smoke CI leg runs every benchmark in quick mode and then
checks each JSON snapshot it produced: a bench that silently wrote an
empty table (fixture skipped, sweep filtered to nothing, exception
swallowed by a plugin) must fail the leg, not land as a hollow
"performance trail" commit.

Usage::

    python benchmarks/check_bench_json.py BENCH_batch.json BENCH_remote.json
    python benchmarks/check_bench_json.py --all   # every BENCH_*.json in cwd

Checks per file: valid JSON; ``experiment``/``headers``/``rows``/
``machine`` present; headers non-empty strings; at least one row; every
row carries exactly the header keys with non-empty values; machine
records python/platform/cpus.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def check_file(path: Path) -> list[str]:
    """All schema violations found in one dump (empty = good)."""
    problems: list[str] = []
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    if not isinstance(obj, dict):
        return [f"top level is {type(obj).__name__}, expected object"]

    experiment = obj.get("experiment")
    if not isinstance(experiment, str) or not experiment.strip():
        problems.append("'experiment' missing or empty")

    headers = obj.get("headers")
    if (
        not isinstance(headers, list)
        or not headers
        or not all(isinstance(h, str) and h.strip() for h in headers)
    ):
        problems.append("'headers' must be a non-empty list of non-empty strings")
        headers = None

    rows = obj.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("'rows' missing or empty — a silently-empty bench dump")
    elif headers is not None:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"row {i} is {type(row).__name__}, expected object")
                continue
            if set(row) != set(headers):
                problems.append(f"row {i} keys {sorted(row)} != headers {sorted(headers)}")
            empty = [k for k, v in row.items() if v is None or v == ""]
            if empty:
                problems.append(f"row {i} has empty cells: {empty}")

    machine = obj.get("machine")
    if not isinstance(machine, dict) or not all(
        machine.get(k) for k in ("python", "platform", "cpus")
    ):
        problems.append("'machine' must record python/platform/cpus")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path, help="BENCH_*.json dumps")
    parser.add_argument(
        "--all",
        action="store_true",
        help="check every BENCH_*.json in the current directory",
    )
    args = parser.parse_args(argv)
    files = list(args.files)
    if args.all:
        files.extend(sorted(Path.cwd().glob("BENCH_*.json")))
    if not files:
        parser.error("no files given (pass dumps or --all)")

    failed = 0
    for path in files:
        problems = check_file(path)
        if problems:
            failed += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            rows = len(json.loads(path.read_text(encoding='utf-8'))["rows"])
            print(f"ok   {path} ({rows} rows)")
    if failed:
        print(f"{failed} of {len(files)} bench dumps failed schema validation")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
