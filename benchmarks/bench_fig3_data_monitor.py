"""E2 — Fig. 3: the data monitor's interactive certain fixing.

Reproduces the Fig. 3(a–c) walkthrough (two rounds, the exact fixes the
paper narrates) and measures what the paper remarks on: "the most
time-consuming procedure is to compute suggestions. To reduce the cost,
CerFix pre-computes a set of certain regions" — we benchmark suggestion
computation per strategy and the pre-computation ablation.

Paper shape to reproduce: CORE_FIRST reaches the certain fix for the
Fig. 3 tuple in exactly 2 rounds with fixes FN:'M.'→'Mark' (ϕ4),
LN (ϕ5), city (ϕ9) in round 1 and str (ϕ2) in round 2; REGION/SEMANTIC
strategies trade rounds for suggestion cost.
"""

import pytest

from repro import CerFix, CertaintyMode, OracleUser
from repro.bench.harness import BenchResult, save_table, time_call
from repro.monitor.suggest import SuggestionStrategy, compute_suggestion
from repro.monitor.user import CautiousUser, SelectiveUser
from repro.scenarios import uk_customers as uk


@pytest.fixture(scope="module")
def engine():
    master = uk.paper_master()
    eng = CerFix(
        uk.paper_ruleset(),
        master,
        mode=CertaintyMode.SCENARIO,
        scenario=uk.scenario_tuples(master),
    )
    eng.precompute_regions(k=5)
    return eng


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "E2 / Fig.3 — data monitor: strategy ablation on the Fig. 3 tuple",
        ("strategy", "rounds to certain fix", "round-1 suggestion",
         "suggestion seconds"),
    )
    yield result
    result.note("paper walkthrough: 2 rounds; round 1 suggests {AC, phn, type, item}")
    save_table(result, "e2_fig3_data_monitor.txt")


def test_fig3_exact_walkthrough(benchmark, engine):
    """Correctness gate: the interaction reproduces the paper exactly."""
    benchmark(lambda: engine.session(uk.fig3_tuple(), "fig3-bench"))
    session = engine.session(uk.fig3_tuple(), "fig3")
    truth = uk.fig3_truth()
    s1 = session.suggestion()
    assert s1.attrs == ("AC", "phn", "type", "item")
    r1 = session.validate({a: truth[a] for a in s1.attrs})
    assert [s.rule_id for s in r1.steps] == ["phi4", "phi5", "phi9"]
    s2 = session.suggestion()
    assert s2.attrs == ("zip",)
    session.validate({"zip": truth["zip"]})
    assert session.is_complete and session.round_no == 2


@pytest.mark.parametrize(
    "strategy",
    [SuggestionStrategy.CORE_FIRST, SuggestionStrategy.REGION, SuggestionStrategy.SEMANTIC],
)
def test_suggestion_strategies(benchmark, engine, table, strategy):
    truth = uk.fig3_truth()

    def first_suggestion():
        return compute_suggestion(
            uk.fig3_tuple(), frozenset(), engine.ruleset, engine.master,
            strategy=strategy, regions=engine.regions,
            mode=engine.mode, scenario=engine.scenario,
        )

    suggestion = benchmark(first_suggestion)
    seconds, _ = time_call(first_suggestion, repeat=3)

    session = engine.session(uk.fig3_tuple(), f"fig3-{strategy.value}", strategy=strategy)
    assert session.run(OracleUser(truth))
    assert session.fixed_values() == truth
    table.add(
        strategy.value,
        session.round_no,
        "{" + ", ".join(suggestion.attrs) + "}",
        f"{seconds * 1e3:.2f} ms",
    )


def test_precomputed_regions_ablation(benchmark, engine, table):
    """The paper's precomputation remark: REGION suggestions are cheap when
    regions are precomputed; computing them inline costs the region search."""
    def with_precompute():
        return compute_suggestion(
            uk.fig3_tuple(), frozenset(), engine.ruleset, engine.master,
            strategy=SuggestionStrategy.REGION, regions=engine.regions,
        )

    def without_precompute():
        from repro.core.region_finder import find_certain_regions

        regions = find_certain_regions(
            engine.ruleset, engine.master, k=5,
            mode=engine.mode, scenario=engine.scenario,
        )
        return compute_suggestion(
            uk.fig3_tuple(), frozenset(), engine.ruleset, engine.master,
            strategy=SuggestionStrategy.REGION, regions=regions,
        )

    benchmark(with_precompute)
    cheap, _ = time_call(with_precompute, repeat=3)
    costly, _ = time_call(without_precompute, repeat=3)
    assert costly > cheap
    table.add("region (precomputed)", "-", "-", f"{cheap * 1e3:.2f} ms")
    table.add("region (computed inline)", "-", "-", f"{costly * 1e3:.2f} ms")


@pytest.fixture(scope="module")
def users_table():
    result = BenchResult(
        "E2 — user-model ablation (UK stream, 100 tuples, rate 0.25)",
        ("user model", "certain fixes", "mean rounds", "user %", "auto %"),
    )
    yield result
    result.note("identical certain fixes; only the interaction cost differs")
    save_table(result, "e2_user_models.txt")


@pytest.mark.parametrize(
    "name,factory",
    [
        ("oracle", lambda tid, truth: OracleUser(truth)),
        ("cautious (1/round)", lambda tid, truth: CautiousUser(truth, max_per_round=1)),
        ("selective", lambda tid, truth: SelectiveUser(
            truth, known={"AC", "phn", "type", "item", "zip", "FN", "LN"})),
    ],
)
def test_user_model_ablation(benchmark, users_table, name, factory):
    master = uk.generate_master(120, seed=31)
    workload = uk.generate_workload(master, 100, rate=0.25, seed=32)
    eng = CerFix(uk.paper_ruleset(), master)
    report = benchmark.pedantic(
        lambda: eng.stream(workload.dirty, workload.clean, user_factory=factory),
        rounds=1, iterations=1,
    )
    assert report.completed == report.tuples
    users_table.add(
        name, f"{report.completed}/{report.tuples}",
        f"{report.mean_rounds:.2f}",
        f"{report.user_share:.0%}", f"{report.auto_share:.0%}",
    )


def test_monitor_latency_on_stream(benchmark, engine):
    """Point-of-entry latency: a full oracle session per incoming tuple."""
    master = uk.generate_master(200, seed=42)
    workload = uk.generate_workload(master, 50, rate=0.25, seed=43)
    eng = CerFix(uk.paper_ruleset(), master)

    def run_stream():
        return eng.stream(workload.dirty, workload.clean)

    report = benchmark.pedantic(run_stream, rounds=3, iterations=1)
    assert report.completed == 50
