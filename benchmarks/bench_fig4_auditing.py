"""E3 — Fig. 4 and the 20%/80% claim: data auditing over streams.

Reproduces the Fig. 4 per-attribute report (percentage of values
validated by users vs fixed automatically, with per-cell provenance) and
the paper's headline: "in average, 20% of values are validated by users
while CerFix automatically fixes 80% of the data".

Paper shape to reproduce: on the wide HOSP-like schema the user share is
≈20%; on the narrow 9-attribute UK schema rule coverage is weaker so the
user share is higher (≈55–65%) — the claim is a property of rule-rich
wide schemas, which is exactly the regime the paper's study used.
"""

import pytest

from repro import CerFix
from repro.audit.stats import attribute_stats, overall_stats
from repro.bench.harness import BenchResult, save_table
from repro.scenarios import hospital, uk_customers as uk

ERROR_RATES = (0.05, 0.2, 0.4)


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "E3 / Fig.4 — auditing: user-validated vs CerFix-fixed cells",
        ("scenario", "error rate", "tuples", "user cells", "auto cells",
         "user %", "auto %", "mean rounds"),
    )
    yield result
    result.note("paper claim: on average 20% of values validated by users, 80% fixed by CerFix")
    save_table(result, "e3_fig4_auditing.txt")


@pytest.fixture(scope="module")
def fig4_table():
    result = BenchResult(
        "E3 / Fig.4 — per-attribute provenance (hospital, rate=0.2)",
        ("attribute", "by user", "by CerFix", "% user", "% auto"),
    )
    yield result
    save_table(result, "e3_fig4_per_attribute.txt")


@pytest.mark.parametrize("rate", ERROR_RATES)
def test_hospital_user_share(benchmark, table, rate):
    master = hospital.generate_master(60, seed=5)
    workload = hospital.generate_workload(master, 150, rate=rate, seed=6)
    engine = CerFix(hospital.hospital_ruleset(), master)

    report = benchmark.pedantic(
        lambda: engine.stream(workload.dirty, workload.clean), rounds=1, iterations=1
    )
    assert report.completed == report.tuples
    assert 0.15 <= report.user_share <= 0.30  # the paper's ~20% regime
    table.add(
        "hospital (19 attrs)", rate, report.tuples,
        report.user_cells, report.rule_cells,
        f"{report.user_share:.0%}", f"{report.auto_share:.0%}",
        f"{report.mean_rounds:.2f}",
    )


@pytest.mark.parametrize("rate", ERROR_RATES)
def test_uk_user_share(benchmark, table, rate):
    master = uk.generate_master(120, seed=7)
    workload = uk.generate_workload(master, 150, rate=rate, seed=8)
    engine = CerFix(uk.paper_ruleset(), master)

    report = benchmark.pedantic(
        lambda: engine.stream(workload.dirty, workload.clean), rounds=1, iterations=1
    )
    assert report.completed == report.tuples
    table.add(
        "uk customers (9 attrs)", rate, report.tuples,
        report.user_cells, report.rule_cells,
        f"{report.user_share:.0%}", f"{report.auto_share:.0%}",
        f"{report.mean_rounds:.2f}",
    )


def test_fig4_per_attribute_report(benchmark, fig4_table):
    """The per-attribute column view of Fig. 4, plus per-cell provenance."""
    master = hospital.generate_master(60, seed=5)
    workload = hospital.generate_workload(master, 120, rate=0.2, seed=9)
    engine = CerFix(hospital.hospital_ruleset(), master)
    engine.stream(workload.dirty, workload.clean)

    stats = benchmark(
        lambda: attribute_stats(engine.audit, attrs=hospital.INPUT_SCHEMA.names)
    )
    for s in stats:
        fig4_table.add(
            s.attr, s.user_validations, s.rule_fixes,
            f"{s.pct_user:.0f}%", f"{s.pct_auto:.0f}%",
        )
    overall = overall_stats(engine.audit)
    fig4_table.add("(overall)", overall.user_cells, overall.auto_cells,
                   f"{overall.user_share:.0%}", f"{overall.auto_share:.0%}")
    # the audit answers "where did this value come from" for every fix
    some_fix = next(e for e in engine.audit.events if e.source == "rule")
    assert some_fix.rule_id is not None
