"""E6 — scalability: point-of-entry monitoring must stay interactive.

The demo cleans tuples at the point of data entry, so per-tuple chase
latency and stream throughput are the operative metrics. This bench
sweeps master-data size with and without the master indexes (the
ablation for the master data manager's hash indexes) and measures the
consistency check against rule-set size (UK's 9 rules vs the hospital
scenario's ~180 mostly-derived rules).

Paper shape to reproduce: indexed chase latency is flat in master size
(hash lookups); unindexed latency grows linearly; throughput stays in
the thousands of tuples/second at master sizes far beyond the demo's.
"""

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_table, time_call
from repro.core.chase import chase
from repro.master.manager import MasterDataManager
from repro.scenarios import hospital, uk_customers as uk

MASTER_SIZES = (100, 1000, 10_000)


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "E6 — scalability: chase latency and stream throughput vs master size",
        ("master size", "indexed chase (us)", "scan chase (us)",
         "speedup", "stream tuples/s"),
    )
    yield result
    result.note("indexed latency flat vs master size; scans grow linearly")
    save_table(result, "e6_scalability.txt")


@pytest.fixture(scope="module")
def rules_table():
    result = BenchResult(
        "E6 — consistency-check cost vs rule-set size",
        ("scenario", "rules", "master", "pairs checked", "seconds"),
    )
    yield result
    save_table(result, "e6_rules_scaling.txt")


@pytest.mark.parametrize("size", MASTER_SIZES)
def test_chase_latency_vs_master_size(benchmark, table, size):
    master = uk.generate_master(size, seed=size)
    manager = MasterDataManager(master)
    ruleset = uk.paper_ruleset()
    manager.prebuild(ruleset)
    workload = uk.generate_workload(master, 50, rate=0.2, seed=size + 1)
    tuples = [r.to_dict() for r in workload.dirty.rows()]
    validated = ["AC", "phn", "type", "item", "zip", "FN", "LN"]

    def chase_all_indexed():
        for t in tuples:
            chase(t, validated, ruleset, manager, use_index=True)

    def chase_all_scan():
        for t in tuples:
            chase(t, validated, ruleset, manager, use_index=False)

    benchmark.pedantic(chase_all_indexed, rounds=3, iterations=1)
    indexed, _ = time_call(chase_all_indexed, repeat=2)
    # scans on the largest master are slow; one repetition suffices
    scan, _ = time_call(chase_all_scan, repeat=1)

    engine = CerFix(ruleset, manager)
    stream_s, report = time_call(
        lambda: engine.stream(workload.dirty, workload.clean), repeat=1
    )
    assert report.completed == 50
    table.add(
        size,
        f"{indexed / 50 * 1e6:.0f}",
        f"{scan / 50 * 1e6:.0f}",
        f"{scan / indexed:.1f}x",
        f"{50 / stream_s:.0f}",
    )


def test_index_speedup_grows_with_master(benchmark, table):
    """Shape assertion: the index advantage grows with master size."""
    small = uk.generate_master(200, seed=200)
    small_mgr = MasterDataManager(small)
    small_mgr.prebuild(uk.paper_ruleset())
    t0 = uk.clean_inputs_from_master(small, 1, seed=1).row(0).to_dict()
    benchmark(lambda: chase(t0, ["AC", "phn", "type", "item", "zip"],
                            uk.paper_ruleset(), small_mgr))
    ratios = []
    for size in (200, 2000):
        master = uk.generate_master(size, seed=size)
        manager = MasterDataManager(master)
        ruleset = uk.paper_ruleset()
        manager.prebuild(ruleset)
        t = uk.clean_inputs_from_master(master, 1, seed=1).row(0).to_dict()
        validated = ["AC", "phn", "type", "item", "zip"]
        indexed, _ = time_call(
            lambda: [chase(t, validated, ruleset, manager, use_index=True)
                     for _ in range(20)], repeat=2,
        )
        scan, _ = time_call(
            lambda: [chase(t, validated, ruleset, manager, use_index=False)
                     for _ in range(20)], repeat=1,
        )
        ratios.append(scan / indexed)
    assert ratios[1] > ratios[0]


@pytest.mark.parametrize(
    "name,ruleset_fn,master_fn",
    [
        ("uk (9 rules)", uk.paper_ruleset, lambda: uk.generate_master(300, seed=3)),
        ("hospital (~180 rules)", hospital.hospital_ruleset,
         lambda: hospital.generate_master(300, seed=3)),
    ],
)
def test_consistency_vs_rules(benchmark, rules_table, name, ruleset_fn, master_fn):
    from repro.core.consistency import check_consistency

    ruleset = ruleset_fn()
    manager = MasterDataManager(master_fn())

    report = benchmark.pedantic(
        lambda: check_consistency(ruleset, manager, samples=10), rounds=1, iterations=1
    )
    seconds, _ = time_call(
        lambda: check_consistency(ruleset, manager, samples=10), repeat=1
    )
    assert report.is_consistent
    rules_table.add(name, len(ruleset), len(manager), report.pairs_checked,
                    f"{seconds:.3f}")
