"""E4 — Example 1: certain fixes vs heuristic constraint-based repair.

The paper's motivation: constraint-based methods "do not guarantee
correct fixes … worse still, they may introduce new errors", with the
concrete Example 1 (city Edi wrongly changed to Ldn instead of fixing
AC). This bench runs both systems on the same workloads and reports
precision / recall / new-errors-introduced against recorded ground truth.

Paper shape to reproduce: CerFix precision 1.0 with zero new errors at
every noise level; the greedy CFD repair introduces new errors exactly
when the violating cell is the *correct* one (Example 1's pattern), so
its precision degrades with noise while CerFix's does not.
"""

import pytest

from repro import CerFix, Relation
from repro.baselines.cfd_repair import GreedyCFDRepair, RepairStrategy
from repro.baselines.quality import evaluate_repair
from repro.bench.harness import BenchResult, save_table
from repro.scenarios import uk_customers as uk

ERROR_RATES = (0.1, 0.25, 0.4)


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "E4 / Example 1 — repair quality: CerFix vs greedy CFD repair",
        ("method", "error rate", "changed", "precision", "recall",
         "new errors", "fixes==truth"),
    )
    yield result
    result.note("paper: heuristic repair may 'mess up the correct attribute'; certain fixes cannot")
    save_table(result, "e4_example1_baseline.txt")


def _fixed_relation(engine, dirty):
    fixed = Relation(uk.INPUT_SCHEMA)
    for i, row in enumerate(dirty.rows()):
        values = row.to_dict()
        for event in engine.audit.by_tuple(f"t{i}"):
            values[event.attr] = event.new
        fixed.append(values)
    return fixed


def test_example1_exact(benchmark, table):
    """The paper's exact Example 1 tuple, both systems side by side."""
    dirty = Relation(uk.INPUT_SCHEMA, [uk.example1_tuple()])
    truth = Relation(uk.INPUT_SCHEMA, [uk.example1_truth()])

    repaired, changes = benchmark(lambda: GreedyCFDRepair(uk.paper_cfds()).repair(dirty))
    q = evaluate_repair(dirty, repaired, truth)
    assert [(c.attr, c.new) for c in changes] == [("city", "Ldn")]
    assert q.new_errors == 1
    table.add("greedy CFD repair", "(Example 1)", q.changed_cells,
              f"{q.precision:.2f}", f"{q.recall:.2f}", q.new_errors, False)

    engine = CerFix(uk.paper_ruleset(extended=True), uk.paper_master())
    session = engine.session(uk.example1_tuple(), "t0")
    session.assure(["zip", "phn", "type", "item"])
    assert session.is_complete
    fixed = Relation(uk.INPUT_SCHEMA, [session.fixed_values()])
    q2 = evaluate_repair(dirty, fixed, truth)
    assert q2.new_errors == 0 and q2.recall == 1.0
    table.add("CerFix (certain fixes)", "(Example 1)", q2.changed_cells,
              f"{q2.precision:.2f}", f"{q2.recall:.2f}", q2.new_errors, True)


@pytest.mark.parametrize("rate", ERROR_RATES)
def test_quality_sweep(benchmark, table, rate):
    master = uk.generate_master(150, seed=17)
    workload = uk.generate_workload(master, 200, rate=rate, seed=18)
    truth = workload.clean
    dirty = workload.dirty

    # -- heuristic baseline (benchmarked operation) -------------------------
    repairer = GreedyCFDRepair(uk.paper_cfds(), strategy=RepairStrategy.RHS)
    repaired, _ = benchmark.pedantic(
        lambda: repairer.repair(dirty), rounds=1, iterations=1
    )
    q_base = evaluate_repair(dirty, repaired, truth)
    table.add("greedy CFD repair", rate, q_base.changed_cells,
              f"{q_base.precision:.2f}", f"{q_base.recall:.2f}",
              q_base.new_errors, repaired.tuples() == truth.tuples())

    # -- CerFix --------------------------------------------------------------
    engine = CerFix(uk.paper_ruleset(), master)
    report = engine.stream(dirty, truth)
    assert report.completed == report.tuples
    fixed = _fixed_relation(engine, dirty)
    q_cf = evaluate_repair(dirty, fixed, truth)
    assert q_cf.new_errors == 0
    assert q_cf.precision == 1.0 and q_cf.recall == 1.0
    table.add("CerFix (certain fixes)", rate, q_cf.changed_cells,
              f"{q_cf.precision:.2f}", f"{q_cf.recall:.2f}",
              q_cf.new_errors, fixed.tuples() == truth.tuples())

    # the paper's qualitative claim, asserted quantitatively:
    assert q_cf.precision >= q_base.precision
    assert q_cf.new_errors <= q_base.new_errors


def test_min_cost_variant(benchmark, table):
    """The smarter cost-based heuristic is still uncertain."""
    master = uk.generate_master(150, seed=19)
    workload = uk.generate_workload(master, 200, rate=0.25, seed=20)
    repairer = GreedyCFDRepair(uk.paper_cfds(), strategy=RepairStrategy.MIN_COST)
    repaired, _ = benchmark(lambda: repairer.repair(workload.dirty))
    q = evaluate_repair(workload.dirty, repaired, workload.clean)
    table.add("min-cost CFD repair", 0.25, q.changed_cells,
              f"{q.precision:.2f}", f"{q.recall:.2f}", q.new_errors,
              repaired.tuples() == workload.clean.tuples())
