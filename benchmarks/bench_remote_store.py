"""B5 — remote master store: round-trip amortisation over real sockets.

The remote backend's whole performance story is *fewer, fatter round
trips*: a naive client pays one HTTP round trip per probe, while
``probe_many`` routes a batch by shard and crosses the network once
per (shard, chunk) — the seam the entry service's micro-batcher and
the batch pipeline's cache feed. This bench boots a 3-shard cluster
(real TCP on loopback), replays an identical probe workload through
the naive per-probe path and through batched ``probe_many`` at several
chunk sizes, and records wall-clock, probes/s and the *measured*
round-trip counts from the client's per-shard stats. A final point
runs the whole batch pipeline against the cluster for an end-to-end
tuples/s number.

Acceptance (asserted): at 3 shards, batched probing crosses the
network at least 5x fewer times than naive probing, and is faster.
A replicated point (2 replicas per shard, client-side failover) must
add zero probe round trips and at most 5% steady-state wall-clock
overhead (full mode; best-of-3 — quick mode's tiny workload makes the
ratio pure noise, so there only the round-trip identity is asserted),
and killing a replica under load must cost at most one jittered
retry-storm per shard before the circuit parks it — bit-identical
answers throughout.

Quick mode (the CI ``bench-smoke`` leg): ``CERFIX_BENCH_QUICK=1``
shrinks the workload so the leg finishes in seconds while still
validating the JSON dump's shape.

Results land in ``benchmarks/out/b5_remote_store.txt`` and
``BENCH_remote.json`` at the repo root.
"""

import os

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_json, save_table, time_call
from repro.master.remote import RemoteMasterStore
from repro.master.shardserver import ShardCluster
from repro.scenarios import uk_customers as uk

QUICK = os.environ.get("CERFIX_BENCH_QUICK", "") == "1"

SHARDS = 3
REPLICAS = 2
# The quick geometry doubles as the full sweep's anchor point: a full
# run replays it verbatim (test_remote_quick_anchor_rows) so the
# committed dump always shares (mode, probes) rows with CI's quick
# run — the intersection ``check_bench_json.py --remote-baseline``
# guards against probe-throughput regressions.
ANCHOR_MASTER = 300
ANCHOR_INPUTS = 80
ANCHOR_ROUNDS = 1
MASTER_SIZE = ANCHOR_MASTER if QUICK else 2_000
PROBE_INPUTS = ANCHOR_INPUTS if QUICK else 400
PROBE_ROUNDS = ANCHOR_ROUNDS if QUICK else 5
BATCH_ROWS = 100 if QUICK else 1_000
CHUNK_SIZES = (64, 512)
#: naive must cross the network at least this many times more often
MIN_TRIP_REDUCTION = 5.0
#: replicated steady state may cost at most this much over unreplicated
MAX_REPLICATION_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        f"B5 — remote master store: naive vs batched probing over "
        f"{SHARDS} shard servers",
        ("mode", "probes", "round trips", "trips saved", "seconds", "probes/s"),
    )
    yield result
    result.note(
        f"{SHARDS} in-process shard servers over loopback TCP (HTTP/1.1 "
        f"keep-alive); master {MASTER_SIZE} rows"
    )
    result.note(
        "round trips are measured client-side (per-shard stats), handshake "
        "excluded; 'trips saved' is vs the naive per-probe client"
    )
    result.note(
        f"acceptance: batched probe_many >= {MIN_TRIP_REDUCTION:.0f}x fewer "
        f"round trips than naive at {SHARDS} shards"
    )
    result.note(
        f"acceptance: {REPLICAS}-replica client adds zero probe round trips "
        f"and <= {MAX_REPLICATION_OVERHEAD:.0%} steady-state overhead "
        f"(best of 3); a killed replica costs <= 1 jittered retry-storm per "
        f"failed request before its circuit parks it, answers bit-identical"
    )
    if not QUICK:
        result.note(
            f"the trailing naive/probe_many rows at {ANCHOR_INPUTS} inputs x "
            f"{ANCHOR_ROUNDS} round replay the quick (CI) geometry against a "
            f"{ANCHOR_MASTER}-row master — the --remote-baseline anchor points"
        )
    save_table(result, "b5_remote_store.txt")
    save_json(result, "BENCH_remote.json")


@pytest.fixture(scope="module")
def world():
    master = uk.generate_master(MASTER_SIZE, seed=31)
    ruleset = uk.paper_ruleset()
    inputs = uk.generate_workload(master, PROBE_INPUTS, rate=0.0, seed=32).clean
    batch_wl = uk.generate_workload(master, BATCH_ROWS, rate=0.15, seed=33)
    cluster = ShardCluster.in_process(ruleset, master, SHARDS)
    yield master, ruleset, inputs, batch_wl, cluster
    cluster.close()


def _round_trips(store: RemoteMasterStore, baseline: int = 1) -> int:
    """Total probe round trips, ``baseline`` handshake GETs per shard off."""
    return sum(s["round_trips"] - baseline for s in store.stats()["per_shard"])


def test_remote_probe_round_trips(table, world):
    master, ruleset, inputs, _, cluster = world
    rules = [r for r in ruleset if not r.is_constant]
    rows = [r.to_dict() for r in inputs.rows()]
    requests = [
        (rule, values) for _ in range(PROBE_ROUNDS) for values in rows for rule in rules
    ]

    # naive: one round trip per probe (what a store without probe_many
    # batching — or a client ignoring it — pays)
    naive = RemoteMasterStore(cluster.urls)

    def probe_naive():
        for rule, values in requests:
            naive.probe(rule, values)
        return len(requests)

    t_naive, n = time_call(probe_naive, repeat=1)
    naive_trips = _round_trips(naive)
    naive.close()
    assert naive_trips == len(requests)
    table.add("naive per-probe", n, naive_trips, "1.0x", f"{t_naive:.2f}", f"{n / t_naive:.0f}")

    reference = None
    for chunk in CHUNK_SIZES:
        batched = RemoteMasterStore(cluster.urls, max_batch=chunk)

        def probe_batched():
            return batched.probe_many(requests)

        t_batched, matches = time_call(probe_batched, repeat=1)
        if reference is None:
            reference = matches
        else:
            assert matches == reference, "chunk size changed probe results"
        trips = _round_trips(batched)
        batched.close()
        table.add(
            f"probe_many (chunk {chunk})",
            len(requests),
            trips,
            f"{naive_trips / trips:.1f}x",
            f"{t_batched:.2f}",
            f"{len(requests) / t_batched:.0f}",
        )
        assert trips <= -(-len(requests) // chunk) + SHARDS
        assert naive_trips / trips >= MIN_TRIP_REDUCTION, (
            f"batched probing only saved {naive_trips / trips:.1f}x round trips"
        )
        assert t_batched < t_naive, "batched probing slower than naive"


def test_remote_replicated_steady_state_and_failover(table, world):
    """The replicated client vs the flat one on the identical workload:
    zero extra probe round trips, bounded steady-state overhead — and a
    replica killed under load costs at most one jittered retry-storm
    per shard before its circuit parks it, answers bit-identical."""
    master, ruleset, inputs, _, cluster = world
    rules = [r for r in ruleset if not r.is_constant]
    rows = [r.to_dict() for r in inputs.rows()]
    requests = [
        (rule, values) for _ in range(PROBE_ROUNDS) for values in rows for rule in rules
    ]

    flat = RemoteMasterStore(cluster.urls)
    t_flat, expected = time_call(lambda: flat.probe_many(requests), repeat=3)
    flat_trips = _round_trips(flat) // 3
    flat.close()

    rcluster = ShardCluster.in_process(ruleset, master, SHARDS, replicas=REPLICAS)
    try:
        repl = RemoteMasterStore(rcluster.urls)
        t_repl, got = time_call(lambda: repl.probe_many(requests), repeat=3)
        assert got == expected, "replication changed probe answers"
        # handshake GETs: one per replica per shard
        repl_trips = _round_trips(repl, baseline=REPLICAS) // 3
        repl.close()
        assert repl_trips == flat_trips, "replication added probe round trips"
        overhead = t_repl / t_flat - 1
        table.add(
            f"replicated x{REPLICAS} steady state",
            len(requests),
            repl_trips,
            f"{overhead:+.1%} vs flat",
            f"{t_repl:.2f}",
            f"{len(requests) / t_repl:.0f}",
        )
        if not QUICK:  # quick workloads are too small to time a 5% bound
            assert overhead <= MAX_REPLICATION_OVERHEAD, (
                f"replicated steady state cost {overhead:+.1%} over unreplicated"
            )

        circuit_threshold = 3
        store = RemoteMasterStore(
            rcluster.urls,
            retries=1,
            backoff=0.01,
            circuit_threshold=circuit_threshold,
            circuit_reset=60.0,
        )
        assert store.probe_many(requests) == expected  # warm, all healthy
        for shard in range(SHARDS):
            rcluster.stop(shard, 0)  # one replica of every shard dies

        def probe_through_failure():
            return [store.probe_many(requests) for _ in range(2)]

        t_failover, sweeps = time_call(probe_through_failure, repeat=1)
        assert all(sweep == expected for sweep in sweeps), "failover changed answers"
        per_shard = store.stats()["per_shard"]
        failovers = sum(s["failovers"] for s in per_shard)
        dead_errors = sum(s["replicas"][0]["errors"] for s in per_shard)
        store.close()
        assert failovers >= 1, "the killed replicas were never routed around"
        # <= one retry-storm per failed request, <= circuit_threshold
        # failed requests per shard before the circuit parks the replica
        assert dead_errors <= SHARDS * circuit_threshold, (
            f"dead replicas absorbed {dead_errors} exhausted requests — "
            f"the circuit never parked them"
        )
        table.add(
            f"replicated x{REPLICAS}, replica killed",
            2 * len(requests),
            f"{failovers} failovers",
            f"{dead_errors} dead-end trips",
            f"{t_failover:.2f}",
            f"{2 * len(requests) / t_failover:.0f}",
        )
    finally:
        rcluster.close()


def test_remote_quick_anchor_rows(table, world):
    """Full sweeps replay the quick-geometry probe workload so the
    committed dump always shares exact (mode, probes) rows with CI's
    quick run — the intersection the ``--remote-baseline`` guard in
    check_bench_json.py compares. Same seeds, same sizes, own cluster:
    the rows are byte-for-byte the workload the bench-smoke leg times."""
    if QUICK:
        pytest.skip("quick-mode rows already use the anchor geometry")
    master = uk.generate_master(ANCHOR_MASTER, seed=31)
    ruleset = uk.paper_ruleset()
    inputs = uk.generate_workload(master, ANCHOR_INPUTS, rate=0.0, seed=32).clean
    rules = [r for r in ruleset if not r.is_constant]
    rows = [r.to_dict() for r in inputs.rows()]
    requests = [
        (rule, values)
        for _ in range(ANCHOR_ROUNDS)
        for values in rows
        for rule in rules
    ]
    cluster = ShardCluster.in_process(ruleset, master, SHARDS)
    try:
        naive = RemoteMasterStore(cluster.urls)

        def probe_naive():
            for rule, values in requests:
                naive.probe(rule, values)
            return len(requests)

        t_naive, n = time_call(probe_naive, repeat=1)
        naive_trips = _round_trips(naive)
        naive.close()
        table.add(
            "naive per-probe", n, naive_trips, "1.0x",
            f"{t_naive:.2f}", f"{n / t_naive:.0f}",
        )
        for chunk in CHUNK_SIZES:
            batched = RemoteMasterStore(cluster.urls, max_batch=chunk)
            t_batched, _ = time_call(lambda: batched.probe_many(requests), repeat=1)
            trips = _round_trips(batched)
            batched.close()
            table.add(
                f"probe_many (chunk {chunk})",
                len(requests),
                trips,
                f"{naive_trips / trips:.1f}x",
                f"{t_batched:.2f}",
                f"{len(requests) / t_batched:.0f}",
            )
    finally:
        cluster.close()


def test_remote_batch_pipeline_end_to_end(table, world):
    """The whole batch pipeline against the cluster: dedup + probe cache
    + probe_many batching stacked on real round trips."""
    master, ruleset, _, batch_wl, cluster = world

    def clean_once():
        engine = CerFix(ruleset, master, store="remote", store_urls=list(cluster.urls))
        result = engine.clean_relation(batch_wl.dirty, batch_wl.clean, workers=2)
        trips = _round_trips(engine.master.store, baseline=2)  # handshake+prebuild
        engine.master.store.close()
        return result, trips

    t_batch, (result, trips) = time_call(clean_once, repeat=1)
    assert result.report.completed == BATCH_ROWS
    table.add(
        "batch pipeline (2 workers)",
        result.report.cache.misses,
        trips,
        "-",
        f"{t_batch:.2f}",
        f"{BATCH_ROWS / t_batch:.0f} tuples",
    )
