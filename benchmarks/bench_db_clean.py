"""B7 — DB-native cleaning: paged sqlite path vs the in-memory path.

The paged dirty-relation backend (:mod:`repro.dirty`) trades peak
memory for per-page transactions and a reversible change archive: the
table streams through the batch pipeline in fixed-size pages, and every
cell fix lands in ``cerfix_clean_changes`` alongside the data. This
bench sweeps relation size over the same rule-only workload through

* the **memory** path (``clean_relation`` — whole relation resident),
* the **paged** path (``clean_table`` — sqlite table, fixed pages,
  archive + run record committed per page), and
* the paged **dry-run** (read-only connection, report only),

and records rows/s plus the changed-cell and archive-row counts, so
the archive's write overhead is visible as the paged-vs-memory gap.
Output is asserted bit-identical between the paths on every size — the
point of the subsystem is that page geometry never changes fixes.

Results land in ``benchmarks/out/b7_db_clean.txt`` and
``BENCH_dbclean.json`` at the repo root; the CI bench-smoke leg runs
the quick sweep (``CERFIX_BENCH_QUICK=1``) and schema-checks the dump.
"""

import os

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_json, save_table, time_call
from repro.dirty import ChangeArchive, DirtyTable
from repro.scenarios import uk_customers as uk

QUICK = os.environ.get("CERFIX_BENCH_QUICK", "") == "1"

# The full sweep keeps the quick sweep's 200-row point so the committed
# dump always shares exact (rows, mode, workers) configurations with
# CI's quick run (the same convention as B1).
SIZES = (200,) if QUICK else (200, 1_000, 5_000)
PAGE_ROWS = 64 if QUICK else 512
MASTER_SIZE = 40
RATE = 0.15
VALIDATED = ("zip",)  # rule-only repairs from one trusted column
WORKERS = 2


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "B7 — DB-native cleaning: paged sqlite path vs in-memory path",
        ("rows", "mode", "workers", "seconds", "tuples/s",
         "changed cells", "archive rows"),
    )
    yield result
    result.note(
        f"paged path: page_rows={PAGE_ROWS}, one transaction per page "
        f"(cell fixes + archive rows + progress); dry-run is read-only"
    )
    result.note(
        "archive rows = reversible per-cell change records written to "
        "cerfix_clean_changes; the paged-vs-memory gap is the archive + "
        "paging overhead"
    )
    result.note("output asserted bit-identical between memory and paged paths")
    save_table(result, "b7_db_clean.txt")
    save_json(result, "BENCH_dbclean.json")


@pytest.fixture(scope="module")
def workloads():
    master = uk.generate_master(MASTER_SIZE, seed=17)
    return master, {
        n: uk.generate_workload(master, n, rate=RATE, seed=18) for n in SIZES
    }


@pytest.mark.parametrize("size", SIZES)
def test_db_clean_throughput(table, workloads, size, tmp_path):
    master, by_size = workloads
    wl = by_size[size]

    def memory_once():
        engine = CerFix(uk.paper_ruleset(), master)
        return engine.clean_relation(
            wl.dirty, validated=VALIDATED, workers=WORKERS
        )

    t_memory, memory = time_call(memory_once, repeat=1)
    table.add(size, "memory", WORKERS, f"{t_memory:.2f}",
              f"{size / t_memory:.0f}", memory.report.changed_cells, 0)

    db = tmp_path / f"dirty_{size}.db"
    DirtyTable.create(db, wl.dirty)

    def dry_once():
        engine = CerFix(uk.paper_ruleset(), master)
        return engine.clean_table(
            db, page_rows=PAGE_ROWS, validated=VALIDATED,
            workers=WORKERS, dry_run=True,
        )

    t_dry, dry = time_call(dry_once, repeat=1)
    table.add(size, "paged/dry-run", WORKERS, f"{t_dry:.2f}",
              f"{size / t_dry:.0f}", dry.changed_cells, 0)

    def paged_once():
        engine = CerFix(uk.paper_ruleset(), master)
        return engine.clean_table(
            db, page_rows=PAGE_ROWS, validated=VALIDATED, workers=WORKERS
        )

    t_paged, paged = time_call(paged_once, repeat=1)
    dirty_table = DirtyTable(db)
    conn = dirty_table.backend.connect(readonly=True)
    try:
        fixed = dirty_table.read_relation(conn)
        archive_rows = len(ChangeArchive(dirty_table).changes(conn, paged.run_id))
    finally:
        conn.close()
    table.add(size, "paged", WORKERS, f"{t_paged:.2f}",
              f"{size / t_paged:.0f}", paged.changed_cells, archive_rows)

    assert fixed.raw_tuples() == memory.relation.raw_tuples(), (
        "paged output diverged from the in-memory path"
    )
    assert dry.changed_cells == paged.changed_cells == memory.report.changed_cells
    assert archive_rows == paged.changed_cells
