"""B1 — batch throughput: whole-relation cleaning, size x workers.

The batch pipeline (repro.batch) must beat the pre-existing serial
path — one :class:`StreamProcessor` monitor session per tuple, no
dedup, no caching — on whole-relation workloads. This bench sweeps
relation size x worker count over a generated UK-customers workload
with realistic duplication (a small master population re-entering
transactions), and records, per configuration: wall-clock seconds,
tuples/second, speedup over the stream baseline, the planner's dedup
ratio and the probe-cache hit rate.

Where the speedup comes from depends on the host: the planner and the
probe cache cut *work* (each distinct repair signature is resolved
once; each distinct master probe is answered once), which dominates on
the single-core CI runner; on multi-core hosts the shard executor adds
wall-clock parallelism on top. The JSON snapshot (``BENCH_batch.json``
at the repo root) records the machine so trajectories stay comparable.
"""

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_json, save_table, time_call
from repro.scenarios import uk_customers as uk

SIZES = (1_000, 5_000)
WORKER_SWEEP = ((1, "thread"), (2, "thread"), (4, "thread"), (4, "process"))
MASTER_SIZE = 40  # small population -> realistic signature duplication
RATE = 0.15


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "B1 — batch cleaning throughput: relation size x workers",
        ("rows", "mode", "workers", "seconds", "tuples/s", "speedup",
         "dedup", "cache hit rate"),
    )
    yield result
    result.note("speedup is vs the serial per-tuple stream path on the same rows")
    result.note("acceptance: >= 2x at 4 workers on the 5k-row relation")
    save_table(result, "b1_batch_throughput.txt")
    save_json(result, "BENCH_batch.json")


@pytest.fixture(scope="module")
def workloads():
    master = uk.generate_master(MASTER_SIZE, seed=7)
    return master, {
        n: uk.generate_workload(master, n, rate=RATE, seed=8) for n in SIZES
    }


@pytest.mark.parametrize("size", SIZES)
def test_batch_throughput(table, workloads, size):
    master, by_size = workloads
    wl = by_size[size]

    def stream_once():
        return CerFix(uk.paper_ruleset(), master).stream(wl.dirty, wl.clean)

    t_stream, _ = time_call(stream_once, repeat=1)
    table.add(size, "stream", 1, f"{t_stream:.2f}", f"{size / t_stream:.0f}",
              "1.00x", "x1.00", "-")

    serial_rows = None
    for workers, backend in WORKER_SWEEP:
        def batch_once():
            engine = CerFix(uk.paper_ruleset(), master)
            return engine.clean_relation(
                wl.dirty, wl.clean, workers=workers, backend=backend
            )

        t_batch, result = time_call(batch_once, repeat=1)
        if serial_rows is None:
            serial_rows = result.relation.tuples()
        else:
            assert result.relation.tuples() == serial_rows, (
                f"{workers}x{backend} output diverged from serial"
            )
        speedup = t_stream / t_batch
        table.add(
            size,
            f"batch/{backend}",
            workers,
            f"{t_batch:.2f}",
            f"{size / t_batch:.0f}",
            f"{speedup:.2f}x",
            f"x{result.report.dedup_ratio:.2f}",
            f"{result.report.cache.hit_rate:.0%}",
        )
        assert result.report.completed == size
        assert result.report.cache.hits > 0
        # The work-cutting layers alone must keep batch ahead of the
        # per-tuple stream path, whatever the core count.
        assert speedup > 1.0, f"batch ({workers} workers) slower than the stream path"
