"""B1 — batch throughput: whole-relation cleaning, size x workers.

The batch pipeline (repro.batch) must beat the pre-existing serial
path — one :class:`StreamProcessor` monitor session per tuple, no
dedup, no caching — on whole-relation workloads. This bench sweeps
relation size x worker count over a generated UK-customers workload
with realistic duplication (a small master population re-entering
transactions), and records, per configuration: wall-clock seconds,
tuples/second, speedup over the stream baseline, the planner's dedup
ratio and the probe-cache hit rate.

Where the speedup comes from depends on the host: the planner and the
probe cache cut *work* (each distinct repair signature is resolved
once; each distinct master probe is answered once), which dominates on
the single-core CI runner; on multi-core hosts the shard executor adds
wall-clock parallelism on top. The JSON snapshot (``BENCH_batch.json``
at the repo root) records the machine so trajectories stay comparable.

B2 (same module) adds the ``--store`` axis: raw master-probe throughput
and whole-relation batch throughput per master-store backend (single vs
sharded vs sqlite — see :mod:`repro.master.store`), recorded in
``BENCH_master_store.json``. Restrict the sweep with
``pytest benchmarks/bench_batch_throughput.py --store sharded``.
"""

import os

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_json, save_table, time_call
from repro.master import make_store
from repro.scenarios import uk_customers as uk

#: The CI bench-smoke leg sets CERFIX_BENCH_QUICK=1: a shrunken sweep
#: that still produces (and schema-validates) every BENCH_*.json dump
#: in seconds instead of minutes. Full sweeps are the default.
QUICK = os.environ.get("CERFIX_BENCH_QUICK", "") == "1"

# The full sweep keeps the quick sweep's 300-row point: the committed
# dump then always shares exact (rows, mode, workers) configurations
# with CI's quick run, which is what the regression guard in
# check_bench_json.py compares against.
SIZES = (300,) if QUICK else (300, 1_000, 5_000)
WORKER_SWEEP = (
    ((1, "thread"), (2, "thread"))
    if QUICK
    else ((1, "thread"), (2, "thread"), (4, "thread"), (4, "process"))
)
MASTER_SIZE = 40  # small population -> realistic signature duplication
RATE = 0.15

# -- B2: the --store axis (single vs sharded vs sqlite master stores) --------
STORE_SWEEP = ("single", "sharded", "sqlite")
STORE_MASTER_SIZE = 300 if QUICK else 2_000  # probe routing must matter
STORE_PROBE_ROUNDS = 2 if QUICK else 10  # probe repetitions over clean inputs
STORE_BATCH_ROWS = 200 if QUICK else 2_000
STORE_SHARDS = 8


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "B1 — batch cleaning throughput: relation size x workers",
        ("rows", "mode", "workers", "seconds", "tuples/s", "speedup",
         "dedup", "cache hit rate"),
    )
    yield result
    result.note("speedup is vs the serial per-tuple stream path on the same rows")
    result.note("acceptance: >= 2x at 4 workers on the 5k-row relation")
    save_table(result, "b1_batch_throughput.txt")
    save_json(result, "BENCH_batch.json")


@pytest.fixture(scope="module")
def workloads():
    master = uk.generate_master(MASTER_SIZE, seed=7)
    return master, {
        n: uk.generate_workload(master, n, rate=RATE, seed=8) for n in SIZES
    }


@pytest.mark.parametrize("size", SIZES)
def test_batch_throughput(table, workloads, size):
    master, by_size = workloads
    wl = by_size[size]

    def stream_once():
        return CerFix(uk.paper_ruleset(), master).stream(wl.dirty, wl.clean)

    t_stream, _ = time_call(stream_once, repeat=1)
    table.add(size, "stream", 1, f"{t_stream:.2f}", f"{size / t_stream:.0f}",
              "1.00x", "x1.00", "-")

    serial_rows = None
    for workers, backend in WORKER_SWEEP:
        def batch_once():
            engine = CerFix(uk.paper_ruleset(), master)
            return engine.clean_relation(
                wl.dirty, wl.clean, workers=workers, backend=backend
            )

        t_batch, result = time_call(batch_once, repeat=1)
        if serial_rows is None:
            serial_rows = result.relation.tuples()
        else:
            assert result.relation.tuples() == serial_rows, (
                f"{workers}x{backend} output diverged from serial"
            )
        speedup = t_stream / t_batch
        table.add(
            size,
            f"batch/{backend}",
            workers,
            f"{t_batch:.2f}",
            f"{size / t_batch:.0f}",
            f"{speedup:.2f}x",
            f"x{result.report.dedup_ratio:.2f}",
            f"{result.report.cache.hit_rate:.0%}",
        )
        assert result.report.completed == size
        assert result.report.cache.hits > 0
        # The work-cutting layers alone must keep batch ahead of the
        # per-tuple stream path — but only where the host can actually
        # run the workers: on a box with fewer cores than workers the
        # oversubscribed configs pay pure scheduling/pickling overhead
        # against a stream baseline that the columnar core has already
        # made several times faster, so those rows are recorded for the
        # trajectory without being load-bearing.
        if workers <= (os.cpu_count() or 1):
            assert speedup > 1.0, f"batch ({workers} workers) slower than the stream path"


# ---------------------------------------------------------------------------
# B2 — master store backends: probe and batch throughput per --store axis
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def store_table(store_axis):
    result = BenchResult(
        "B2 — master store backends: probe + batch throughput "
        "(single vs sharded vs sqlite)",
        ("store", "master rows", "probes", "probes/s",
         "batch rows", "batch mode", "seconds", "tuples/s"),
    )
    yield result
    if store_axis != "all":
        # A restricted sweep must not clobber the committed full-table
        # snapshot with a partial one.
        return
    result.note(f"sharded store runs {STORE_SHARDS} shards; probes repeat the "
                f"clean inputs {STORE_PROBE_ROUNDS}x against every master-sourced rule")
    result.note("acceptance: every backend within 3x of 'single' on raw probes "
                "(parity is asserted functionally by tests/test_store_parity.py)")
    save_table(result, "b2_master_store.txt")
    save_json(result, "BENCH_master_store.json")


@pytest.fixture(scope="module")
def store_workload():
    master = uk.generate_master(STORE_MASTER_SIZE, seed=9)
    probe_inputs = uk.generate_workload(
        master, 100 if QUICK else 500, rate=0.0, seed=10
    ).clean
    batch_wl = uk.generate_workload(master, STORE_BATCH_ROWS, rate=RATE, seed=11)
    return master, probe_inputs, batch_wl


def _build_store(name: str, master, tmp_path):
    if name == "sqlite":
        return make_store(master, name, path=tmp_path / "bench_master.db")
    return make_store(master, name, shards=STORE_SHARDS)


@pytest.mark.parametrize("store_name", STORE_SWEEP)
def test_store_throughput(store_table, store_workload, store_axis, store_name, tmp_path):
    if store_axis not in ("all", store_name):
        pytest.skip(f"--store {store_axis} excludes {store_name}")
    master, probe_inputs, batch_wl = store_workload
    ruleset = uk.paper_ruleset()
    rules = [r for r in ruleset if not r.is_constant]
    rows = [r.to_dict() for r in probe_inputs.rows()]

    # raw probe throughput: every master-sourced rule against every input
    store = _build_store(store_name, master, tmp_path)
    store.prebuild(ruleset)

    def probe_once():
        n = 0
        for _ in range(STORE_PROBE_ROUNDS):
            for values in rows:
                for rule in rules:
                    store.probe(rule, values)
                    n += 1
        return n

    t_probe, n_probes = time_call(probe_once, repeat=1)

    # whole-relation batch throughput on the same backend
    def batch_once():
        engine = CerFix(ruleset, _build_store(store_name, master, tmp_path))
        return engine.clean_relation(
            batch_wl.dirty, batch_wl.clean, workers=4, backend="process"
        )

    t_batch, result = time_call(batch_once, repeat=1)
    assert result.report.completed == STORE_BATCH_ROWS

    store_table.add(
        store_name,
        STORE_MASTER_SIZE,
        n_probes,
        f"{n_probes / t_probe:.0f}",
        STORE_BATCH_ROWS,
        "batch/process x4",
        f"{t_batch:.2f}",
        f"{STORE_BATCH_ROWS / t_batch:.0f}",
    )
