"""E1 — Fig. 2: rule management and the automatic consistency check.

Reproduces the Fig. 2 rule table (ϕ1–ϕ9 with their patterns) and measures
the static analysis the demo runs on rule import ("CerFix automatically
tests whether the specified eRs make sense w.r.t. master data") across
master-data sizes.

Paper shape to reproduce: the nine rules are accepted as consistent
(unique fix for any input tuple); the check's cost grows with master
size but stays interactive.
"""

import pytest

from repro.bench.harness import BenchResult, save_table, time_call
from repro.core.consistency import check_consistency
from repro.master.manager import MasterDataManager
from repro.scenarios import uk_customers as uk

MASTER_SIZES = (10, 100, 1000)


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "E1 / Fig.2 — rule management: consistency check vs master size",
        ("master size", "consistent", "conflicts", "cross-entity", "ambiguities",
         "pairs checked", "seconds"),
    )
    yield result
    result.note("paper: the nine rules phi1..phi9 import cleanly and lead to a unique fix")
    save_table(result, "e1_fig2_rule_management.txt")


def test_fig2_rule_table(benchmark, table):
    """The Fig. 2 rule listing itself (correctness gate for the bench)."""
    rules = benchmark(uk.paper_rules)
    assert len(rules) == 9
    assert rules[8].pattern.render() == "(AC!=0800)"  # the editable ≠0800 pattern


@pytest.mark.parametrize("size", MASTER_SIZES)
def test_consistency_check(benchmark, table, size):
    master = MasterDataManager(uk.generate_master(size, seed=size))
    ruleset = uk.paper_ruleset()

    report = benchmark(lambda: check_consistency(ruleset, master, samples=20))
    seconds, _ = time_call(lambda: check_consistency(ruleset, master, samples=20), repeat=1)
    assert report.is_consistent
    table.add(
        len(master),
        report.is_consistent,
        len(report.conflicts),
        len(report.cross_entity_conflicts),
        len(report.ambiguities),
        report.pairs_checked,
        f"{seconds:.3f}",
    )


def test_inconsistent_rules_detected(benchmark, table):
    """Negative control: a contradicting constant rule is caught."""
    from repro.core.pattern import Eq, PatternTuple
    from repro.core.rule import Constant, EditingRule

    bad = EditingRule(
        "bad", (), "city", Constant("Atlantis"), PatternTuple({"AC": Eq("131")})
    )
    ruleset = uk.paper_ruleset().add(bad)
    master = MasterDataManager(uk.generate_master(100, seed=7))
    report = benchmark(lambda: check_consistency(ruleset, master, samples=10))
    assert not report.is_consistent
    assert any(c.rule1 == "bad" or c.rule2 == "bad" for c in report.conflicts)
    table.add(len(master), report.is_consistent, len(report.conflicts),
              len(report.cross_entity_conflicts), len(report.ambiguities),
              report.pairs_checked, "(negative control)")
