"""E5 — the region finder: top-k certain regions.

"Based on the algorithms in [7], top-k certain regions are pre-computed
that are ranked ascendingly by the number of attributes, and are
recommended to users as (initial) suggestions."

Paper shape to reproduce: for the UK scenario the smallest certain
region is {AC, item, phn, type, zip} with a type=2 tableau (the Fig. 3
interaction in region form); discovery cost grows with k and with the
quantification mode's universe (STRICT > SCENARIO on the same data);
every returned region re-certifies.
"""

import pytest

from repro.bench.harness import BenchResult, save_table, time_call
from repro.core.certainty import CertaintyMode, is_certain_region
from repro.core.region_finder import find_certain_regions
from repro.master.manager import MasterDataManager
from repro.scenarios import uk_customers as uk


@pytest.fixture(scope="module")
def table():
    result = BenchResult(
        "E5 — region finder: top-k certain regions (UK scenario)",
        ("mode", "master", "k", "regions", "top region", "seconds"),
    )
    yield result
    result.note("paper: regions ranked ascendingly by number of attributes")
    save_table(result, "e5_region_finder.txt")


@pytest.fixture(scope="module")
def regions_table():
    result = BenchResult(
        "E5 — the top-5 regions themselves (SCENARIO mode, paper master)",
        ("rank", "size", "region", "coverage"),
    )
    yield result
    save_table(result, "e5_region_list.txt")


def test_paper_top5_regions(benchmark, regions_table):
    master = uk.paper_master()
    manager = MasterDataManager(master)
    ruleset = uk.paper_ruleset()
    scenario = uk.scenario_tuples(master)

    regions = benchmark(
        lambda: find_certain_regions(
            ruleset, manager, k=5,
            mode=CertaintyMode.SCENARIO, scenario=scenario,
        )
    )
    sizes = [r.region.size for r in regions]
    assert sizes == sorted(sizes)
    assert regions[0].region.attrs == ("AC", "item", "phn", "type", "zip")
    for rank, r in enumerate(regions, start=1):
        regions_table.add(rank, r.region.size, r.region.render(), f"{r.coverage:.2f}")
        report = is_certain_region(
            r.region.attrs, r.region.tableau, ruleset, manager,
            mode=CertaintyMode.SCENARIO, scenario=scenario,
        )
        assert report.certain


@pytest.mark.parametrize("mode", [CertaintyMode.SCENARIO, CertaintyMode.ANCHORED,
                                  CertaintyMode.STRICT])
def test_mode_ablation(benchmark, table, mode):
    master = uk.paper_master()
    manager = MasterDataManager(master)
    ruleset = uk.paper_ruleset()
    scenario = uk.scenario_tuples(master) if mode is CertaintyMode.SCENARIO else None

    def run():
        return find_certain_regions(
            ruleset, manager, k=5, mode=mode, scenario=scenario,
            max_combos=500_000,
        )

    regions = benchmark(run)
    seconds, _ = time_call(run, repeat=1)
    top = regions[0].region.render() if regions else "(none)"
    table.add(mode.value, len(master), 5, len(regions), top, f"{seconds:.3f}")


@pytest.mark.parametrize("master_size", (10, 50, 150))
def test_master_size_scaling(benchmark, table, master_size):
    master = uk.generate_master(master_size, seed=master_size)
    manager = MasterDataManager(master)
    ruleset = uk.paper_ruleset()
    scenario = uk.scenario_tuples(master)

    def run():
        return find_certain_regions(
            ruleset, manager, k=3,
            mode=CertaintyMode.SCENARIO, scenario=scenario,
            max_combos=1_000_000,
        )

    regions = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds, _ = time_call(run, repeat=1)
    assert regions
    table.add("scenario", len(master), 3, len(regions),
              regions[0].region.attrs, f"{seconds:.3f}")
