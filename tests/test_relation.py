"""Unit tests for repro.relational.relation."""

import pytest

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.relational.schema import Schema


@pytest.fixture()
def schema():
    return Schema("r", ["a", "b"])


@pytest.fixture()
def rel(schema):
    return Relation(schema, [(1, "x"), (2, "y"), (3, "x")])


class TestConstruction:
    def test_from_tuples(self, rel):
        assert len(rel) == 3

    def test_from_dicts(self, schema):
        r = Relation(schema, [{"a": 1, "b": "x"}])
        assert r.row(0).values == (1, "x")

    def test_from_rows(self, schema):
        row = Row(schema, (7, "q"))
        assert Relation(schema, [row]).row(0) == row

    def test_row_of_wrong_schema_rejected(self, schema):
        other = Schema("other", ["a", "b"])
        with pytest.raises(RelationError):
            Relation(schema, [Row(other, (1, 2))])

    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(RelationError, match="arity"):
            Relation(schema, [(1, 2, 3)])


class TestMutation:
    def test_append_returns_position(self, rel):
        assert rel.append((4, "z")) == 3

    def test_extend(self, rel):
        rel.extend([(4, "z"), (5, "w")])
        assert len(rel) == 5

    def test_update_cell(self, rel):
        rel.update_cell(1, "b", "Q")
        assert rel.row(1)["b"] == "Q"

    def test_update_cell_bad_position(self, rel):
        with pytest.raises(RelationError):
            rel.update_cell(99, "b", "Q")

    def test_append_invalidates_index(self, rel):
        assert len(rel.lookup(("b",), ("z",))) == 0
        rel.append((9, "z"))
        assert len(rel.lookup(("b",), ("z",))) == 1

    def test_update_cell_invalidates_index(self, rel):
        assert len(rel.lookup(("b",), ("x",))) == 2
        rel.update_cell(0, "b", "y")
        assert len(rel.lookup(("b",), ("x",))) == 1


class TestAccess:
    def test_row(self, rel):
        assert rel.row(1)["b"] == "y"

    def test_row_out_of_range(self, rel):
        with pytest.raises(RelationError):
            rel.row(10)

    def test_rows_are_views(self, rel):
        assert [r["a"] for r in rel.rows()] == [1, 2, 3]

    def test_tuples_is_copy(self, rel):
        t = rel.tuples()
        t.append((9, "q"))
        assert len(rel) == 3

    def test_column(self, rel):
        assert rel.column("b") == ["x", "y", "x"]

    def test_active_domain(self, rel):
        assert rel.active_domain("b") == {"x", "y"}

    def test_iter(self, rel):
        assert len(list(rel)) == 3


class TestQueries:
    def test_project(self, rel):
        p = rel.project(["b"])
        assert p.schema.names == ("b",)
        assert p.column("b") == ["x", "y", "x"]

    def test_select(self, rel):
        s = rel.select(lambda r: r["b"] == "x")
        assert len(s) == 2

    def test_lookup_matches_scan(self, rel):
        assert rel.lookup(("b",), ("x",)) == rel.scan_lookup(("b",), ("x",))

    def test_lookup_multi_attr(self, rel):
        assert len(rel.lookup(("a", "b"), (3, "x"))) == 1

    def test_lookup_with_ops(self, schema):
        r = Relation(schema, [(1, "EH8 4AH")])
        assert len(r.lookup(("b",), ("eh84ah",), ops=("alnum",))) == 1
        assert len(r.lookup(("b",), ("eh84ah",))) == 0

    def test_scan_lookup_with_ops(self, schema):
        r = Relation(schema, [(1, "EH8 4AH")])
        assert len(r.scan_lookup(("b",), ("eh84ah",), ops=("alnum",))) == 1

    def test_index_is_cached(self, rel):
        i1 = rel.index_on(("b",))
        i2 = rel.index_on(("b",))
        assert i1 is i2

    def test_index_per_ops(self, rel):
        assert rel.index_on(("b",)) is not rel.index_on(("b",), ops=("casefold",))

    def test_repr(self, rel):
        assert "3 rows" in repr(rel)
