"""Tests for the DBLP-shaped publications scenario."""

import pytest

from repro import CerFix, CertaintyMode
from repro.core.chase import chase
from repro.core.inference import mandatory_attributes
from repro.master.manager import MasterDataManager
from repro.scenarios import publications as pub


@pytest.fixture(scope="module")
def master():
    return pub.generate_master(40, seed=5)


@pytest.fixture(scope="module")
def ruleset():
    return pub.publication_ruleset()


class TestScenarioShape:
    def test_schema_sizes(self):
        assert len(pub.INPUT_SCHEMA) == 9
        assert len(pub.MASTER_SCHEMA) == 6

    def test_mandatory_is_title_and_note(self, ruleset):
        assert mandatory_attributes(ruleset) == frozenset({"title", "note"})

    def test_title_rule_is_self_normalising(self, ruleset):
        assert ruleset.get("t_title").is_self_normalizing

    def test_master_titles_unique_under_alnum(self, master):
        keys = {
            "".join(ch for ch in t.casefold() if ch.isalnum())
            for t in master.column("title")
        }
        assert len(keys) == len(master)

    def test_rules_consistent(self, ruleset, master):
        report = CerFix(ruleset, master).check_consistency(samples=15)
        assert report.is_consistent
        assert report.ambiguities == ()


class TestCleaning:
    def test_title_key_chases_whole_record(self, ruleset, master):
        clean = pub.clean_inputs_from_master(master, 1, seed=6)
        t = clean.row(0).to_dict()
        result = chase(t, ["title", "note"], ruleset, MasterDataManager(master))
        assert result.is_complete

    def test_case_mangled_title_normalised(self, ruleset, master):
        """The citation-mess case: the user assures a lower-cased title;
        the alnum match still hits and the title is canonicalised."""
        clean = pub.clean_inputs_from_master(master, 1, seed=7)
        truth = clean.row(0).to_dict()
        t = dict(truth)
        t["title"] = truth["title"].lower()
        t["authors"] = "X. Wrong"
        engine = CerFix(ruleset, master)
        session = engine.session(t, "c1")
        session.assure(["title", "note"])
        assert session.is_complete
        assert session.fixed_values() == truth  # incl. the canonical title
        events = engine.audit.by_tuple("c1")
        assert any(e.source == "normalize" and e.attr == "title" for e in events)

    def test_stream_hits_paper_regime(self, ruleset, master):
        workload = pub.generate_workload(master, 80, rate=0.25, seed=8)
        engine = CerFix(ruleset, master)
        report = engine.stream(workload.dirty, workload.clean)
        assert report.completed == 80
        assert report.mean_rounds == 1.0
        assert 0.18 <= report.user_share <= 0.28  # 2 of 9 attrs ≈ 22%

    def test_fixes_equal_ground_truth(self, ruleset, master):
        workload = pub.generate_workload(master, 30, rate=0.4, seed=9)
        engine = CerFix(ruleset, master)
        engine.stream(workload.dirty, workload.clean)
        for i in range(30):
            values = workload.dirty.row(i).to_dict()
            for event in engine.audit.by_tuple(f"t{i}"):
                values[event.attr] = event.new
            assert values == workload.clean.row(i).to_dict()

    def test_unknown_publication_stays_incomplete(self, ruleset, master):
        engine = CerFix(ruleset, master)
        t = {
            "title": "A Paper That Does Not Exist", "authors": "?", "venue": "?",
            "venue_full": "?", "publisher": "?", "year": "?", "pages": "?",
            "doi": "?", "note": "n",
        }
        session = engine.session(t, "u")
        session.assure(["title", "note"])
        assert not session.is_complete


class TestRegions:
    def test_top_region_is_title_note(self, ruleset, master):
        from repro.core.region_finder import find_certain_regions

        regions = find_certain_regions(
            ruleset, MasterDataManager(master), k=1,
            mode=CertaintyMode.SCENARIO, scenario=pub.scenario_tuples(master),
        )
        assert regions[0].region.attrs == ("note", "title")
