"""Differential test harness: prove master-store backends byte-equivalent.

The store refactor's acceptance gate (ISSUE 3) is *parity*: given the
same master content, every :mod:`repro.master.store` backend must
produce bit-identical fixes, certain regions and audit events through
every cleaning path — the interactive monitor/stream path and the batch
pipeline (serial, threaded, multi-process). This module is the
machinery behind ``tests/test_store_parity.py``:

* :func:`generate_case` builds randomized workloads — master relation,
  rule set (randomly thinned), dirty tuples and ground truth — through
  :mod:`repro.datagen`'s error injector (via the scenario generators),
  so every seed is a different mix of typos, case mangling, blanks and
  digit noise;
* :func:`store_factories` instantiates every backend over identical
  master content (fresh relation copies, so no probe structure is
  accidentally shared);
* :func:`run_monitor_path` / :func:`run_batch_path` drive one backend
  through one cleaning path and capture a :class:`PathOutcome` — the
  repaired rows, the *full* serialized audit trail, the rendered
  certain regions, and the scheduling-independent report scalars;
* :func:`assert_parity` compares outcomes field by field with readable
  failure diffs.

Timing and cache-locality numbers are deliberately excluded from the
comparison (:func:`normalize_report`): scheduling may move cache hits
between shards, but it must never move a value in a repaired cell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro import CerFix, CertaintyMode
from repro.core.ruleset import RuleSet
from repro.master.store import (
    MasterStore,
    ShardedMasterStore,
    SingleRelationStore,
    SqliteMasterStore,
)
from repro.relational.relation import Relation
from repro.scenarios import hospital, uk_customers as uk


@dataclass(frozen=True)
class DifferentialCase:
    """One randomized workload every backend is driven through."""

    name: str
    ruleset: RuleSet
    master: Relation
    dirty: Relation
    truth: Relation | None
    validated: tuple[str, ...] = ()


def generate_case(
    seed: int,
    *,
    scenario: str = "uk",
    master_size: int = 20,
    n: int = 40,
    rate: float = 0.25,
    with_truth: bool = True,
    max_dropped_rules: int = 2,
) -> DifferentialCase:
    """A randomized differential case.

    ``seed`` drives everything: the master population, the injected
    errors (datagen's noise operators) and which rules are randomly
    dropped from the scenario rule set — so two backends disagreeing on
    a seed is a reproducible counterexample.
    """
    rng = random.Random(seed)
    mod = uk if scenario == "uk" else hospital
    master = mod.generate_master(master_size, seed=seed)
    wl = mod.generate_workload(master, n, rate=rate, seed=seed + 1)
    if scenario == "uk":
        ruleset = uk.paper_ruleset(extended=rng.random() < 0.5)
    else:
        ruleset = hospital.hospital_ruleset()
    drop = rng.sample(
        [r.rule_id for r in ruleset], k=rng.randint(0, max_dropped_rules)
    )
    if drop and len(drop) < len(ruleset):
        ruleset = ruleset.remove(*drop)
    validated: tuple[str, ...] = ()
    if not with_truth:
        # rule-only repair: trust the attributes most rules read
        candidates = sorted({a for r in ruleset for a in r.lhs_attrs})
        if candidates:
            validated = (rng.choice(candidates),)
    return DifferentialCase(
        name=f"{scenario}-s{seed}{'' if with_truth else '-ruleonly'}",
        ruleset=ruleset,
        master=master,
        dirty=wl.dirty,
        truth=wl.clean if with_truth else None,
        validated=validated,
    )


def store_factories(
    case: DifferentialCase, tmp_path: Path, *, shards: int = 3
) -> dict[str, Callable[[], MasterStore]]:
    """One factory per backend, each over a fresh copy of the master.

    Fresh :class:`Relation` copies guarantee no index or partition is
    shared between backends — each backend builds its own probe
    structures from the same content.
    """

    def copy() -> Relation:
        return Relation(case.master.schema, case.master.tuples())

    return {
        "single": lambda: SingleRelationStore(copy()),
        "sharded": lambda: ShardedMasterStore(copy(), shards=shards),
        "sqlite": lambda: SqliteMasterStore(tmp_path / f"{case.name}.db", copy()),
    }


@dataclass
class PathOutcome:
    """Everything parity is asserted over, for one (backend, path) run."""

    fixed_rows: list[tuple]
    audit_events: list[dict]
    regions: list[tuple[str, float]]
    report: dict[str, Any]


#: Report keys that scheduling/backends/resume may legitimately change:
#: wall-clock, throughput, cache locality, executor backend label, and
#: how many shards came back from a journal rather than being executed.
_UNSTABLE_REPORT_KEYS = frozenset(
    {
        "elapsed_seconds",
        "throughput",
        "cache",
        "shards",
        "workers",
        "backend",
        "notes",
        "resumed_shards",
    }
)


def normalize_report(report_json: Mapping[str, Any]) -> dict[str, Any]:
    """The scheduling-independent slice of a report's JSON form.

    Work accounting (cells fixed by user vs rule, completions,
    conflicts, dedup) must be identical across backends; timings and
    cache-locality counters need not be.
    """
    out = {k: v for k, v in report_json.items() if k not in _UNSTABLE_REPORT_KEYS}
    shards = report_json.get("shards")
    if shards is not None:
        out["shard_workload"] = [
            {"shard_id": s["shard_id"], "groups": s["groups"], "tuples": s["tuples"]}
            for s in shards
        ]
    return out


def _audit_fixed_rows(engine: CerFix, dirty: Relation) -> list[tuple]:
    """Replay the audit trail onto the dirty rows (the stream path has
    no assembled output relation; this mirrors ``cerfix fix --out``)."""
    names = dirty.schema.names
    rows = []
    for i, row in enumerate(dirty.rows()):
        values = row.to_dict()
        for e in engine.audit.by_tuple(f"t{i}"):
            values[e.attr] = e.new
        rows.append(tuple(values[n] for n in names))
    return rows


def run_monitor_path(
    case: DifferentialCase,
    store: MasterStore,
    *,
    regions_k: int = 2,
    max_combos: int = 50_000,
) -> PathOutcome:
    """Drive the interactive path: region precompute, then one
    oracle-driven monitor session per tuple (the stream processor).

    ANCHORED certainty keeps region enumeration bounded on generated
    masters (STRICT's full domain product can blow the combo budget).
    """
    engine = CerFix(
        case.ruleset, store, mode=CertaintyMode.ANCHORED, max_combos=max_combos
    )
    ranked = engine.precompute_regions(k=regions_k)
    report = engine.stream(case.dirty, case.truth)
    return PathOutcome(
        fixed_rows=_audit_fixed_rows(engine, case.dirty),
        audit_events=[e.to_json() for e in engine.audit],
        regions=[(r.region.render(), round(r.coverage, 9)) for r in ranked],
        report={
            "tuples": report.tuples,
            "completed": report.completed,
            "user_cells": report.user_cells,
            "rule_cells": report.rule_cells,
        },
    )


def run_batch_path(
    case: DifferentialCase,
    store: MasterStore,
    *,
    workers: int = 1,
    backend: str = "thread",
    shards: int | None = None,
    journal_path: Path | None = None,
    cache_size: int = 4096,
) -> PathOutcome:
    """Drive the batch pipeline under one executor configuration."""
    engine = CerFix(case.ruleset, store)
    result = engine.clean_relation(
        case.dirty,
        case.truth,
        workers=workers,
        backend=backend,
        shards=shards,
        validated=case.validated,
        journal_path=journal_path,
    )
    return PathOutcome(
        fixed_rows=result.relation.tuples(),
        audit_events=[e.to_json() for e in engine.audit],
        regions=[],
        report=normalize_report(result.report.to_json()),
    )


def assert_parity(outcomes: Mapping[str, PathOutcome]) -> None:
    """Assert every outcome is bit-identical to the first (reference)
    backend; failures name the backend, the field and the first diff."""
    items = list(outcomes.items())
    ref_name, ref = items[0]
    for name, got in items[1:]:
        assert got.fixed_rows == ref.fixed_rows, _first_diff(
            ref_name, name, "fixed row", ref.fixed_rows, got.fixed_rows
        )
        assert got.audit_events == ref.audit_events, _first_diff(
            ref_name, name, "audit event", ref.audit_events, got.audit_events
        )
        assert got.regions == ref.regions, (
            f"{name} regions diverge from {ref_name}: {got.regions!r} != {ref.regions!r}"
        )
        assert got.report == ref.report, (
            f"{name} report diverges from {ref_name}: {got.report!r} != {ref.report!r}"
        )


def _first_diff(ref_name: str, name: str, what: str, ref: list, got: list) -> str:
    if len(ref) != len(got):
        return (
            f"{name} produced {len(got)} {what}s, {ref_name} produced {len(ref)}"
        )
    for i, (a, b) in enumerate(zip(ref, got)):
        if a != b:
            return f"{name} {what} {i} diverges from {ref_name}: {b!r} != {a!r}"
    return f"{name} diverges from {ref_name} (unlocated)"
