"""Differential parity suite: every master-store backend, every path.

The acceptance gate for the store refactor (ISSUE 3): the single,
sharded and sqlite backends must produce **bit-identical** fixes,
certain regions and audit events through the monitor/stream path and
the batch pipeline (serial, threaded and multi-process executors).
The harness lives in :mod:`repro.master.conformance` (lifted out of
``tests/`` so any backend — including the remote shard cluster — runs
the same suite; ``tests/test_conformance.py`` drives the full kit).
This module pins:

- randomized differential cases (datagen-backed) agree across backends
  on both paths, with and without ground truth;
- Hypothesis property: a sharded probe equals a single-relation probe
  for arbitrary relations, rules, keys and shard counts — including
  ``N == 1`` and ``N`` far above the number of distinct keys;
- a sqlite-backed batch run killed mid-shard resumes from its journal
  (and its master snapshot) to the same ``BatchReport`` as an
  uninterrupted run;
- store construction/selection errors are loud, and snapshots reload.

CI runs this file in its own matrix leg with ``-p no:cacheprovider``
and 4 process workers (``CERFIX_PARITY_WORKERS``) to catch
cross-process nondeterminism.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

import repro.batch.executor as executor_mod
from conftest import probe_cases
from repro.master.conformance import (
    assert_parity,
    generate_case,
    normalize_report,
    run_batch_path,
    run_interleaved_monitor_path,
    run_monitor_path,
    store_factories,
)
from repro import CerFix
from repro.errors import MasterDataError
from repro.master.store import (
    ShardedMasterStore,
    SingleRelationStore,
    SqliteMasterStore,
    make_store,
    shard_of,
)
from repro.relational.relation import Relation
from repro.scenarios import uk_customers as uk

#: The CI matrix leg sets 4 to force multi-process probing; local runs
#: can lower it for speed without changing what is asserted.
PARITY_WORKERS = int(os.environ.get("CERFIX_PARITY_WORKERS", "4"))


# ---------------------------------------------------------------------------
# Differential cases: monitor and batch paths across all three backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "seed,scenario", [(101, "uk"), (202, "uk"), (303, "hospital")]
)
def test_monitor_path_parity(seed, scenario, tmp_path):
    """Stream cleaning + region precompute: identical fixes, regions,
    audit events on every backend."""
    case = generate_case(seed, scenario=scenario)
    outcomes = {
        name: run_monitor_path(case, factory())
        for name, factory in store_factories(case, tmp_path).items()
    }
    assert_parity(outcomes)
    # sanity: the case actually exercised the master data
    assert any(e["source"] == "rule" for e in outcomes["single"].audit_events)


@pytest.mark.parametrize("seed,scenario", [(404, "uk"), (505, "hospital")])
@pytest.mark.parametrize(
    "workers,backend",
    [(1, "thread"), (PARITY_WORKERS, "thread"), (PARITY_WORKERS, "process")],
)
def test_batch_path_parity(seed, scenario, workers, backend, tmp_path):
    """Batch cleaning under every executor configuration: identical
    repaired relations, audit trails and work accounting per backend."""
    case = generate_case(seed, scenario=scenario)
    outcomes = {
        name: run_batch_path(case, factory(), workers=workers, backend=backend)
        for name, factory in store_factories(case, tmp_path).items()
    }
    assert_parity(outcomes)


@pytest.mark.parametrize("seed,scenario", [(808, "uk"), (909, "hospital")])
def test_monitor_interaction_order_fuzz_parity(seed, scenario, tmp_path):
    """Interleave non-oracle user responses (oracle/cautious/selective
    mix) across sessions in seeded random orders: every interleaving,
    on every backend, must produce bit-identical per-tuple fixes and
    audit trails (the roadmap follow-up from PR 3).

    Users are fixed by ``user_seed`` while the *round order* varies with
    ``order_seed`` — so the comparison proves both backend parity and
    interleaving-independence at once."""
    from repro.core.inference import mandatory_attributes

    case = generate_case(seed, scenario=scenario, n=24 if scenario == "uk" else 10)
    # Cap the region search at the mandatory core for the wide hospital
    # schema — level len(core)+1 alone costs ~17s there; parity is still
    # asserted over the regions the capped search finds.
    max_size = (
        None
        if scenario == "uk"
        else len(mandatory_attributes(case.ruleset, case.ruleset.input_schema))
    )
    outcomes = {}
    for name, factory in store_factories(case, tmp_path).items():
        for order_seed in (1, 7):
            outcomes[f"{name}/order{order_seed}"] = run_interleaved_monitor_path(
                case,
                factory(),
                order_seed=order_seed,
                user_seed=seed,
                region_max_size=max_size,
            )
    assert_parity(outcomes)
    reference = next(iter(outcomes.values()))
    # sanity: the mix of user models actually stalls some sessions
    # (selective users run out of known attributes) and completes others
    assert 0 < reference.report["completed"] <= reference.report["tuples"]


def test_batch_rule_only_parity(tmp_path):
    """No ground truth: rule-only repair from trusted columns must also
    agree bit for bit (this is the path with no oracle to mask bugs)."""
    case = generate_case(606, scenario="uk", with_truth=False)
    assert case.validated  # the generator picked a trusted column
    outcomes = {
        name: run_batch_path(case, factory())
        for name, factory in store_factories(case, tmp_path).items()
    }
    assert_parity(outcomes)


def test_parallel_equals_serial_on_sharded_store(tmp_path):
    """Cross-check within one backend: the sharded store's serial and
    multi-process batch outputs are identical (scheduling independence
    survives the partitioned probe path)."""
    case = generate_case(707, scenario="uk")
    factory = store_factories(case, tmp_path, shards=5)["sharded"]
    # pin the plan shard count: it defaults to workers*4, and a different
    # sharding legitimately reorders the (per-tuple identical) audit replay
    serial = run_batch_path(case, factory(), workers=1, shards=8)
    parallel = run_batch_path(
        case, factory(), workers=PARITY_WORKERS, backend="process", shards=8
    )
    assert parallel.fixed_rows == serial.fixed_rows
    assert parallel.audit_events == serial.audit_events


# ---------------------------------------------------------------------------
# Property-based probe parity (Hypothesis; generators in conftest.py)
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(case=probe_cases(), shards=st.sampled_from((1, 2, 3, 7, 64)))
def test_sharded_probe_equals_single_probe(case, shards):
    """For arbitrary master content, rules, keys and shard counts —
    including N=1 and N far above the distinct-key count — a routed
    sharded probe returns exactly what the global index returns."""
    master, rule, values = case
    single = SingleRelationStore(Relation(master.schema, master.tuples()))
    sharded = ShardedMasterStore(Relation(master.schema, master.tuples()), shards=shards)
    expected = single.probe(rule, values)
    got = sharded.probe(rule, values)
    assert got == expected
    # the scan path is backend-shared, but pin it anyway
    assert sharded.probe(rule, values, use_index=False) == single.probe(
        rule, values, use_index=False
    )


@settings(max_examples=60, deadline=None)
@given(case=probe_cases(), shards=st.sampled_from((1, 2, 5)))
def test_sharded_ambiguous_keys_equal_single(case, shards):
    master, rule, _ = case
    single = SingleRelationStore(Relation(master.schema, master.tuples()))
    sharded = ShardedMasterStore(Relation(master.schema, master.tuples()), shards=shards)
    assert sharded.ambiguous_keys(rule) == single.ambiguous_keys(rule)


@settings(max_examples=60, deadline=None)
@given(case=probe_cases(), shards=st.sampled_from((1, 3, 64)))
def test_sharded_probe_survives_pickling(case, shards):
    """A pickled sharded store (what process-pool workers receive)
    probes identically to the original, rebuilding shards lazily."""
    master, rule, values = case
    sharded = ShardedMasterStore(Relation(master.schema, master.tuples()), shards=shards)
    before = sharded.probe(rule, values)
    clone = pickle.loads(pickle.dumps(sharded))
    assert clone.stats()["shard_indexes_built"] == 0  # nothing shipped
    assert clone.probe(rule, values) == before
    built = clone.stats()["shard_indexes_built"]
    assert built <= 1  # only the routed shard materialised


# ---------------------------------------------------------------------------
# Crash safety: sqlite snapshot + checkpoint journal survive a kill
# ---------------------------------------------------------------------------


def test_sqlite_batch_crash_resume_matches_uninterrupted(tmp_path, monkeypatch):
    """Kill a sqlite-backed batch run mid-shard; a fresh process that
    reloads the snapshot and the journal must produce the same repaired
    relation and the same (scheduling-independent) BatchReport as an
    uninterrupted run."""
    master = uk.generate_master(20, seed=51)
    wl = uk.generate_workload(master, 40, rate=0.25, seed=52)
    db = tmp_path / "master.db"
    journal = tmp_path / "journal.jsonl"

    baseline_engine = CerFix(
        uk.paper_ruleset(), master, store="sqlite", store_path=db
    )
    expected = baseline_engine.clean_relation(wl.dirty, wl.clean, workers=1, shards=4)

    # Crash after two shards have been journaled.
    real = executor_mod._run_shard
    calls = {"n": 0}

    def crashing(shard, ctx, base, cache, *memos):
        if calls["n"] >= 2:
            raise RuntimeError("simulated mid-shard kill")
        calls["n"] += 1
        return real(shard, ctx, base, cache, *memos)

    monkeypatch.setattr(executor_mod, "_run_shard", crashing)
    with pytest.raises(RuntimeError, match="simulated mid-shard kill"):
        CerFix(uk.paper_ruleset(), master, store="sqlite", store_path=db).clean_relation(
            wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
        )
    monkeypatch.setattr(executor_mod, "_run_shard", real)
    assert sum(
        1 for l in journal.read_text().splitlines() if json.loads(l)["kind"] == "shard"
    ) == 2

    # "Restart": the master relation comes back from the *snapshot*, not
    # from the in-memory object the crashed run held.
    restarted = SqliteMasterStore(db)
    assert restarted.relation.tuples() == master.tuples()
    resumed = CerFix(uk.paper_ruleset(), restarted).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )

    assert resumed.relation.tuples() == expected.relation.tuples()
    assert resumed.report.resumed_shards == 2
    assert normalize_report(resumed.report.to_json()) == normalize_report(
        expected.report.to_json()
    )


# ---------------------------------------------------------------------------
# Store construction, persistence and selection edges
# ---------------------------------------------------------------------------


def test_sqlite_snapshot_roundtrip(tmp_path, paper_master):
    db = tmp_path / "m.db"
    written = SqliteMasterStore(db, paper_master)
    loaded = SqliteMasterStore(db)
    assert loaded.relation.tuples() == paper_master.tuples()
    assert loaded.schema.names == paper_master.schema.names
    assert loaded.stored_digest() == written.content_digest()


def test_sqlite_update_writes_through(tmp_path, paper_master):
    db = tmp_path / "m.db"
    store = SqliteMasterStore(db, Relation(paper_master.schema, paper_master.tuples()))
    first = dict(zip(paper_master.schema.names, paper_master.tuples()[0]))
    store.apply_update(add=[first], remove=[1])
    reloaded = SqliteMasterStore(db)
    assert reloaded.relation.tuples() == store.relation.tuples()
    assert reloaded.stored_digest() == store.content_digest()


def test_sqlite_missing_snapshot_is_loud(tmp_path):
    with pytest.raises(MasterDataError):
        SqliteMasterStore(tmp_path / "absent.db")


def test_sqlite_rejects_non_scalar_cells(tmp_path):
    """Only JSON scalars round-trip the snapshot losslessly; anything
    else must fail loudly at save time, not come back silently altered."""
    from repro.relational.schema import Schema

    rel = Relation(Schema("m", ["k", "v"]), [(("a", "b"), "x")])
    with pytest.raises(MasterDataError, match="JSON scalar"):
        SqliteMasterStore(tmp_path / "m.db", rel)
    assert not (tmp_path / "m.db").exists()  # validation precedes the write
    # int/float/bool/None cells are fine and round-trip exactly
    ok = Relation(Schema("m", ["k", "v"]), [(1, 2.5), (True, None)])
    SqliteMasterStore(tmp_path / "ok.db", ok)
    assert SqliteMasterStore(tmp_path / "ok.db").relation.tuples() == ok.tuples()


def test_sqlite_update_rejects_non_scalar_without_diverging(tmp_path, paper_master):
    """A rejected update must leave the in-memory relation AND the
    snapshot exactly as they were — not mutate memory and then fail the
    write-through, which would silently fork the two."""
    db = tmp_path / "m.db"
    store = SqliteMasterStore(db, Relation(paper_master.schema, paper_master.tuples()))
    before = store.relation.tuples()
    digest_before = store.stored_digest()
    bad = dict(zip(paper_master.schema.names, paper_master.tuples()[0]))
    bad[paper_master.schema.names[0]] = ("not", "a", "scalar")
    with pytest.raises(MasterDataError, match="JSON scalar"):
        store.apply_update(add=[bad], remove=[1])
    assert store.relation.tuples() == before  # memory untouched
    assert store.stored_digest() == digest_before  # snapshot untouched
    assert SqliteMasterStore(db).relation.tuples() == before


def test_sqlite_corrupt_snapshot_payload_is_loud(tmp_path, paper_master):
    """Truncated/hand-edited JSON inside the snapshot must surface as
    MasterDataError (which the CLI prettifies), not a raw decode error."""
    import sqlite3

    db = tmp_path / "m.db"
    SqliteMasterStore(db, paper_master)
    conn = sqlite3.connect(db)
    with conn:
        conn.execute("UPDATE cerfix_master SET row = '[truncated' WHERE pos = 0")
    conn.close()
    with pytest.raises(MasterDataError, match="corrupt payload"):
        SqliteMasterStore(db)


def test_sqlite_tampered_snapshot_fails_digest_check(tmp_path, paper_master):
    import json
    import sqlite3

    db = tmp_path / "m.db"
    SqliteMasterStore(db, paper_master)
    tampered = list(paper_master.tuples()[0])
    tampered[0] = "Mallory"
    conn = sqlite3.connect(db)
    with conn:
        conn.execute(
            "UPDATE cerfix_master SET row = ? WHERE pos = 0", (json.dumps(tampered),)
        )
    conn.close()
    with pytest.raises(MasterDataError, match="content-digest check"):
        SqliteMasterStore(db)


def test_make_store_selection(tmp_path, paper_master):
    assert make_store(paper_master, "single").backend == "single"
    sharded = make_store(paper_master, "sharded", shards=7)
    assert sharded.backend == "sharded" and sharded.shards == 7
    sqlite = make_store(paper_master, "sqlite", path=tmp_path / "m.db")
    assert sqlite.backend == "sqlite"
    with pytest.raises(MasterDataError):
        make_store(paper_master, "sqlite")  # no path
    with pytest.raises(MasterDataError):
        make_store(paper_master, "mongodb")
    with pytest.raises(MasterDataError):
        ShardedMasterStore(paper_master, shards=0)


def test_shard_routing_is_deterministic_and_total():
    keys = [("EH8 4AH",), ("", ""), ("a", "b"), (None,), ("131",)]
    for n in (1, 2, 3, 64):
        for key in keys:
            s = shard_of(key, n)
            assert 0 <= s < n
            assert s == shard_of(key, n)  # stable within a process
    assert all(shard_of(k, 1) == 0 for k in keys)


def test_sharded_stats_track_probes(paper_ruleset, paper_master):
    store = ShardedMasterStore(
        Relation(paper_master.schema, paper_master.tuples()), shards=3
    )
    store.prebuild(paper_ruleset)
    values = uk.fig3_truth()
    n_probes = 0
    for rule in paper_ruleset:
        if not rule.is_constant:
            store.probe(rule, values)
            n_probes += 1
    stats = store.stats()
    assert stats["backend"] == "sharded"
    assert stats["shards"] == 3
    assert sum(stats["probes_by_shard"]) == n_probes
    assert stats["specs_partitioned"] == len(paper_ruleset.index_specs())


def test_engine_store_selection_and_instance_surface(tmp_path):
    engine = CerFix(
        uk.paper_ruleset(), uk.paper_master(), store="sharded", store_shards=2
    )
    assert engine.master.store.backend == "sharded"
    from repro.explorer.web import CerFixWebApp

    status, payload = CerFixWebApp(engine).handle("GET", "/api/instance", None)
    assert status == 200
    assert payload["store"]["backend"] == "sharded"
    assert payload["store"]["shards"] == 2
    with pytest.raises(Exception):
        CerFix(uk.paper_ruleset(), engine.master, store="sharded")  # already wrapped
