"""The batch pipeline: planner, probe cache, and parallel determinism.

The load-bearing properties, per ISSUE 2's acceptance criteria:

- thread and process execution at 1/2/4 workers is *byte-identical*
  to the serial path (uk_customers and hospital scenarios);
- the planner collapses duplicate repair signatures and each group is
  resolved exactly once;
- probe-cache hit counters are exact on relations with duplicated
  tuples.
"""

from __future__ import annotations

import pickle

import pytest

from repro import CerFix
from repro.batch import BatchCleaner, ProbeCache, build_plan
from repro.batch.cache import CachingMasterDataManager
from repro.batch.executor import BatchContext
from repro.errors import CerFixError
from repro.master.manager import MasterDataManager
from repro.master.store import ShardedMasterStore
from repro.relational.relation import Relation
from repro.scenarios import hospital, uk_customers as uk


# ---------------------------------------------------------------------------
# Shared workloads (small but dirty enough to exercise every layer)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def uk_batch():
    master = uk.generate_master(20, seed=31)
    wl = uk.generate_workload(master, 40, rate=0.25, seed=32)
    return master, wl


@pytest.fixture(scope="module")
def hospital_batch():
    master = hospital.generate_master(15, seed=33)
    wl = hospital.generate_workload(master, 30, rate=0.2, seed=34)
    return master, wl


def _clean(master, wl, ruleset, **kwargs):
    engine = CerFix(ruleset, master)
    return engine.clean_relation(wl.dirty, wl.clean, **kwargs)


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


def test_plan_groups_duplicates(uk_batch):
    master, wl = uk_batch
    doubled = Relation(wl.dirty.schema, wl.dirty.tuples() + wl.dirty.tuples())
    truth2 = Relation(wl.clean.schema, wl.clean.tuples() + wl.clean.tuples())
    plan = build_plan(doubled, truth2, shards=4)
    assert plan.total_tuples == 2 * len(wl.dirty)
    assert plan.n_groups <= len(wl.dirty)
    assert plan.duplicates_collapsed >= len(wl.dirty)
    # every row lands in exactly one group
    members = sorted(m for g in plan.groups for m in g.members)
    assert members == list(range(len(doubled)))
    # shards partition the groups
    sharded = sorted(g.representative for s in plan.shards for g in s.groups)
    assert sharded == sorted(g.representative for g in plan.groups)


def test_plan_dedupe_off_keeps_every_row(uk_batch):
    _, wl = uk_batch
    plan = build_plan(wl.dirty, wl.clean, dedupe=False)
    assert plan.n_groups == len(wl.dirty)
    assert plan.duplicates_collapsed == 0


def test_plan_fingerprint_sensitivity(uk_batch):
    _, wl = uk_batch
    base = build_plan(wl.dirty, wl.clean, shards=4)
    assert base.fingerprint == build_plan(wl.dirty, wl.clean, shards=4).fingerprint
    assert base.fingerprint != build_plan(wl.dirty, wl.clean, shards=2).fingerprint
    assert base.fingerprint != build_plan(wl.dirty, shards=4).fingerprint
    assert base.fingerprint != build_plan(
        wl.dirty, wl.clean, shards=4, context=("other-engine",)
    ).fingerprint


def test_plan_rejects_bad_inputs(uk_batch):
    _, wl = uk_batch
    with pytest.raises(CerFixError):
        build_plan(wl.dirty, wl.clean, shards=0)
    short = Relation(wl.clean.schema, wl.clean.tuples()[:-1])
    with pytest.raises(CerFixError):
        build_plan(wl.dirty, short)


# ---------------------------------------------------------------------------
# Parallel determinism (the acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("thread", "process"))
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_uk_parallel_identical_to_serial(uk_batch, backend, workers):
    master, wl = uk_batch
    serial = _clean(master, wl, uk.paper_ruleset(), workers=1)
    parallel = _clean(
        master, wl, uk.paper_ruleset(), workers=workers, backend=backend
    )
    assert parallel.relation.tuples() == serial.relation.tuples()
    assert parallel.relation.schema.names == serial.relation.schema.names
    # the work accounting is scheduling-independent too
    assert parallel.report.completed == serial.report.completed
    assert parallel.report.user_cells == serial.report.user_cells
    assert parallel.report.rule_cells == serial.report.rule_cells


@pytest.mark.parametrize("backend", ("thread", "process"))
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_hospital_parallel_identical_to_serial(hospital_batch, backend, workers):
    master, wl = hospital_batch
    serial = _clean(master, wl, hospital.hospital_ruleset(), workers=1)
    parallel = _clean(
        master, wl, hospital.hospital_ruleset(), workers=workers, backend=backend
    )
    assert parallel.relation.tuples() == serial.relation.tuples()
    assert parallel.report.completed == serial.report.completed


def test_oracle_batch_reaches_truth(uk_batch):
    """With an oracle user, a completed batch equals the ground truth."""
    master, wl = uk_batch
    result = _clean(master, wl, uk.paper_ruleset(), workers=1)
    assert result.report.completed == result.report.tuples
    assert result.relation.tuples() == wl.clean.tuples()


def test_sharding_never_changes_output(uk_batch):
    master, wl = uk_batch
    rows = _clean(master, wl, uk.paper_ruleset(), workers=1, shards=1).relation.tuples()
    for shards in (3, 7, 16):
        assert (
            _clean(master, wl, uk.paper_ruleset(), workers=1, shards=shards)
            .relation.tuples()
            == rows
        )


# ---------------------------------------------------------------------------
# Probe cache
# ---------------------------------------------------------------------------


def test_probe_cache_lru_eviction():
    cache = ProbeCache(maxsize=2)
    from repro.master.manager import MasterMatch

    m = MasterMatch(positions=(0,), values=("x",))
    cache.put(("a",), m)
    cache.put(("b",), m)
    assert cache.get(("a",)) is m  # refreshes 'a'
    cache.put(("c",), m)  # evicts 'b' (least recent)
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) is m
    assert cache.get(("c",)) is m
    assert cache.evictions == 1


def test_caching_manager_matches_base(paper_ruleset, paper_manager):
    """A cached probe returns exactly what the base manager computes."""
    manager = CachingMasterDataManager(paper_manager.relation, ProbeCache(64))
    values = uk.fig3_truth()
    for rule in paper_ruleset:
        if rule.is_constant:
            continue
        base = paper_manager.match(rule, values)
        assert manager.match(rule, values) == base  # miss path
        assert manager.match(rule, values) == base  # hit path
    assert manager.hits == manager.misses  # every probe repeated once


def test_cache_counters_exact_on_duplicated_relation():
    """Duplicating a 1-tuple relation 3x adds no probe work at all: the
    chase-transcript memo resolves tuples 2 and 3 without ever reaching
    the probe cache (dedupe=False makes each its own group, so this is
    the memo, not the planner), and what the first tuple probed is
    exactly what the run probed."""
    master = uk.paper_master()
    dirty1 = Relation(uk.INPUT_SCHEMA, [uk.fig3_tuple()])
    truth1 = Relation(uk.INPUT_SCHEMA, [uk.fig3_truth()])

    def run(dirty, truth):
        cleaner = BatchCleaner(uk.paper_ruleset(), master)
        result = cleaner.clean(dirty, truth, workers=1, dedupe=False)
        return result, result.report.cache.hits, result.report.cache.misses

    result1, hits1, misses1 = run(dirty1, truth1)
    probes1 = hits1 + misses1
    assert misses1 > 0 and probes1 > 0

    dirty3 = Relation(uk.INPUT_SCHEMA, dirty1.tuples() * 3)
    truth3 = Relation(uk.INPUT_SCHEMA, truth1.tuples() * 3)
    result3, hits3, misses3 = run(dirty3, truth3)
    assert misses3 == misses1  # nothing new to learn
    assert hits3 == hits1  # ...and nothing re-probed: transcripts replayed
    assert result3.relation.tuples() == result1.relation.tuples() * 3


@pytest.mark.parametrize(
    "workers,backend", ((1, "thread"), (2, "process"))
)
def test_tiny_cache_reports_evictions(uk_batch, workers, backend):
    """A 1-entry cache must thrash — and the report must say so, on the
    shared-cache path and the per-process path alike."""
    master, wl = uk_batch
    cleaner = BatchCleaner(uk.paper_ruleset(), master, cache_size=1)
    result = cleaner.clean(wl.dirty, wl.clean, workers=workers, backend=backend)
    assert result.report.cache.evictions > 0


def test_duplicate_signatures_mean_cache_hits_and_dedup(uk_batch):
    master, wl = uk_batch
    doubled = Relation(wl.dirty.schema, wl.dirty.tuples() + wl.dirty.tuples())
    truth2 = Relation(wl.clean.schema, wl.clean.tuples() + wl.clean.tuples())
    result = CerFix(uk.paper_ruleset(), master).clean_relation(doubled, truth2)
    assert result.report.duplicates_collapsed >= len(wl.dirty)
    assert result.report.cache.hit_rate > 0
    assert result.report.dedup_ratio >= 2.0


# ---------------------------------------------------------------------------
# Pickling (what the process backend ships to its workers)
# ---------------------------------------------------------------------------


def test_relation_pickles_without_indexes(paper_ruleset, paper_master):
    """``Relation.__reduce__`` ships schema + raw tuples only; indexes
    are derived caches that rebuild lazily on the other side."""
    relation = Relation(paper_master.schema, paper_master.tuples())
    index = relation.index_on(("zip",))
    assert len(index) == len(relation)
    clone = pickle.loads(pickle.dumps(relation))
    assert clone._indexes == {}  # nothing shipped
    assert clone.tuples() == relation.tuples()
    assert clone.schema.names == relation.schema.names
    # lazy rebuild yields the same lookups as the original
    key = (paper_master.tuples()[0][relation.schema.position("zip")],)
    assert [r.values for r in clone.lookup(("zip",), key)] == [
        r.values for r in relation.lookup(("zip",), key)
    ]


def test_relation_pickle_roundtrip_preserves_mutability(paper_master):
    clone = pickle.loads(pickle.dumps(paper_master))
    pos = clone.append(clone.tuples()[0])
    assert pos == len(paper_master)  # the original is untouched
    clone.update_cell(0, clone.schema.names[0], "patched")
    assert clone.tuples()[0][0] == "patched"


def test_sharded_sub_relations_rebuild_lazily_on_workers(paper_ruleset, paper_master):
    """The batch context of a sharded-store run ships raw tuples only:
    unpickling (what every process-pool worker does) must carry zero
    prebuilt shard indexes, and the first probe materialises exactly
    the routed shard."""
    store = ShardedMasterStore(
        Relation(paper_master.schema, paper_master.tuples()), shards=4
    )
    manager = MasterDataManager(store)
    manager.prebuild(paper_ruleset)  # parent side: fully built
    ctx = BatchContext(ruleset=paper_ruleset, master=manager)
    shipped = pickle.loads(pickle.dumps(ctx))
    worker_store = shipped.master.store
    assert worker_store.stats()["specs_partitioned"] == 0
    assert worker_store.stats()["shard_indexes_built"] == 0
    rule = next(r for r in paper_ruleset if not r.is_constant)
    match = worker_store.probe(rule, uk.fig3_truth())
    assert match == store.probe(rule, uk.fig3_truth())
    assert shipped.master.store.stats()["shard_indexes_built"] == 1


def test_process_backend_with_sharded_store_identical(uk_batch):
    master, wl = uk_batch
    store = ShardedMasterStore(Relation(master.schema, master.tuples()), shards=3)
    serial = _clean(master, wl, uk.paper_ruleset(), workers=1, shards=6)
    sharded = CerFix(uk.paper_ruleset(), store).clean_relation(
        wl.dirty, wl.clean, workers=2, backend="process", shards=6
    )
    assert sharded.relation.tuples() == serial.relation.tuples()
    assert sharded.report.completed == serial.report.completed


# ---------------------------------------------------------------------------
# Rule-only (no-truth) mode and report accounting
# ---------------------------------------------------------------------------


def test_rule_only_mode_repairs_from_trusted_columns():
    master = uk.paper_master()
    dirty = Relation(
        uk.INPUT_SCHEMA,
        [
            {**uk.fig3_tuple(), "zip": "DH1 3LE"},  # trusted zip, dirty street/city
        ],
    )
    engine = CerFix(uk.paper_ruleset(), master)
    result = engine.clean_relation(dirty, validated=("zip",))
    fixed = result.relation.row(0).to_dict()
    assert fixed["str"] == "20 Baker St"  # phi2 from the validated zip
    assert fixed["city"] == "Dur"  # phi3
    assert fixed["FN"] == "M."  # untouched: no rule reaches it without truth
    assert result.report.rule_cells >= 2
    assert result.report.completed == 0  # not a certain fix — that's the point


def test_rule_only_mode_unknown_validated_attr_rejected(uk_batch):
    master, wl = uk_batch
    engine = CerFix(uk.paper_ruleset(), master)
    with pytest.raises(CerFixError):
        engine.clean_relation(wl.dirty, validated=("nope",))


def test_report_shape_and_json(uk_batch):
    master, wl = uk_batch
    result = _clean(master, wl, uk.paper_ruleset(), workers=2, shards=4)
    report = result.report
    assert report.tuples == len(wl.dirty)
    assert report.groups + report.duplicates_collapsed == report.tuples
    assert len(report.shards) == report.executed_shards == 4
    assert sum(s.tuples for s in report.shards) == report.tuples
    assert 0.0 < report.auto_share < 1.0
    assert report.user_share + report.auto_share == pytest.approx(1.0)
    payload = report.to_json()
    assert payload["tuples"] == report.tuples
    assert payload["cache"]["hits"] == report.cache.hits
    assert len(payload["shards"]) == 4
    assert "throughput" in payload
    text = report.describe()
    assert "duplicates collapsed" in text and "hit rate" in text


def test_schema_mismatch_rejected(uk_batch):
    master, _ = uk_batch
    engine = CerFix(uk.paper_ruleset(), master)
    wrong = Relation(uk.MASTER_SCHEMA, master.tuples())
    with pytest.raises(CerFixError):
        engine.clean_relation(wrong)


# ---------------------------------------------------------------------------
# Projection dedup: rule-relevant signatures (ISSUE 4 satellite)
# ---------------------------------------------------------------------------


def test_transcript_projection_covers_rule_and_region_attrs():
    from repro.batch.planner import transcript_projection
    from repro.core.region import RankedRegion, Region
    from repro.core.certainty import CertaintyMode

    ruleset = hospital.hospital_ruleset()
    projection = transcript_projection(ruleset)
    for rule in ruleset:
        assert set(rule.reads) <= projection
        assert rule.target in projection
    # the hospital payload columns are exactly what no rule mentions
    assert set(hospital.INPUT_SCHEMA.names) - projection == {"score", "sample"}
    region = RankedRegion(Region(("score", "zip")), CertaintyMode.ANCHORED, coverage=1.0)
    assert "score" in transcript_projection(ruleset, regions=(region,))
    assert "sample" in transcript_projection(ruleset, validated=("sample",))
    # uk: only 'item' (a mandatory payload column — user-validated, never
    # read or written by a rule) falls outside the projection
    uk_proj = transcript_projection(uk.paper_ruleset())
    assert set(uk.INPUT_SCHEMA.names) - uk_proj == {"item"}


def _payload_duplicated_workload(hospital_batch):
    """Every row duplicated with only the payload columns corrupted —
    collapsible under projection, never under whole-row signatures."""
    master, wl = hospital_batch
    dirty_rows, truth_rows = [], []
    for i, (d, t) in enumerate(zip(wl.dirty.rows(), wl.clean.rows())):
        dirty_rows.append(d.to_dict())
        truth_rows.append(t.to_dict())
        dup = d.to_dict()
        dup["score"] = f"garbled-{i}"
        dup["sample"] = "???"
        dirty_rows.append(dup)
        truth_rows.append(t.to_dict())
    return (
        master,
        Relation(hospital.INPUT_SCHEMA, dirty_rows),
        Relation(hospital.INPUT_SCHEMA, truth_rows),
    )


def test_projected_dedup_strictly_beats_whole_row_on_hospital(hospital_batch):
    from repro.batch.planner import transcript_projection

    _, dirty, truth = _payload_duplicated_workload(hospital_batch)
    projection = transcript_projection(hospital.hospital_ruleset())
    whole = build_plan(dirty, truth)
    projected = build_plan(dirty, truth, projection=projection)
    assert projected.n_groups < whole.n_groups  # strictly more dedup
    assert projected.n_groups <= len(dirty) // 2
    assert projected.fingerprint != whole.fingerprint  # journals cannot mix
    # every row still belongs to exactly one group
    members = sorted(m for g in projected.groups for m in g.members)
    assert members == list(range(len(dirty)))


def test_projected_dedup_output_is_bit_identical_to_no_dedupe(hospital_batch):
    master, dirty, truth = _payload_duplicated_workload(hospital_batch)
    ruleset = hospital.hospital_ruleset()

    plain_engine = CerFix(ruleset, master)
    plain = plain_engine.clean_relation(dirty, truth, dedupe=False)
    deduped_engine = CerFix(ruleset, master)
    deduped = deduped_engine.clean_relation(dirty, truth, dedupe=True)

    # the dedup actually collapsed payload-only duplicates...
    assert deduped.report.groups <= len(dirty) // 2
    # ...yet rows, per-tuple audit trails (member-specific old values
    # included) and the changed-cell accounting are identical
    assert deduped.relation.tuples() == plain.relation.tuples()

    def per_tuple(audit):
        out = {}
        for e in audit:
            j = e.to_json()
            j.pop("seq")
            out.setdefault(j["tuple_id"], []).append(j)
        return out

    assert per_tuple(deduped_engine.audit) == per_tuple(plain_engine.audit)
    assert deduped.report.changed_cells == plain.report.changed_cells
    assert deduped.report.completed == plain.report.completed
    assert deduped.report.user_cells == plain.report.user_cells


def test_projected_dedup_rule_only_keeps_member_payload(hospital_batch):
    """Without ground truth, an untouched payload cell keeps *its own*
    dirty value — not the group representative's."""
    master, dirty, _ = _payload_duplicated_workload(hospital_batch)
    ruleset = hospital.hospital_ruleset()
    engine = CerFix(ruleset, master)
    result = engine.clean_relation(dirty, None, validated=("provider_id",), dedupe=True)
    assert result.report.groups < len(dirty)
    names = hospital.INPUT_SCHEMA.names
    score_at = names.index("score")
    sample_at = names.index("sample")
    for i, row in enumerate(result.relation.tuples()):
        assert row[score_at] == dirty.raw_tuples()[i][score_at]
        assert row[sample_at] == dirty.raw_tuples()[i][sample_at]


# ---------------------------------------------------------------------------
# Cross-run probe-cache persistence
# ---------------------------------------------------------------------------


def test_probe_cache_persists_across_runs(uk_batch, tmp_path):
    master, wl = uk_batch
    path = tmp_path / "probes.cache"
    r1 = _clean(master, wl, uk.paper_ruleset(), cache_path=path)
    assert r1.report.persistence.startswith("cold start")
    assert "; saved" in r1.report.persistence
    assert path.exists()
    r2 = _clean(master, wl, uk.paper_ruleset(), cache_path=path)
    assert r2.report.persistence.startswith("warm start")
    # every probe the first run paid for is answered from the snapshot
    assert r2.report.cache.misses == 0
    assert r2.report.cache.hits > 0
    assert r2.relation.tuples() == r1.relation.tuples()


def test_probe_cache_snapshot_rejected_when_master_changes(uk_batch, tmp_path):
    master, wl = uk_batch
    path = tmp_path / "probes.cache"
    _clean(master, wl, uk.paper_ruleset(), cache_path=path)
    other_master = uk.generate_master(20, seed=99)
    engine = CerFix(uk.paper_ruleset(), other_master)
    result = engine.clean_relation(wl.dirty, wl.clean, cache_path=path)
    assert "master data changed" in result.report.persistence
    # ...and the stale snapshot is replaced by one stamped for the new master
    r2 = engine.clean_relation(wl.dirty, wl.clean, cache_path=path)
    assert r2.report.persistence.startswith("warm start")


def test_probe_cache_corrupt_snapshot_degrades_to_cold_start(uk_batch, tmp_path):
    master, wl = uk_batch
    path = tmp_path / "probes.cache"
    path.write_bytes(b"not a pickle")
    result = _clean(master, wl, uk.paper_ruleset(), cache_path=path)
    assert "cold start" in result.report.persistence
    assert result.report.tuples == len(wl.dirty)


def test_probe_cache_persistence_skipped_on_process_backend(uk_batch, tmp_path):
    master, wl = uk_batch
    path = tmp_path / "probes.cache"
    result = _clean(
        master, wl, uk.paper_ruleset(),
        cache_path=path, workers=2, backend="process",
    )
    assert result.report.persistence.startswith("skipped")
    assert not path.exists()


def test_probe_cache_preload_respects_maxsize():
    from repro.master.manager import MasterMatch

    cache = ProbeCache(maxsize=2)
    entries = [((f"r{i}", (i,)), MasterMatch((), ())) for i in range(5)]
    assert cache.preload(entries) == 2
    assert cache.evictions == 0  # preload overflow is not a runtime eviction
    assert cache.get(("r4", (4,))) is not None
    assert cache.get(("r0", (0,))) is None
