"""Tests for incremental master-data maintenance."""

import pytest

from repro import CerFix, CertaintyMode
from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.scenarios import uk_customers as uk


class TestDeleteRows:
    def test_delete(self):
        rel = Relation(Schema("r", ["a"]), [(1,), (2,), (3,)])
        rel.delete_rows([1])
        assert rel.column("a") == [1, 3]

    def test_delete_many(self):
        rel = Relation(Schema("r", ["a"]), [(1,), (2,), (3,), (4,)])
        rel.delete_rows({0, 2})
        assert rel.column("a") == [2, 4]

    def test_delete_nothing(self):
        rel = Relation(Schema("r", ["a"]), [(1,)])
        rel.delete_rows([])
        assert len(rel) == 1

    def test_delete_bad_position(self):
        rel = Relation(Schema("r", ["a"]), [(1,)])
        with pytest.raises(RelationError):
            rel.delete_rows([5])

    def test_delete_invalidates_indexes(self):
        rel = Relation(Schema("r", ["a"]), [(1,), (2,)])
        assert len(rel.lookup(("a",), (2,))) == 1
        rel.delete_rows([1])
        assert len(rel.lookup(("a",), (2,))) == 0


@pytest.fixture()
def engine(paper_ruleset, paper_master):
    # fresh copies per test: updates mutate the master relation
    master = Relation(paper_master.schema, paper_master.tuples())
    eng = CerFix(
        paper_ruleset,
        master,
        mode=CertaintyMode.SCENARIO,
        scenario=uk.scenario_tuples(master),
    )
    eng.precompute_regions(k=3)
    return eng


class TestUpdateMaster:
    def test_compatible_add_keeps_regions(self, engine):
        new_person = {
            "FN": "Alice", "LN": "Wong", "AC": "131", "Hphn": "5551234",
            "Mphn": "07999000111", "str": "7 New St", "city": "Edi",
            "zip": "EH9 9XY", "DOB": "01/01/90", "gender": "F",
        }
        before = len(engine.regions)
        report = engine.update_master(add=[new_person])
        assert report.added == 1
        assert len(report.regions_kept) == before
        assert not report.regions_dropped
        # the new entity is fixable right away
        t = {
            "FN": "?", "LN": "?", "AC": "131", "phn": "07999000111",
            "type": "2", "str": "?", "city": "?", "zip": "EH9 9XY", "item": "CD",
        }
        result = engine.chase_once(t, ["AC", "phn", "type", "item", "zip"])
        assert result.is_complete
        assert result.values["FN"] == "Alice"

    def test_ambiguating_add_drops_regions(self, engine):
        """A new person sharing Mark's mobile number makes phi4/phi5
        ambiguous: regions relying on the mobile path must be dropped."""
        impostor = {
            "FN": "Impostor", "LN": "Smith", "AC": "201", "Hphn": "1112223",
            "Mphn": "075568485",  # same mobile as master tuple 2
            "str": "1 Fake St", "city": "Dur", "zip": "DH7 7AA",
            "DOB": "02/02/80", "gender": "M",
        }
        report = engine.update_master(add=[impostor])
        assert report.regions_dropped
        dropped_attrs = {r.region.attrs for r, _ in report.regions_dropped}
        # the top region (mobile path, type=2) is among the casualties
        assert ("AC", "item", "phn", "type", "zip") in dropped_attrs
        assert "dropped" in report.describe()

    def test_remove_entity_vacuous_under_scenario(self, engine):
        """Under SCENARIO semantics, removing Mark shrinks the correct-
        tuple universe, so his tableau rows become vacuous rather than
        broken — regions survive (they just cover less)."""
        report = engine.update_master(remove=[1])
        assert report.removed == 1
        assert len(engine.master) == 1
        assert report.regions_kept and not report.regions_dropped

    def test_remove_entity_drops_coverage_anchored(self, engine):
        """Re-certifying under ANCHORED (where tableau constants are part
        of the quantified universe) exposes the lost coverage: Mark's
        pinned rows now fail and the regions are dropped."""
        report = engine.update_master(remove=[1], mode=CertaintyMode.ANCHORED)
        assert report.regions_dropped
        dropped_attrs = {r.region.attrs for r, _ in report.regions_dropped}
        assert ("AC", "item", "phn", "type", "zip") in dropped_attrs

    def test_regions_cache_updated(self, engine):
        impostor_free = {
            "FN": "Alice", "LN": "Wong", "AC": "131", "Hphn": "5551234",
            "Mphn": "07999000111", "str": "7 New St", "city": "Edi",
            "zip": "EH9 9XY", "DOB": "01/01/90", "gender": "F",
        }
        engine.update_master(add=[impostor_free])
        assert engine.regions  # survivors stay cached for suggestions
