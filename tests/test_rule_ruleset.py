"""Unit tests for editing rules and rule sets."""

import pytest

from repro.core.pattern import Eq, PatternTuple
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.errors import RuleError
from repro.relational.schema import Schema

INPUT = Schema("t", ["a", "b", "c", "d"])
MASTER = Schema("m", ["ma", "mb", "mc"])


def rule(rid="r1", match=(("a", "ma"),), target="b", source=MasterColumn("mb"),
         pattern=None):
    return EditingRule(
        rid,
        tuple(MatchPair(t, m) for t, m in match),
        target,
        source,
        pattern or PatternTuple(),
    )


class TestMatchPair:
    def test_default_op(self):
        assert MatchPair("a", "ma").op == "exact"

    def test_unknown_op_rejected(self):
        with pytest.raises(RuleError, match="unknown operator"):
            MatchPair("a", "ma", "soundex")

    def test_render(self):
        assert MatchPair("a", "ma").render() == "a=ma"
        assert MatchPair("a", "ma", "digits").render() == "a~digits~ma"


class TestEditingRule:
    def test_derived_views(self):
        r = rule(match=(("a", "ma"), ("c", "mc")), pattern=PatternTuple({"d": Eq("1")}))
        assert r.lhs_attrs == ("a", "c")
        assert r.m_attrs == ("ma", "mc")
        assert r.pattern_attrs == ("d",)
        assert r.reads == frozenset({"a", "c", "d"})

    def test_empty_rule_id_rejected(self):
        with pytest.raises(RuleError):
            rule(rid="")

    def test_master_rule_needs_match(self):
        with pytest.raises(RuleError, match="match pair"):
            EditingRule("r", (), "b", MasterColumn("mb"))

    def test_constant_rule_no_match_ok(self):
        r = EditingRule("r", (), "b", Constant("x"))
        assert r.is_constant
        assert r.reads == frozenset()

    def test_duplicate_match_attr_rejected(self):
        with pytest.raises(RuleError, match="duplicate"):
            rule(match=(("a", "ma"), ("a", "mb")))

    def test_self_normalizing_via_match(self):
        r = rule(match=(("b", "mb"),), target="b")
        assert r.is_self_normalizing

    def test_self_normalizing_via_pattern(self):
        r = rule(pattern=PatternTuple({"b": Eq("1")}))
        assert r.is_self_normalizing

    def test_not_self_normalizing(self):
        assert not rule().is_self_normalizing

    def test_index_spec(self):
        assert rule().index_spec() == (("ma",), ("exact",))
        assert EditingRule("r", (), "b", Constant("x")).index_spec() is None

    def test_validate_ok(self):
        rule().validate(INPUT, MASTER)

    def test_validate_bad_input_attr(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            rule(match=(("zz", "ma"),)).validate(INPUT, MASTER)

    def test_validate_bad_master_attr(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            rule(source=MasterColumn("zz")).validate(INPUT, MASTER)

    def test_render_roundtrippable_shape(self):
        r = rule(pattern=PatternTuple({"d": Eq("1")}))
        assert r.render() == "r1: (a=ma) -> b := master.mb if (d=1)"

    def test_render_constant(self):
        r = EditingRule("r", (), "b", Constant("x"))
        assert "const 'x'" in r.render()


class TestRuleSet:
    def test_iteration_preserves_order(self):
        rs = RuleSet([rule("r1"), rule("r2", target="c", source=MasterColumn("mc"))], INPUT, MASTER)
        assert [r.rule_id for r in rs] == ["r1", "r2"]

    def test_duplicate_id_rejected(self):
        with pytest.raises(RuleError, match="duplicate rule id"):
            RuleSet([rule("r1"), rule("r1")], INPUT, MASTER)

    def test_validation_happens_at_construction(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            RuleSet([rule(match=(("zz", "ma"),))], INPUT, MASTER)

    def test_get(self):
        rs = RuleSet([rule("r1")], INPUT, MASTER)
        assert rs.get("r1").rule_id == "r1"

    def test_get_unknown(self):
        rs = RuleSet([rule("r1")], INPUT, MASTER)
        with pytest.raises(RuleError, match="no rule"):
            rs.get("zz")

    def test_by_target_and_targets(self):
        rs = RuleSet([rule("r1"), rule("r2", target="c", source=MasterColumn("mc"))], INPUT, MASTER)
        assert [r.rule_id for r in rs.by_target("b")] == ["r1"]
        assert rs.targets == frozenset({"b", "c"})
        assert rs.by_target("zz") == ()

    def test_contains_and_len(self):
        rs = RuleSet([rule("r1")], INPUT, MASTER)
        assert "r1" in rs and "zz" not in rs
        assert len(rs) == 1

    def test_index_specs_deduplicated(self):
        rs = RuleSet(
            [rule("r1"), rule("r2", target="c", source=MasterColumn("mc"))],
            INPUT,
            MASTER,
        )
        assert rs.index_specs() == {(("ma",), ("exact",))}

    def test_add_returns_new(self):
        rs = RuleSet([rule("r1")], INPUT, MASTER)
        rs2 = rs.add(rule("r2"))
        assert len(rs) == 1 and len(rs2) == 2

    def test_remove(self):
        rs = RuleSet([rule("r1"), rule("r2")], INPUT, MASTER)
        assert [r.rule_id for r in rs.remove("r1")] == ["r2"]

    def test_remove_unknown(self):
        rs = RuleSet([rule("r1")], INPUT, MASTER)
        with pytest.raises(RuleError, match="unknown"):
            rs.remove("zz")

    def test_reordered(self):
        rs = RuleSet([rule("r1"), rule("r2")], INPUT, MASTER)
        assert [r.rule_id for r in rs.reordered(["r2", "r1"])] == ["r2", "r1"]

    def test_reordered_requires_permutation(self):
        rs = RuleSet([rule("r1"), rule("r2")], INPUT, MASTER)
        with pytest.raises(RuleError, match="permutation"):
            rs.reordered(["r1"])

    def test_paper_ruleset_shape(self, paper_ruleset):
        assert len(paper_ruleset) == 9
        assert paper_ruleset.targets == frozenset({"zip", "str", "city", "FN", "LN"})
