"""Tests for the UK-customers and hospital scenarios (paper artefacts)."""


from repro.core.chase import chase
from repro.core.inference import mandatory_attributes
from repro.master.manager import MasterDataManager
from repro.scenarios import hospital, uk_customers as uk


class TestPaperArtefacts:
    def test_schemas_match_paper(self):
        assert uk.INPUT_SCHEMA.names == (
            "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item"
        )
        assert uk.MASTER_SCHEMA.names == (
            "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender"
        )

    def test_nine_rules(self):
        assert [r.rule_id for r in uk.paper_rules()] == [
            f"phi{i}" for i in range(1, 10)
        ]

    def test_master_tuple_s_from_example2(self, paper_master):
        s = paper_master.row(0)
        assert s["FN"] == "Robert" and s["LN"] == "Brady"
        assert s["AC"] == "131" and s["zip"] == "EH8 4AH"
        assert s["Mphn"] == "079172485"

    def test_example1_tuple_matches_paper(self):
        t = uk.example1_tuple()
        assert t["AC"] == "020" and t["city"] == "Edi" and t["zip"] == "EH8 4AH"

    def test_example1_truth_has_corrected_ac(self):
        assert uk.example1_truth()["AC"] == "131"

    def test_extended_ruleset_includes_example2_rule(self):
        rs = uk.paper_ruleset(extended=True)
        assert "phi10" in rs
        assert rs.get("phi10").target == "AC"

    def test_paper_cfds_cover_psi1_psi2(self):
        cfds = uk.paper_cfds()
        rel_rows = [(row.lhs.condition("AC"), row.rhs) for row in cfds[0].tableau]
        from repro.core.pattern import Eq

        assert (Eq("020"), Eq("Ldn")) in rel_rows
        assert (Eq("131"), Eq("Edi")) in rel_rows

    def test_mandatory_attrs_are_fig3a(self, paper_ruleset):
        assert mandatory_attributes(paper_ruleset) == frozenset(
            {"AC", "phn", "type", "item"}
        )


class TestUKGeneration:
    def test_master_size_and_uniqueness(self, uk_master_100):
        assert len(uk_master_100) == 102  # paper's 2 + generated 100
        assert len(set(uk_master_100.column("Mphn"))) == len(uk_master_100)
        assert len(set(uk_master_100.column("zip"))) == len(uk_master_100)
        home = {(r["AC"], r["Hphn"]) for r in uk_master_100.rows()}
        assert len(home) == len(uk_master_100)

    def test_master_geography_consistent(self, uk_master_100):
        from repro.datagen.pools import region_for_ac

        for row in uk_master_100.rows():
            region = region_for_ac(row["AC"])
            assert row["city"] == region.city
            assert any(row["zip"].startswith(d) for d in region.districts)

    def test_clean_inputs_describe_master_entities(self, uk_master_100):
        clean = uk.clean_inputs_from_master(uk_master_100, 40, seed=4)
        by_mob = {r["Mphn"]: r for r in uk_master_100.rows()}
        by_home = {(r["AC"], r["Hphn"]): r for r in uk_master_100.rows()}
        for t in clean.rows():
            if t["type"] == "2":
                s = by_mob[t["phn"]]
            else:
                s = by_home[(t["AC"], t["phn"])]
            assert t["FN"] == s["FN"] and t["zip"] == s["zip"]

    def test_workload_reports_ground_truth(self, uk_workload):
        assert len(uk_workload.dirty) == len(uk_workload.clean) == 120
        assert uk_workload.error_cells > 0
        for e in uk_workload.errors:
            assert uk_workload.dirty.row(e.position)[e.attr] == e.dirty

    def test_scenario_tuples_cover_both_phone_types(self, paper_master):
        tuples = list(uk.scenario_tuples(paper_master)())
        assert len(tuples) == 4  # 2 master rows x 2 phone types
        assert {t["type"] for t in tuples} == {"1", "2"}

    def test_scenario_tuples_chase_complete(self, paper_ruleset, paper_manager, paper_master):
        """Every scenario-correct tuple with everything validated is a
        (trivially) certain fix — sanity for the SCENARIO universe."""
        for t in uk.scenario_tuples(paper_master)():
            result = chase(t, uk.INPUT_SCHEMA.names, paper_ruleset, paper_manager)
            assert result.is_complete
            assert not result.conflicts


class TestHospitalScenario:
    def test_schema_is_19_attributes(self):
        assert len(hospital.INPUT_SCHEMA) == 19

    def test_mandatory_is_four_payload_attrs(self, hospital_ruleset):
        assert mandatory_attributes(hospital_ruleset) == frozenset(
            {"provider_id", "measure_code", "score", "sample"}
        )

    def test_rules_validate_against_schemas(self, hospital_ruleset):
        assert len(hospital_ruleset) > 100  # 11 master-sourced + derived constants

    def test_master_unique_keys(self, hospital_master):
        ids = hospital_master.column("provider_id")
        zips = hospital_master.column("zip")
        assert len(set(ids)) == len(ids)
        assert len(set(zips)) == len(zips)

    def test_zip_determines_city_state(self, hospital_master):
        seen = {}
        for row in hospital_master.rows():
            key = row["zip"]
            val = (row["city"], row["state"])
            assert seen.setdefault(key, val) == val

    def test_clean_records_consistent(self, hospital_master):
        clean = hospital.clean_inputs_from_master(hospital_master, 30, seed=2)
        by_id = {r["provider_id"]: r for r in hospital_master.rows()}
        names = dict(hospital.STATES)
        for t in clean.rows():
            p = by_id[t["provider_id"]]
            assert t["hname"] == p["hname"]
            assert t["state_name"] == names[t["state"]]
            assert t["stateavg"] == f"{t['state']}-{t['measure_code']}"

    def test_provider_key_chases_whole_record(self, hospital_ruleset, hospital_master):
        clean = hospital.clean_inputs_from_master(hospital_master, 1, seed=5)
        t = clean.row(0).to_dict()
        manager = MasterDataManager(hospital_master)
        result = chase(
            t, ["provider_id", "measure_code", "score", "sample"],
            hospital_ruleset, manager,
        )
        assert result.is_complete

    def test_user_share_near_paper_claim(self, hospital_ruleset, hospital_master):
        """4 of 19 attributes validated by the user ≈ the paper's 20%."""
        from repro import CerFix

        workload = hospital.generate_workload(hospital_master, 40, rate=0.25, seed=6)
        engine = CerFix(hospital_ruleset, hospital_master)
        report = engine.stream(workload.dirty, workload.clean)
        assert report.completed == 40
        assert 0.18 <= report.user_share <= 0.25
        assert report.auto_share >= 0.75

    def test_workload_injects_errors(self, hospital_master):
        workload = hospital.generate_workload(hospital_master, 25, rate=0.3, seed=8)
        assert workload.error_cells > 0
        # payload attributes stay clean by design
        assert all(e.attr not in ("provider_id", "measure_code", "score", "sample")
                   for e in workload.errors)
