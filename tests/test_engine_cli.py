"""Tests for the CerFix engine facade, the explorer CLI and rendering."""


from repro import CerFix, OracleUser, Region
from repro.explorer.cli import build_parser, main
from repro.explorer.render import format_kv, format_table, highlight
from repro.scenarios import uk_customers as uk


class TestEngine:
    def test_repr(self, paper_engine):
        text = repr(paper_engine)
        assert "9 rules" in text and "master 2 tuples" in text

    def test_check_consistency(self, paper_engine):
        assert paper_engine.check_consistency(samples=5).is_consistent

    def test_precompute_regions_cached(self, paper_engine):
        regions = paper_engine.precompute_regions(k=3)
        assert paper_engine.regions == tuple(regions)
        assert regions[0].region.attrs == ("AC", "item", "phn", "type", "zip")

    def test_certify_region(self, paper_engine):
        report = paper_engine.certify_region(
            Region(("AC", "FN", "LN", "item", "phn", "type", "zip"))
        )
        assert report.certain

    def test_fix_with_oracle(self, paper_engine):
        session = paper_engine.fix(uk.fig3_tuple(), OracleUser(uk.fig3_truth()), "t9")
        assert session.is_complete
        assert session.fixed_values() == uk.fig3_truth()

    def test_sessions_share_audit(self, paper_engine):
        paper_engine.fix(uk.fig3_tuple(), OracleUser(uk.fig3_truth()), "a")
        paper_engine.fix(uk.fig3_tuple(), OracleUser(uk.fig3_truth()), "b")
        assert set(paper_engine.audit.tuple_ids()) == {"a", "b"}

    def test_chase_once(self, paper_engine):
        result = paper_engine.chase_once(uk.fig3_tuple(), ["AC", "phn", "type", "item"])
        assert result.values["FN"] == "Mark"

    def test_stream(self, paper_engine, uk_master_100):
        workload = uk.generate_workload(uk_master_100, 10, seed=3)
        engine = CerFix(paper_engine.ruleset, uk_master_100)
        report = engine.stream(workload.dirty, workload.clean)
        assert report.completed == 10

    def test_accepts_manager_or_relation(self, paper_ruleset, paper_master, paper_manager):
        assert len(CerFix(paper_ruleset, paper_master).master) == 2
        assert len(CerFix(paper_ruleset, paper_manager).master) == 2


class TestRender:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, "xx"), (22, "y")])
        lines = text.splitlines()
        assert lines[0].index("bb") == lines[1].index("-+-") - 1 or "bb" in lines[0]
        assert "22" in lines[3] if len(lines) > 3 else "22" in text

    def test_format_table_truncates(self):
        text = format_table(("a",), [("x" * 100,)], max_width=10)
        assert "…" in text
        assert "x" * 50 not in text

    def test_format_table_title(self):
        assert format_table(("a",), [(1,)], title="T").startswith("T\n")

    def test_format_kv(self):
        text = format_kv({"one": 1, "twenty": 20})
        assert "one    : 1" in text

    def test_format_kv_empty(self):
        assert format_kv({}, title="x") == "x"

    def test_highlight_markers(self):
        text = highlight({"a": 1, "b": 2, "c": 3}, suggested={"a"}, validated={"b"})
        assert "a=1[?]" in text and "b=2[ok]" in text and "c=3" in text


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["rules", "--scenario", "uk"])
        assert args.command == "rules"

    def test_rules_listing(self, capsys):
        assert main(["rules", "--scenario", "uk"]) == 0
        out = capsys.readouterr().out
        assert "phi9" in out and "9 editing rules" in out

    def test_rules_check(self, capsys):
        assert main(["rules", "--scenario", "uk", "--check"]) == 0
        assert "consistent: True" in capsys.readouterr().out

    def test_regions(self, capsys):
        assert main(["regions", "--scenario", "uk", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "top-2 certain regions" in out
        assert "zip" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "round 1" in out and "certain fix reached in 2 rounds" in out
        assert "phi4" in out  # the 'M.' -> 'Mark' provenance

    def test_generate_and_fix_roundtrip(self, tmp_path, capsys):
        master = tmp_path / "master.csv"
        dirty = tmp_path / "dirty.csv"
        truth = tmp_path / "truth.csv"
        assert main([
            "generate", "--scenario", "uk", "--master-size", "20", "-n", "15",
            "--master-out", str(master), "--out", str(dirty),
            "--truth-out", str(truth),
        ]) == 0
        out_csv = tmp_path / "fixed.csv"
        log = tmp_path / "audit.jsonl"
        assert main([
            "fix", "--scenario", "uk", "--master", str(master),
            "--input", str(dirty), "--truth", str(truth),
            "--out", str(out_csv), "--log", str(log),
        ]) == 0
        out = capsys.readouterr().out
        assert "certain fixes" in out
        assert out_csv.exists() and log.exists()
        # the fixed CSV equals the truth CSV (certain fixes are correct)
        from repro.relational.csvio import read_csv

        fixed = read_csv(out_csv, schema=uk.INPUT_SCHEMA)
        expect = read_csv(truth, schema=uk.INPUT_SCHEMA)
        assert fixed.tuples() == expect.tuples()

    def test_audit_command(self, tmp_path, capsys):

        engine = CerFix(uk.paper_ruleset(), uk.paper_master())
        engine.fix(uk.fig3_tuple(), OracleUser(uk.fig3_truth()), "t1")
        log = tmp_path / "audit.jsonl"
        engine.audit.to_jsonl(log)
        assert main(["audit", "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "data auditing (Fig. 4)" in out and "FN" in out

    def test_audit_tuple_trace(self, tmp_path, capsys):
        engine = CerFix(uk.paper_ruleset(), uk.paper_master())
        engine.fix(uk.fig3_tuple(), OracleUser(uk.fig3_truth()), "t1")
        log = tmp_path / "audit.jsonl"
        engine.audit.to_jsonl(log)
        assert main(["audit", "--log", str(log), "--tuple", "t1"]) == 0
        assert "phi4" in capsys.readouterr().out

    def test_error_exit_code(self, tmp_path, capsys):
        # rules file without master/input CSVs is a usage error
        rules = tmp_path / "rules.txt"
        rules.write_text("p1: (a=a) -> b := master.b\n", encoding="utf-8")
        assert main(["rules", "--rules", str(rules)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_hospital_scenario_rules(self, capsys):
        assert main(["rules", "--scenario", "hospital"]) == 0
        assert "key_hname" in capsys.readouterr().out
