"""Unit tests for regions, tableau condensation and the region finder."""

import pytest

from repro.core.certainty import CertaintyMode, fresh, is_certain_region
from repro.core.pattern import EMPTY_PATTERN, Eq, NotIn, PatternTuple
from repro.core.region import RankedRegion, Region
from repro.core.region_finder import (
    condense_tableau,
    find_certain_regions,
    harvest_safe_combos,
)
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.errors import BudgetExceededError, PatternError
from repro.master.manager import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.scenarios import uk_customers as uk

INPUT = Schema("t", ["k", "a", "b"])
MASTER = Schema("m", ["mk", "ma", "mb"])


@pytest.fixture()
def master():
    return MasterDataManager(Relation(MASTER, [("k1", "A1", "B1"), ("k2", "A2", "B2")]))


@pytest.fixture()
def ruleset():
    return RuleSet(
        [
            EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma")),
            EditingRule("kb", (MatchPair("k", "mk"),), "b", MasterColumn("mb")),
        ],
        INPUT,
        MASTER,
    )


class TestRegion:
    def test_attrs_sorted(self):
        assert Region(("b", "a")).attrs == ("a", "b")

    def test_empty_attrs_rejected(self):
        with pytest.raises(PatternError):
            Region(())

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(PatternError):
            Region(("a", "a"))

    def test_empty_tableau_rejected(self):
        with pytest.raises(PatternError):
            Region(("a",), ())

    def test_default_tableau_unconditional(self):
        r = Region(("a",))
        assert r.is_unconditional
        assert r.matches({"a": "anything"})

    def test_matches_any_pattern(self):
        r = Region(("a",), (PatternTuple({"a": Eq("1")}), PatternTuple({"a": Eq("2")})))
        assert r.matches({"a": "1"}) and r.matches({"a": "2"})
        assert not r.matches({"a": "3"})

    def test_compatible_with_unknown_assumed_ok(self):
        r = Region(("a", "b"), (PatternTuple({"a": Eq("1"), "b": Eq("2")}),))
        assert r.compatible_with({"a": "1"}, known={"a"})
        assert not r.compatible_with({"a": "9"}, known={"a"})

    def test_render(self):
        assert "Z={a}" in Region(("a",)).render()

    def test_ranked_sort_key(self):
        small = RankedRegion(Region(("a",)), CertaintyMode.STRICT, coverage=0.5)
        big = RankedRegion(Region(("a", "b")), CertaintyMode.STRICT, coverage=1.0)
        assert small.sort_key() < big.sort_key()  # size dominates coverage


class TestCondenseTableau:
    def _exact(self, attrs, safe, universe):
        """Condensation must accept exactly the safe combos over the universe."""
        import itertools

        tableau = condense_tableau(attrs, safe, universe)
        safe_keys = {tuple(c[a] for a in attrs) for c in safe}
        for values in itertools.product(*(universe[a] for a in attrs)):
            combo = dict(zip(attrs, values))
            matched = any(p.matches(combo) for p in tableau)
            assert matched == (tuple(values) in safe_keys), (combo, tableau)
        return tableau

    def test_all_safe_becomes_wildcard(self):
        universe = {"a": ["x", "y", fresh("a")]}
        tableau = self._exact(("a",), [{"a": v} for v in universe["a"]], universe)
        assert tableau == (EMPTY_PATTERN,)

    def test_all_but_one_becomes_notin(self):
        universe = {"a": ["x", "y", fresh("a")]}
        tableau = self._exact(("a",), [{"a": "y"}, {"a": fresh("a")}], universe)
        assert tableau == (PatternTuple({"a": NotIn(["x"])}),)

    def test_constants_stay_constants(self):
        universe = {"a": ["x", "y", fresh("a")]}
        tableau = self._exact(("a",), [{"a": "x"}], universe)
        assert tableau == (PatternTuple({"a": Eq("x")}),)

    def test_fresh_only_safe_is_notin_all(self):
        universe = {"a": ["x", "y", fresh("a")]}
        tableau = self._exact(("a",), [{"a": fresh("a")}], universe)
        assert tableau == (PatternTuple({"a": NotIn(["x", "y"])}),)

    def test_two_attr_generalisation(self):
        fa, fb = fresh("a"), fresh("b")
        universe = {"a": ["x", "y", fa], "b": ["1", "2", fb]}
        # every combo with a == 'x' is safe, regardless of b
        safe = [{"a": "x", "b": v} for v in universe["b"]]
        tableau = self._exact(("a", "b"), safe, universe)
        assert tableau == (PatternTuple({"a": Eq("x")}),)

    def test_cross_product_not_overgeneralised(self):
        fa, fb = fresh("a"), fresh("b")
        universe = {"a": ["x", "y", fa], "b": ["1", "2", fb]}
        # diagonal: (x,1), (y,2) — not expressible as one pattern
        self._exact(("a", "b"), [{"a": "x", "b": "1"}, {"a": "y", "b": "2"}], universe)

    def test_empty_safe_empty_tableau(self):
        assert condense_tableau(("a",), [], {"a": ["x"]}) == ()


class TestHarvest:
    def test_counts(self, ruleset, master):
        safe, universe, total = harvest_safe_combos(("k",), ruleset, master)
        # universe is {fresh, k1, k2}; fresh fails coverage
        assert total == 3
        assert {c["k"] for c in safe} == {"k1", "k2"}
        assert fresh("k") in universe["k"]

    def test_anchored_all_safe(self, ruleset, master):
        safe, _, total = harvest_safe_combos(
            ("k",), ruleset, master, mode=CertaintyMode.ANCHORED
        )
        assert len(safe) == total == 2


class TestFindCertainRegions:
    def test_strict_produces_pinned_tableau(self, ruleset, master):
        regions = find_certain_regions(ruleset, master, k=3)
        assert regions, "expected at least one region"
        top = regions[0]
        assert top.region.attrs == ("k",)
        assert 0 < top.coverage < 1  # fresh k is excluded by the tableau
        # and the returned region re-certifies
        report = is_certain_region(
            top.region.attrs, top.region.tableau, ruleset, master
        )
        assert report.certain

    def test_anchored_unconditional(self, ruleset, master):
        regions = find_certain_regions(ruleset, master, k=3, mode=CertaintyMode.ANCHORED)
        top = regions[0]
        assert top.region.attrs == ("k",)
        assert top.region.is_unconditional
        assert top.coverage == 1.0

    def test_superset_of_unconditional_pruned(self, ruleset, master):
        regions = find_certain_regions(ruleset, master, k=10, mode=CertaintyMode.ANCHORED)
        attr_sets = [frozenset(r.region.attrs) for r in regions]
        for s in attr_sets:
            assert not any(t < s for t in attr_sets if t != s)

    def test_generalize_false_keeps_only_unconditional(self, ruleset, master):
        regions = find_certain_regions(ruleset, master, k=5, generalize=False)
        assert all(r.region.is_unconditional for r in regions)

    def test_subset_budget(self, paper_ruleset, paper_manager):
        with pytest.raises(BudgetExceededError):
            find_certain_regions(paper_ruleset, paper_manager, k=50, subset_budget=2,
                                 mode=CertaintyMode.ANCHORED)

    def test_ranking_ascending_by_size(self, paper_ruleset, paper_manager, paper_master):
        regions = find_certain_regions(
            paper_ruleset, paper_manager, k=6,
            mode=CertaintyMode.SCENARIO, scenario=uk.scenario_tuples(paper_master),
        )
        sizes = [r.region.size for r in regions]
        assert sizes == sorted(sizes)

    def test_paper_top_region(self, paper_ruleset, paper_manager, paper_master):
        """The smallest certain region is {AC, item, phn, type, zip} with a
        type=2 tableau — the Fig. 3 interaction in region form."""
        regions = find_certain_regions(
            paper_ruleset, paper_manager, k=5,
            mode=CertaintyMode.SCENARIO, scenario=uk.scenario_tuples(paper_master),
        )
        top = regions[0]
        assert top.region.attrs == ("AC", "item", "phn", "type", "zip")
        assert all(p.condition("type") == Eq("2") for p in top.region.tableau)

    def test_every_region_contains_mandatory(self, paper_ruleset, paper_manager, paper_master):
        from repro.core.inference import mandatory_attributes

        mandatory = mandatory_attributes(paper_ruleset)
        regions = find_certain_regions(
            paper_ruleset, paper_manager, k=6,
            mode=CertaintyMode.SCENARIO, scenario=uk.scenario_tuples(paper_master),
        )
        for r in regions:
            assert mandatory <= frozenset(r.region.attrs)

    def test_returned_regions_recertify(self, paper_ruleset, paper_manager, paper_master):
        scenario = uk.scenario_tuples(paper_master)
        regions = find_certain_regions(
            paper_ruleset, paper_manager, k=3,
            mode=CertaintyMode.SCENARIO, scenario=scenario,
        )
        for ranked in regions:
            report = is_certain_region(
                ranked.region.attrs, ranked.region.tableau,
                paper_ruleset, paper_manager,
                mode=CertaintyMode.SCENARIO, scenario=scenario,
            )
            assert report.certain, ranked.region.render()
