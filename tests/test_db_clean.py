"""DB-native dirty-relation cleaning: pages, archive, dry-run, undo, resume."""

from __future__ import annotations

import sqlite3

import pytest

from repro import CerFix
from repro.dirty import (
    ChangeArchive,
    DirtyTable,
    list_runs,
    resolve_page_rows,
    undo_run,
)
import repro.batch.executor as executor_mod
import repro.batch.pipeline as pipeline_mod
from repro.errors import DirtyDataError
from repro.master.conformance import generate_case
from repro.scenarios import uk_customers as uk


@pytest.fixture(scope="module")
def case():
    # Rule-only repair case with a non-trivial number of certain fixes.
    return generate_case(3, scenario="uk", n=60, rate=0.35, with_truth=False)


@pytest.fixture()
def db(case, tmp_path):
    path = tmp_path / "dirty.db"
    DirtyTable.create(path, case.dirty)
    return path


def _engine(case):
    return CerFix(case.ruleset, case.master)


def _table_rows(path, table="dirty"):
    t = DirtyTable(path, table)
    conn = t.backend.connect(readonly=True)
    try:
        return t.read_relation(conn).raw_tuples()
    finally:
        conn.close()


def _digest(path, table="dirty"):
    t = DirtyTable(path, table)
    conn = t.backend.connect(readonly=True)
    try:
        return t.digest(conn)
    finally:
        conn.close()


# -- the table itself --------------------------------------------------------


def test_create_and_read_roundtrip(case, db):
    assert _table_rows(db) == case.dirty.raw_tuples()


def test_pages_stream_fixed_size_in_key_order(case, db):
    t = DirtyTable(db)
    conn = t.backend.connect(readonly=True)
    try:
        pages = list(t.pages(conn, 16))
        assert [p.index for p in pages] == [0, 1, 2, 3]
        assert [len(p) for p in pages] == [16, 16, 16, 12]
        keys = [k for p in pages for k in p.keys]
        assert keys == sorted(keys)
        rows = [r for p in pages for r in p.relation.raw_tuples()]
        assert rows == case.dirty.raw_tuples()
        # skip_pages seeks straight to the boundary
        tail = list(t.pages(conn, 16, skip_pages=3))
        assert [p.index for p in tail] == [3]
        assert tail[0].relation.raw_tuples() == pages[3].relation.raw_tuples()
    finally:
        conn.close()


def test_digest_tracks_content_and_row_binding(case, db, tmp_path):
    before = _digest(db)
    assert before == _digest(db)  # deterministic
    conn = sqlite3.connect(db)
    conn.execute("UPDATE dirty SET zip = 'XX9 9XX' WHERE rowid = 1")
    conn.commit()
    conn.close()
    assert _digest(db) != before


def test_rejects_lossy_cell_values(tmp_path):
    from repro.relational.relation import Relation
    from repro.relational.schema import Schema

    rel = Relation(Schema("t", ["a"]), [(True,)])
    with pytest.raises(DirtyDataError, match="round-trip"):
        DirtyTable.create(tmp_path / "x.db", rel)


def test_page_rows_resolution(monkeypatch):
    monkeypatch.delenv("CERFIX_PAGE_ROWS", raising=False)
    assert resolve_page_rows(None) == 4096
    assert resolve_page_rows(7) == 7
    monkeypatch.setenv("CERFIX_PAGE_ROWS", "64")
    assert resolve_page_rows(None) == 64
    assert resolve_page_rows(7) == 7  # explicit argument wins
    monkeypatch.setenv("CERFIX_PAGE_ROWS", "zero")
    with pytest.raises(DirtyDataError):
        resolve_page_rows(None)
    with pytest.raises(DirtyDataError):
        resolve_page_rows(0)


# -- paged cleaning ----------------------------------------------------------


def test_paged_clean_bit_identical_to_memory(case, db):
    expected = _engine(case).clean_relation(case.dirty, validated=case.validated)
    result = _engine(case).clean_table(
        db, page_rows=16, validated=case.validated
    )
    assert result.pages == 4
    assert result.changed_cells == expected.report.changed_cells > 0
    assert _table_rows(db) == expected.relation.raw_tuples()


@pytest.mark.parametrize("seed", [1, 5, 11])
def test_conformance_parity_across_page_sizes(seed, tmp_path):
    case = generate_case(seed, scenario="uk", n=40, rate=0.3, with_truth=False)
    expected = _engine(case).clean_relation(case.dirty, validated=case.validated)
    for page_rows in (7, 64):
        path = tmp_path / f"d{page_rows}.db"
        DirtyTable.create(path, case.dirty)
        result = _engine(case).clean_table(
            path, page_rows=page_rows, validated=case.validated, workers=2
        )
        assert _table_rows(path) == expected.relation.raw_tuples()
        assert result.changed_cells == expected.report.changed_cells


def test_larger_than_page_budget_cleans_end_to_end(tmp_path):
    # Many more rows than one page holds: the in-memory budget is the
    # page, and the table streams through it.
    master = uk.generate_master(40, seed=8)
    wl = uk.generate_workload(master, 300, rate=0.3, seed=8)
    path = tmp_path / "big.db"
    DirtyTable.create(path, wl.dirty)
    engine = CerFix(uk.paper_ruleset(), master)
    expected = CerFix(uk.paper_ruleset(), master).clean_relation(
        wl.dirty, validated=("zip",)
    )
    result = engine.clean_table(path, page_rows=32, validated=("zip",))
    assert result.pages == 10
    assert result.rows == 300
    assert _table_rows(path) == expected.relation.raw_tuples()


def test_env_page_size_drives_paging(case, db, monkeypatch):
    monkeypatch.setenv("CERFIX_PAGE_ROWS", "16")
    result = _engine(case).clean_table(db, validated=case.validated)
    assert result.page_rows == 16
    assert result.pages == 4


def test_audit_ids_follow_row_keys(case, db):
    engine = _engine(case)
    engine.clean_table(db, page_rows=16, validated=case.validated)
    tids = {e.tuple_id for e in engine.audit}
    assert tids and all(t.startswith("r") for t in tids)


def test_schema_mismatch_refused(case, tmp_path):
    from repro.relational.relation import Relation
    from repro.relational.schema import Schema

    path = tmp_path / "odd.db"
    DirtyTable.create(path, Relation(Schema("t", ["a", "b"]), [("x", "y")]))
    with pytest.raises(DirtyDataError, match="input schema"):
        _engine(case).clean_table(path)


def test_missing_table_refused(case, tmp_path):
    path = tmp_path / "empty.db"
    sqlite3.connect(path).close()
    with pytest.raises(DirtyDataError, match="no table"):
        _engine(case).clean_table(path)


# -- archive + undo ----------------------------------------------------------


def test_archive_records_reversible_provenance(case, db):
    engine = _engine(case)
    result = engine.clean_table(db, page_rows=16, validated=case.validated)
    t = DirtyTable(db)
    conn = t.backend.connect(readonly=True)
    try:
        changes = ChangeArchive(t).changes(conn, result.run_id)
    finally:
        conn.close()
    assert len(changes) == result.changed_cells
    assert [c.seq for c in changes] == list(range(len(changes)))
    by_key = {(c.row_key, c.column): c for c in changes}
    dirty_rows = {
        key: row
        for key, row in zip(range(1, len(case.dirty) + 1), case.dirty.raw_tuples())
    }
    names = case.dirty.schema.names
    for (row_key, column), c in by_key.items():
        assert c.old == dirty_rows[row_key][names.index(column)]
        assert c.old != c.new
        # The final event per cell is a rule fix or its normalization.
        assert c.source in ("rule", "normalize")
        if c.source == "rule":
            assert c.rule_id


def test_undo_restores_exact_pre_run_table(case, db):
    engine = _engine(case)
    pre_digest = _digest(db)
    result = engine.clean_table(db, page_rows=16, validated=case.validated)
    assert _digest(db) != pre_digest
    record = engine.undo(db, result.run_id)
    assert record.status == "undone"
    assert _digest(db) == pre_digest
    assert _table_rows(db) == case.dirty.raw_tuples()


def test_undo_is_noop_when_reapplied(case, db):
    engine = _engine(case)
    result = engine.clean_table(db, page_rows=16, validated=case.validated)
    engine.undo(db, result.run_id)
    rows = _table_rows(db)
    again = engine.undo(db, result.run_id)
    assert again.status == "undone"
    assert _table_rows(db) == rows


def test_undo_refuses_after_external_mutation(case, db):
    engine = _engine(case)
    result = engine.clean_table(db, page_rows=16, validated=case.validated)
    conn = sqlite3.connect(db)
    conn.execute("UPDATE dirty SET FN = 'Zed' WHERE rowid = 3")
    conn.commit()
    conn.close()
    mutated = _table_rows(db)
    with pytest.raises(DirtyDataError, match="modified after the run"):
        engine.undo(db, result.run_id)
    assert _table_rows(db) == mutated  # refusal left the table alone


def test_undo_unknown_run_refused(case, db):
    engine = _engine(case)
    engine.clean_table(db, page_rows=16, validated=case.validated)
    with pytest.raises(DirtyDataError, match="unknown run"):
        engine.undo(db, "run-nope")


def test_run_records_listable(case, db):
    engine = _engine(case)
    r1 = engine.clean_table(db, page_rows=16, validated=case.validated)
    runs = list_runs(DirtyTable(db))
    assert [r.run_id for r in runs] == [r1.run_id]
    assert runs[0].status == "committed"
    assert runs[0].pages_done == runs[0].pages_total == 4
    assert runs[0].changed_cells == r1.changed_cells


# -- dry run -----------------------------------------------------------------


def test_dry_run_commits_nothing(case, db):
    before = db.read_bytes()
    engine = _engine(case)
    expected = _engine(case).clean_relation(case.dirty, validated=case.validated)
    result = engine.clean_table(
        db, page_rows=16, validated=case.validated, dry_run=True
    )
    assert result.dry_run and result.run_id is None
    assert result.changed_cells == expected.report.changed_cells
    assert len(result.changes) == result.changed_cells
    assert db.read_bytes() == before  # bit-identical file
    assert list_runs(DirtyTable(db)) == []


def test_dry_run_rejects_resume(case, db):
    with pytest.raises(DirtyDataError, match="dry_run with resume"):
        _engine(case).clean_table(db, dry_run=True, resume="run-x")


# -- crash, resume, journals -------------------------------------------------


def _crash_after_pages(monkeypatch, n_pages):
    real = pipeline_mod.BatchCleaner.clean
    calls = {"n": 0}

    def crashing(self, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] > n_pages:
            raise RuntimeError("simulated crash")
        return real(self, *args, **kwargs)

    monkeypatch.setattr(pipeline_mod.BatchCleaner, "clean", crashing)
    return real


def test_interrupted_run_resumes_between_pages(case, db, tmp_path, monkeypatch):
    expected = _engine(case).clean_relation(case.dirty, validated=case.validated)
    real = _crash_after_pages(monkeypatch, 2)
    with pytest.raises(RuntimeError, match="simulated crash"):
        _engine(case).clean_table(db, page_rows=16, validated=case.validated)
    monkeypatch.setattr(pipeline_mod.BatchCleaner, "clean", real)

    (run,) = list_runs(DirtyTable(db))
    assert run.status == "running"
    assert run.pages_done == 2

    result = _engine(case).clean_table(
        db, page_rows=16, validated=case.validated, resume=run.run_id
    )
    assert result.resumed_pages == 2
    assert result.run_id == run.run_id
    assert _table_rows(db) == expected.relation.raw_tuples()
    assert result.changed_cells == expected.report.changed_cells
    (run,) = list_runs(DirtyTable(db))
    assert run.status == "committed"


def test_mid_page_resume_replays_journaled_shards(case, db, monkeypatch):
    """The in-flight page resumes from its shard checkpoint journal."""
    expected = _engine(case).clean_relation(case.dirty, validated=case.validated)

    real = executor_mod._run_shard
    calls = {"n": 0}

    def crashing(shard, ctx, base, cache, *memos):
        if calls["n"] >= 2:
            raise RuntimeError("simulated mid-page crash")
        calls["n"] += 1
        return real(shard, ctx, base, cache, *memos)

    monkeypatch.setattr(executor_mod, "_run_shard", crashing)
    with pytest.raises(RuntimeError, match="simulated mid-page crash"):
        _engine(case).clean_table(
            db, page_rows=30, validated=case.validated, shards=4
        )
    monkeypatch.setattr(executor_mod, "_run_shard", real)

    (run,) = list_runs(DirtyTable(db))
    assert run.status == "running" and run.pages_done == 0
    # The crashed page left its shard journal behind with two entries.
    journal_dir = db.parent / "dirty.db.clean-journal" / run.run_id
    journals = list(journal_dir.glob("page-*.journal"))
    assert len(journals) == 1
    shard_lines = [
        line for line in journals[0].read_text().splitlines() if '"shard"' in line
    ]
    assert len(shard_lines) == 2

    executed = {"shards": 0}

    def counting(shard, ctx, base, cache, *memos):
        executed["shards"] += 1
        return real(shard, ctx, base, cache, *memos)

    monkeypatch.setattr(executor_mod, "_run_shard", counting)
    result = _engine(case).clean_table(
        db, page_rows=30, validated=case.validated, shards=4, resume=run.run_id
    )
    monkeypatch.setattr(executor_mod, "_run_shard", real)
    # Page 0 replays only its 2 unfinished shards; page 1 runs all 4.
    assert executed["shards"] == 6
    assert _table_rows(db) == expected.relation.raw_tuples()
    assert result.changed_cells == expected.report.changed_cells


def test_resume_validates_run_and_configuration(case, db, monkeypatch):
    real = _crash_after_pages(monkeypatch, 1)
    with pytest.raises(RuntimeError):
        _engine(case).clean_table(db, page_rows=16, validated=case.validated)
    monkeypatch.setattr(pipeline_mod.BatchCleaner, "clean", real)
    (run,) = list_runs(DirtyTable(db))

    with pytest.raises(DirtyDataError, match="page_rows"):
        _engine(case).clean_table(
            db, page_rows=8, validated=case.validated, resume=run.run_id
        )
    with pytest.raises(DirtyDataError, match="configuration changed"):
        _engine(case).clean_table(db, page_rows=16, resume=run.run_id)

    result = _engine(case).clean_table(
        db, page_rows=16, validated=case.validated, resume=run.run_id
    )
    assert result.resumed_pages == 1
    with pytest.raises(DirtyDataError, match="not resumable"):
        _engine(case).clean_table(
            db, page_rows=16, validated=case.validated, resume=run.run_id
        )


def test_crashed_run_can_be_undone(case, db, monkeypatch):
    real = _crash_after_pages(monkeypatch, 2)
    with pytest.raises(RuntimeError):
        _engine(case).clean_table(db, page_rows=16, validated=case.validated)
    monkeypatch.setattr(pipeline_mod.BatchCleaner, "clean", real)
    (run,) = list_runs(DirtyTable(db))
    record = undo_run(DirtyTable(db), run.run_id)
    assert record.status == "undone"
    assert _table_rows(db) == case.dirty.raw_tuples()


def test_journals_removed_after_successful_run(case, db):
    result = _engine(case).clean_table(db, page_rows=16, validated=case.validated)
    assert result.run_id
    assert not (db.parent / "dirty.db.clean-journal").exists()


# -- CLI ---------------------------------------------------------------------


def test_cli_clean_db_dry_run_and_undo(case, db, tmp_path, capsys):
    from repro.explorer.cli import main
    from repro.relational.csvio import write_csv

    master_csv = tmp_path / "master.csv"
    write_csv(case.master, master_csv)
    rules = tmp_path / "rules.txt"
    rules.write_text("\n".join(r.render() for r in case.ruleset) + "\n")
    base = [
        "clean",
        "--rules", str(rules),
        "--master", str(master_csv),
        "--input", str(tmp_path / "unused.csv"),
    ]
    # --input and --db are mutually exclusive
    assert main(base + ["--db", str(db)]) == 2
    capsys.readouterr()

    common = [
        "clean",
        "--scenario", "uk",
        "--master", str(master_csv),
        "--mode", "anchored",
        "--db", str(db),
        "--page-rows", "16",
        "--validated", ",".join(case.validated),
    ]
    assert main(common + ["--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "dry run" in out and "nothing was committed" in out
    assert _table_rows(db) == case.dirty.raw_tuples()

    assert main(common) == 0
    out = capsys.readouterr().out
    assert "cells changed" in out and "cerfix undo" in out
    run_id = out.split("cerfix undo --db")[1].split("`")[0].split()[-1]

    assert main(["undo", "--db", str(db), "--list"]) == 0
    assert run_id in capsys.readouterr().out

    assert main(["undo", "--db", str(db), run_id]) == 0
    assert "digest-verified" in capsys.readouterr().out
    assert _table_rows(db) == case.dirty.raw_tuples()


def test_instance_dirty_section_roundtrip(case, tmp_path):
    import json

    from repro.config import InstanceConfig
    from repro.errors import ValidationError

    doc = {
        "name": "x",
        "input_schema": {"name": "t", "attributes": [{"name": "a"}]},
        "master_schema": {"name": "m", "attributes": [{"name": "a"}]},
        "dirty": {"db": "dirty.db", "table": "rows", "page_rows": 64},
    }
    config = InstanceConfig.from_json(doc)
    assert config.dirty == {"db": "dirty.db", "table": "rows", "page_rows": 64}
    assert InstanceConfig.from_json(config.to_json()).dirty == config.dirty

    for bad in (
        {"db": ""},
        {"table": "t"},  # db missing
        {"db": "d", "page_rows": 0},
        {"db": "d", "nope": 1},
    ):
        doc["dirty"] = bad
        with pytest.raises(ValidationError):
            InstanceConfig.from_json(json.loads(json.dumps(doc)))


# -- telemetry ---------------------------------------------------------------


def test_spans_nest_clean_run_page_shard(case, db, tmp_path):
    import json

    from repro.obs import trace as tracing

    span_file = tmp_path / "spans.jsonl"
    tracing.configure(str(span_file), 1.0)
    try:
        _engine(case).clean_table(db, page_rows=16, validated=case.validated)
    finally:
        tracing.disable()
    spans = [json.loads(line) for line in span_file.read_text().splitlines()]
    by_id = {s["span"]: s for s in spans}
    names = {s["name"] for s in spans}
    assert {"clean-run", "page", "shard"} <= names
    roots = [s for s in spans if s["name"] == "clean-run"]
    assert len(roots) == 1
    pages = [s for s in spans if s["name"] == "page"]
    assert len(pages) == 4
    assert all(s["parent"] == roots[0]["span"] for s in pages)
    for s in spans:
        if s["name"] != "shard":
            continue
        parent = by_id[s["parent"]]
        while parent["name"] not in ("page", "clean-run"):
            parent = by_id[parent["parent"]]
        assert parent["name"] == "page"


def test_page_counters_accumulate(case, db):
    from repro.obs.metrics import get_registry

    reg = get_registry()
    before = {
        k: reg.dump()["counters"].get(k, 0)
        for k in ("cerfix.dbclean.runs", "cerfix.dbclean.pages", "cerfix.dbclean.undos")
    }
    engine = _engine(case)
    result = engine.clean_table(db, page_rows=16, validated=case.validated)
    engine.undo(db, result.run_id)
    counters = reg.dump()["counters"]
    assert counters["cerfix.dbclean.runs"] == before["cerfix.dbclean.runs"] + 1
    assert counters["cerfix.dbclean.pages"] == before["cerfix.dbclean.pages"] + 4
    assert counters["cerfix.dbclean.undos"] == before["cerfix.dbclean.undos"] + 1
