"""Service load smoke: ~200 concurrent sessions through the real stack.

The CI ``service-load`` leg runs this file on its own: it boots the
async entry service, drives ~200 sessions concurrently with the load
generator (undersized limits, so the 429 backpressure path fires under
real contention), and asserts the invariants that matter at load —
**zero dropped fixes** (every session completes, bit-identical to the
serial monitor), a **nonzero probe-cache hit rate**, and internally
consistent metrics.
"""

from __future__ import annotations

import pytest

from repro.master.conformance import normalize_audit
from repro import CerFix
from repro.scenarios import uk_customers as uk
from repro.service.loadgen import run_load

SESSIONS = 200
CONCURRENCY = 200  # every session in flight at once


@pytest.fixture(scope="module")
def load_result():
    master = uk.generate_master(40, seed=71)
    wl = uk.generate_workload(master, SESSIONS, rate=0.2, seed=72)

    serial_engine = CerFix(uk.paper_ruleset(), master)
    serial_engine.stream(wl.dirty, wl.clean)

    engine = CerFix(uk.paper_ruleset(), master)
    server = engine.serve_async(
        port=0,
        max_sessions=64,          # < SESSIONS: admission must shed and recover
        max_session_pending=8,
    )
    try:
        rows = [r.to_dict() for r in wl.dirty.rows()]
        truth = [r.to_dict() for r in wl.clean.rows()]
        report = run_load(server.url, rows, truth, concurrency=CONCURRENCY)
        metrics = server.service.metrics_json()
    finally:
        server.close()
    return wl, serial_engine, engine, report, metrics


def test_zero_dropped_fixes(load_result):
    wl, serial_engine, engine, report, _ = load_result
    assert not report.errors
    assert report.sessions == SESSIONS
    assert report.dropped == 0  # every session reached a certain fix

    names = wl.dirty.schema.names
    serial_rows = []
    for i, row in enumerate(wl.dirty.rows()):
        values = row.to_dict()
        for e in serial_engine.audit.by_tuple(f"t{i}"):
            values[e.attr] = e.new
        serial_rows.append(tuple(str(values[n]) for n in names))
    assert report.values_in_order(names) == serial_rows
    assert normalize_audit([e.to_json() for e in engine.audit]) == normalize_audit(
        [e.to_json() for e in serial_engine.audit]
    )


def test_cache_amortisation_under_load(load_result):
    _, _, _, _, metrics = load_result
    cache = metrics["probe_cache"]
    assert cache["hits"] > 0
    assert cache["hit_rate"] > 0.2  # duplicate-heavy entry traffic must hit
    memo = metrics["suggestion_memo"]
    assert memo["hits"] > 0


def test_backpressure_fired_and_recovered(load_result):
    _, _, _, report, metrics = load_result
    # 200 sessions against max_sessions=64 must shed load...
    assert metrics["requests"]["rejected_429"] > 0
    assert metrics["requests"]["rejected_429"] == report.retries_429
    # ...and still complete everything
    assert metrics["sessions"]["opened"] == SESSIONS
    assert metrics["sessions"]["completed"] == SESSIONS
    assert metrics["sessions"]["active"] == 0
    assert metrics["requests"]["in_flight"] == 0


def test_metrics_accounting_is_consistent(load_result):
    _, _, _, report, metrics = load_result
    by_status = metrics["requests"]["by_status"]
    assert sum(by_status.values()) == metrics["requests"]["total"]
    assert by_status.get("201", 0) == SESSIONS
    # the load generator saw every response the server sent
    assert metrics["requests"]["total"] == report.requests
    probes = metrics["probes"]
    # store probes = micro-batched misses + direct (inline-dispatch) misses
    assert probes["batched_misses"] <= probes["store_probes"]
    assert probes["batches"] <= probes["batched_misses"] or probes["batches"] == 0
    assert metrics["dispatch"] in ("executor", "inline")
