"""Unit tests for the master data manager."""

import pytest

from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.errors import MasterDataError
from repro.master.manager import MasterDataManager, MasterMatch
from repro.relational.relation import Relation
from repro.relational.schema import Schema

MASTER = Schema("m", ["key", "value"])


@pytest.fixture()
def manager():
    return MasterDataManager(
        Relation(MASTER, [("k1", "v1"), ("k2", "v2"), ("k3", "v2"), ("k3", "v3")])
    )


def lookup_rule(op="exact"):
    return EditingRule(
        "r", (MatchPair("a", "key", op),), "b", MasterColumn("value")
    )


class TestMasterMatch:
    def test_unique(self):
        m = MasterMatch((0,), ("v1",))
        assert m.is_unique and not m.is_empty
        assert m.value == "v1"

    def test_empty(self):
        assert MasterMatch((), ()).is_empty

    def test_ambiguous_value_raises(self):
        with pytest.raises(MasterDataError):
            MasterMatch((2, 3), ("v2", "v3")).value


class TestMatch:
    def test_unique_match(self, manager):
        m = manager.match(lookup_rule(), {"a": "k1"})
        assert m.positions == (0,)
        assert m.value == "v1"

    def test_no_match(self, manager):
        assert manager.match(lookup_rule(), {"a": "zz"}).is_empty

    def test_ambiguous_match(self, manager):
        m = manager.match(lookup_rule(), {"a": "k3"})
        assert m.positions == (2, 3)
        assert not m.is_unique
        assert set(m.values) == {"v2", "v3"}

    def test_duplicate_rows_same_value_is_unique(self):
        mgr = MasterDataManager(Relation(MASTER, [("k", "v"), ("k", "v")]))
        m = mgr.match(lookup_rule(), {"a": "k"})
        assert m.is_unique and len(m.positions) == 2

    def test_constant_rule(self, manager):
        rule = EditingRule("c", (), "b", Constant("fixed"))
        m = manager.match(rule, {})
        assert m.values == ("fixed",)

    def test_scan_equals_index(self, manager):
        rule = lookup_rule()
        for key in ("k1", "k3", "zz"):
            indexed = manager.match(rule, {"a": key}, use_index=True)
            scanned = manager.match(rule, {"a": key}, use_index=False)
            assert indexed.positions == scanned.positions
            assert indexed.values == scanned.values

    def test_normalised_match(self):
        mgr = MasterDataManager(Relation(MASTER, [("EH8 4AH", "v")]))
        m = mgr.match(lookup_rule(op="alnum"), {"a": "eh84ah"})
        assert m.value == "v"


class TestDiagnostics:
    def test_ambiguous_keys(self, manager):
        amb = manager.ambiguous_keys(lookup_rule())
        assert list(amb) == [("k3",)]
        assert amb[("k3",)] == ("v2", "v3")

    def test_ambiguous_keys_consistent_duplicates_ok(self):
        mgr = MasterDataManager(Relation(MASTER, [("k", "v"), ("k", "v")]))
        assert mgr.ambiguous_keys(lookup_rule()) == {}

    def test_ambiguous_keys_constant_rule(self, manager):
        rule = EditingRule("c", (), "b", Constant("x"))
        assert manager.ambiguous_keys(rule) == {}

    def test_row_access(self, manager):
        assert manager.row(0)["value"] == "v1"

    def test_len(self, manager):
        assert len(manager) == 4

    def test_prebuild_builds_rule_indexes(self, paper_ruleset, paper_master):
        mgr = MasterDataManager(paper_master)
        mgr.prebuild(paper_ruleset)
        # every rule's index spec is now cached on the relation
        for attrs, ops in paper_ruleset.index_specs():
            assert mgr.relation.index_on(attrs, ops) is mgr.relation.index_on(attrs, ops)
