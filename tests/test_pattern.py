"""Unit tests for the pattern condition language."""

import pytest

from repro.core.certainty import fresh
from repro.core.pattern import (
    EMPTY_PATTERN,
    WILDCARD,
    Eq,
    Neq,
    NotIn,
    PatternTuple,
    Wildcard,
)
from repro.errors import PatternError


class TestConditions:
    def test_wildcard_matches_everything(self):
        assert WILDCARD.matches("x")
        assert WILDCARD.matches(None)
        assert WILDCARD.matches(fresh("a"))

    def test_eq(self):
        assert Eq("2").matches("2")
        assert not Eq("2").matches("1")

    def test_eq_rejects_fresh(self):
        assert not Eq("2").matches(fresh("type"))

    def test_notin(self):
        c = NotIn(["0800", "0845"])
        assert c.matches("020")
        assert not c.matches("0800")

    def test_notin_accepts_fresh(self):
        assert NotIn(["0800"]).matches(fresh("AC"))

    def test_neq_is_singleton_notin(self):
        assert Neq("0800") == NotIn(["0800"])

    def test_notin_requires_values(self):
        with pytest.raises(PatternError):
            NotIn([])

    def test_allowed_filters(self):
        assert Eq("a").allowed(["a", "b"]) == ["a"]
        assert NotIn(["a"]).allowed(["a", "b", "c"]) == ["b", "c"]

    def test_constants(self):
        assert Eq("a").constants() == frozenset(["a"])
        assert NotIn(["a", "b"]).constants() == frozenset(["a", "b"])
        assert WILDCARD.constants() == frozenset()

    def test_render(self):
        assert WILDCARD.render() == "_"
        assert Eq("2").render() == "=2"
        assert Neq("0800").render() == "!=0800"
        assert NotIn(["a", "b"]).render() == "!=a|b"

    def test_equality_and_hash(self):
        assert Eq("x") == Eq("x")
        assert Eq("x") != Eq("y")
        assert hash(NotIn(["a", "b"])) == hash(NotIn(["b", "a"]))
        assert Wildcard() == WILDCARD


class TestConditionMerge:
    def test_wildcard_identity(self):
        assert WILDCARD.merge(Eq("x")) == Eq("x")
        assert Eq("x").merge(WILDCARD) == Eq("x")

    def test_eq_eq_same(self):
        assert Eq("x").merge(Eq("x")) == Eq("x")

    def test_eq_eq_different_is_unsat(self):
        assert Eq("x").merge(Eq("y")) is None

    def test_eq_notin_compatible(self):
        assert Eq("x").merge(NotIn(["y"])) == Eq("x")

    def test_eq_notin_contradiction(self):
        assert Eq("x").merge(NotIn(["x"])) is None

    def test_notin_notin_unions(self):
        assert NotIn(["a"]).merge(NotIn(["b"])) == NotIn(["a", "b"])

    def test_notin_eq_commutes(self):
        assert NotIn(["y"]).merge(Eq("x")) == Eq("x")


class TestPatternTuple:
    def test_empty_matches_everything(self):
        assert EMPTY_PATTERN.matches({"a": 1})
        assert len(EMPTY_PATTERN) == 0

    def test_wildcards_not_stored(self):
        p = PatternTuple({"a": WILDCARD, "b": Eq("1")})
        assert p.attrs == ("b",)

    def test_matches(self):
        p = PatternTuple({"type": Eq("2"), "AC": Neq("0800")})
        assert p.matches({"type": "2", "AC": "020"})
        assert not p.matches({"type": "1", "AC": "020"})
        assert not p.matches({"type": "2", "AC": "0800"})

    def test_missing_attr_fails_match(self):
        p = PatternTuple({"type": Eq("2")})
        assert not p.matches({"AC": "020"})

    def test_condition_lookup(self):
        p = PatternTuple({"a": Eq("1")})
        assert p.condition("a") == Eq("1")
        assert p.condition("b") == WILDCARD

    def test_rejects_non_condition(self):
        with pytest.raises(PatternError):
            PatternTuple({"a": "not-a-condition"})  # type: ignore[dict-item]

    def test_merge(self):
        p1 = PatternTuple({"a": Eq("1")})
        p2 = PatternTuple({"b": Neq("x")})
        merged = p1.merge(p2)
        assert merged is not None
        assert merged.attrs == ("a", "b")

    def test_merge_unsat(self):
        p1 = PatternTuple({"a": Eq("1")})
        p2 = PatternTuple({"a": Eq("2")})
        assert p1.merge(p2) is None

    def test_merge_notin_union(self):
        p1 = PatternTuple({"a": Neq("x")})
        p2 = PatternTuple({"a": Neq("y")})
        assert p1.merge(p2).condition("a") == NotIn(["x", "y"])

    def test_restrict(self):
        p = PatternTuple({"a": Eq("1"), "b": Eq("2")})
        assert p.restrict(["a"]).attrs == ("a",)

    def test_constants_on(self):
        p = PatternTuple({"a": NotIn(["x", "y"])})
        assert p.constants_on("a") == frozenset(["x", "y"])
        assert p.constants_on("b") == frozenset()

    def test_render(self):
        p = PatternTuple({"type": Eq("2")})
        assert p.render() == "(type=2)"
        assert EMPTY_PATTERN.render() == "()"

    def test_render_with_explicit_attrs(self):
        p = PatternTuple({"b": Eq("2")})
        assert p.render(["a", "b"]) == "(a_, b=2)"

    def test_equality_and_hash(self):
        assert PatternTuple({"a": Eq("1")}) == PatternTuple({"a": Eq("1")})
        assert hash(PatternTuple({"a": Eq("1")})) == hash(PatternTuple({"a": Eq("1")}))
        assert PatternTuple({"a": Eq("1")}) != PatternTuple({"a": Eq("2")})

    def test_attrs_sorted_deterministically(self):
        p = PatternTuple({"z": Eq("1"), "a": Eq("2")})
        assert p.attrs == ("a", "z")
