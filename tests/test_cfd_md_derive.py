"""Unit tests for CFDs, MDs and rule derivation."""

import pytest

from repro.core.chase import chase
from repro.core.pattern import Eq, PatternTuple, WILDCARD
from repro.core.rule import Constant, MasterColumn
from repro.core.ruleset import RuleSet
from repro.errors import RuleError
from repro.master.manager import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.rules.cfd import CFD, CFDRow, find_violations, satisfies
from repro.rules.derive import (
    editing_rules_from_cfd,
    editing_rules_from_cfds,
    editing_rules_from_md,
)
from repro.rules.md import MatchingDependency, MDMatch

SCHEMA = Schema("r", ["AC", "city", "zip"])


def constant_cfd():
    return CFD(
        "psi1",
        ("AC",),
        "city",
        (
            CFDRow(PatternTuple({"AC": Eq("020")}), Eq("Ldn")),
            CFDRow(PatternTuple({"AC": Eq("131")}), Eq("Edi")),
        ),
    )


def variable_cfd():
    return CFD("fd", ("zip",), "city", (CFDRow(PatternTuple(), WILDCARD),))


class TestCFDConstruction:
    def test_rhs_in_lhs_rejected(self):
        with pytest.raises(RuleError):
            CFD("x", ("city",), "city", (CFDRow(PatternTuple(), Eq("a")),))

    def test_empty_tableau_rejected(self):
        with pytest.raises(RuleError):
            CFD("x", ("AC",), "city", ())

    def test_tableau_must_constrain_lhs_only(self):
        with pytest.raises(RuleError):
            CFD("x", ("AC",), "city",
                (CFDRow(PatternTuple({"zip": Eq("z")}), Eq("a")),))

    def test_variable_row_needs_lhs(self):
        with pytest.raises(RuleError):
            CFD("x", (), "city", (CFDRow(PatternTuple(), WILDCARD),))

    def test_render(self):
        assert "psi1" in constant_cfd().render()


class TestViolations:
    def test_constant_violation(self):
        rel = Relation(SCHEMA, [("020", "Edi", "z1")])
        v = find_violations(constant_cfd(), rel)
        assert len(v) == 1
        assert v[0].positions == (0,)
        assert v[0].observed == ("Edi",)

    def test_constant_satisfied(self):
        rel = Relation(SCHEMA, [("020", "Ldn", "z1"), ("131", "Edi", "z2")])
        assert find_violations(constant_cfd(), rel) == []

    def test_non_matching_lhs_ignored(self):
        rel = Relation(SCHEMA, [("999", "Anywhere", "z1")])
        assert find_violations(constant_cfd(), rel) == []

    def test_variable_violation_pairs(self):
        rel = Relation(SCHEMA, [("020", "Ldn", "z1"), ("020", "Edi", "z1")])
        v = find_violations(variable_cfd(), rel)
        assert len(v) == 1
        assert v[0].positions == (0, 1)
        assert set(v[0].observed) == {"Ldn", "Edi"}

    def test_variable_satisfied(self):
        rel = Relation(SCHEMA, [("020", "Ldn", "z1"), ("020", "Ldn", "z1")])
        assert find_violations(variable_cfd(), rel) == []

    def test_satisfies_helper(self):
        good = Relation(SCHEMA, [("020", "Ldn", "z1")])
        bad = Relation(SCHEMA, [("020", "Edi", "z1")])
        assert satisfies([constant_cfd()], good)
        assert not satisfies([constant_cfd()], bad)

    def test_violation_describe(self):
        rel = Relation(SCHEMA, [("020", "Edi", "z1")])
        assert "constant" in find_violations(constant_cfd(), rel)[0].describe()


class TestMD:
    def test_construction_and_render(self):
        md = MatchingDependency(
            "md1",
            (MDMatch("phn", "Mphn", "digits"),),
            (("FN", "FN"), ("LN", "LN")),
        )
        assert "≈digits" in md.render()

    def test_needs_clauses(self):
        with pytest.raises(RuleError):
            MatchingDependency("md", (), (("a", "b"),))

    def test_needs_identify(self):
        with pytest.raises(RuleError):
            MatchingDependency("md", (MDMatch("a", "b"),), ())

    def test_unknown_op_rejected(self):
        with pytest.raises(RuleError):
            MDMatch("a", "b", "soundex")


class TestDerivation:
    def test_constant_cfd_rows_become_constant_rules(self):
        rules = editing_rules_from_cfd(constant_cfd())
        assert len(rules) == 2
        assert all(r.is_constant for r in rules)
        assert rules[0].rule_id == "psi1.0"
        assert rules[0].source == Constant("Ldn")
        assert rules[0].pattern.condition("AC") == Eq("020")

    def test_variable_cfd_row_becomes_master_rule(self):
        rules = editing_rules_from_cfd(variable_cfd())
        assert len(rules) == 1
        r = rules[0]
        assert r.source == MasterColumn("city")
        assert r.lhs_attrs == ("zip",)
        assert r.m_attrs == ("zip",)

    def test_md_derivation(self):
        md = MatchingDependency(
            "md1",
            (MDMatch("phn", "Mphn", "digits"),),
            (("FN", "FN"), ("LN", "LN")),
        )
        rules = editing_rules_from_md(md)
        assert [r.rule_id for r in rules] == ["md1.FN", "md1.LN"]
        assert rules[0].match[0].op == "digits"

    def test_derived_constant_rules_chase_like_the_cfd(self):
        """A tuple violating psi1 is repaired to the constant by the
        derived rule (given the pattern attribute is validated)."""
        rules = editing_rules_from_cfds([constant_cfd()])
        master = MasterDataManager(Relation(Schema("m", ["unused"]), [("x",)]))
        ruleset = RuleSet(rules, SCHEMA, master.schema)
        result = chase({"AC": "020", "city": "WRONG", "zip": "z"}, ["AC"], ruleset, master)
        assert result.values["city"] == "Ldn"

    def test_derived_md_rules_fix_from_master(self, paper_master):
        md = MatchingDependency(
            "md1",
            (MDMatch("phn", "Mphn", "digits"),),
            (("FN", "FN"),),
        )
        from repro.scenarios import uk_customers as uk

        rules = editing_rules_from_md(md)
        ruleset = RuleSet(rules, uk.INPUT_SCHEMA, uk.MASTER_SCHEMA)
        master = MasterDataManager(paper_master)
        t = dict(uk.fig3_tuple())
        result = chase(t, ["phn"], ruleset, master)
        assert result.values["FN"] == "Mark"

    def test_hospital_vocabulary_derivation_scale(self):
        from repro.scenarios import hospital

        rules = editing_rules_from_cfds(hospital.vocabulary_cfds())
        # 12 measures x 3 + 8 states + distinct counties + 8*12 stateavg
        assert len(rules) > 130
        assert all(r.is_constant for r in rules)
