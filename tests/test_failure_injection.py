"""Failure injection: what happens when the certain-fix contract is broken.

The guarantees hold under the model's assumptions (correct master data,
correct user validations, consistent rules). These tests break each
assumption on purpose and check the system *detects and reports* rather
than silently propagating — the difference between a wrong answer and a
diagnosed one.
"""

import random

import pytest

from repro import CerFix
from repro.core.chase import chase
from repro.core.rule import EditingRule
from repro.errors import ConflictError
from repro.master.manager import MasterDataManager
from repro.monitor.user import NoisyOracleUser, OracleUser
from repro.relational.relation import Relation
from repro.scenarios import uk_customers as uk


class TestWrongUserValidations:
    def test_noisy_user_never_causes_wrong_fixes(self, paper_ruleset, paper_manager):
        """Garbage validations do not produce garbage fixes: a wrong key
        simply matches nothing (coverage loss), so machine-written cells
        remain master-sourced. Sessions stall instead of lying."""
        truth = uk.fig3_truth()
        engine = CerFix(paper_ruleset, paper_manager.relation)
        any_incomplete = False
        for seed in range(8):
            session = engine.session(uk.fig3_tuple(), f"n{seed}")
            user = NoisyOracleUser(truth, error_rate=0.7, rng=random.Random(seed))
            session.run(user, max_rounds=6)
            if not session.is_complete:
                any_incomplete = True
            for event in engine.audit.by_tuple(f"n{seed}"):
                if event.source == "rule":
                    # every machine fix still comes from a real master cell
                    assert event.master_positions
                    master_row = paper_manager.row(event.master_positions[0])
                    assert event.new in master_row.values
        assert any_incomplete

    def test_wrong_validation_never_overwritten_silently(self, paper_ruleset, paper_manager):
        """Even when wrong, a user validation is never silently replaced;
        the disagreement is a recorded conflict."""
        session = CerFix(paper_ruleset, paper_manager.relation).session(
            uk.fig3_tuple(), "w"
        )
        session.validate({"city": "WRONGCITY"})
        session.validate({"AC": "201"})  # phi9 now prescribes 'Dur'
        assert session.current_values()["city"] == "WRONGCITY"
        assert any(c.attr == "city" for c in session.conflicts)

    def test_strict_session_raises(self, paper_ruleset, paper_manager):
        session = CerFix(paper_ruleset, paper_manager.relation).session(
            uk.fig3_tuple(), "s", strict=True
        )
        session.validate({"city": "WRONGCITY"})
        with pytest.raises(ConflictError):
            session.validate({"AC": "201"})


class TestDirtyMasterData:
    def test_ambiguous_master_blocks_fixes(self, paper_ruleset):
        """Master duplicates disagreeing on a correction make the rule
        inapplicable (uniqueness gate) — reported as ambiguities, and the
        attribute simply stays unvalidated."""
        master = uk.paper_master()
        # a second person with the same mobile number but another name
        clone = list(master.tuples()[1])
        clone[0] = "Impostor"
        master.append(tuple(clone))
        manager = MasterDataManager(master)
        result = chase(
            uk.fig3_tuple(), ["AC", "phn", "type", "item"], paper_ruleset, manager
        )
        assert "FN" not in result.validated
        assert any(a.rule_id == "phi4" for a in result.ambiguities)
        # and the static analysis sees it without any input tuple at all
        from repro.core.consistency import find_ambiguities

        assert any(w.rule_id == "phi4" for w in find_ambiguities(paper_ruleset, manager))

    def test_inconsistent_master_detected_statically(self):
        """Two master tuples sharing a zip but disagreeing on the street
        are visible to find_ambiguities (zip rules can never fire there)."""
        master = uk.paper_master()
        clone = list(master.tuples()[0])
        clone[5] = "999 Other Rd"  # same zip, different street
        master.append(tuple(clone))
        from repro.core.consistency import find_ambiguities

        witnesses = find_ambiguities(uk.paper_ruleset(), MasterDataManager(master))
        assert any(w.rule_id == "phi2" for w in witnesses)


class TestNoMasterCoverage:
    def test_unmatched_entity_stays_incomplete(self, paper_ruleset, paper_manager):
        """A customer not in the master data cannot get a certain fix for
        master-sourced attributes — the session reports incompleteness
        instead of guessing."""
        engine = CerFix(paper_ruleset, paper_manager.relation)
        t = {
            "FN": "Nobody", "LN": "Unknown", "AC": "999", "phn": "000",
            "type": "2", "str": "?", "city": "?", "zip": "ZZ9 9ZZ", "item": "CD",
        }
        session = engine.session(t, "u")
        user = OracleUser(t)  # the values are "correct"; master just lacks them
        session.run(user, max_rounds=6)
        assert not session.is_complete
        from repro.errors import MonitorError

        with pytest.raises(MonitorError):
            session.fixed_values()

    def test_stream_counts_incomplete_tuples(self, paper_ruleset, paper_manager):
        t = {
            "FN": "Nobody", "LN": "Unknown", "AC": "999", "phn": "000",
            "type": "2", "str": "?", "city": "?", "zip": "ZZ9 9ZZ", "item": "CD",
        }
        dirty = Relation(uk.INPUT_SCHEMA, [t, uk.fig3_tuple()])
        truth = Relation(uk.INPUT_SCHEMA, [t, uk.fig3_truth()])
        engine = CerFix(paper_ruleset, paper_manager.relation)
        report = engine.stream(dirty, truth, max_rounds=6)
        assert report.tuples == 2
        assert report.completed == 1
        assert not report.outcomes[0].complete
        assert report.outcomes[1].complete


class TestInconsistentRules:
    def test_contradicting_rule_yields_order_dependent_warning(self, paper_master):
        """A rule set the static analysis rejects also shows its symptom
        dynamically: the chase reports a conflict on affected tuples."""
        from repro.core.pattern import Eq, PatternTuple
        from repro.core.rule import Constant

        bad = EditingRule("bad", (), "city", Constant("Atlantis"),
                          PatternTuple({"AC": Eq("131")}))
        ruleset = uk.paper_ruleset().add(bad)
        manager = MasterDataManager(paper_master)
        report = CerFix(ruleset, paper_master).check_consistency(samples=10)
        assert not report.is_consistent

        t = dict(uk.example1_truth())
        result = chase(t, ["AC", "phn", "type", "item"], ruleset, manager)
        assert result.conflicts
        attrs = {c.attr for c in result.conflicts}
        assert "city" in attrs
