"""Unit tests for the heuristic-repair baseline and quality metrics."""

import pytest

from repro.baselines.cfd_repair import (
    GreedyCFDRepair,
    RepairStrategy,
    _edit_distance,
)
from repro.baselines.quality import evaluate_repair
from repro.core.pattern import Eq, PatternTuple, WILDCARD
from repro.errors import ValidationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.rules.cfd import CFD, CFDRow, satisfies
from repro.scenarios import uk_customers as uk

SCHEMA = Schema("r", ["AC", "city", "zip"])


def psi():
    return CFD(
        "psi",
        ("AC",),
        "city",
        (
            CFDRow(PatternTuple({"AC": Eq("020")}), Eq("Ldn")),
            CFDRow(PatternTuple({"AC": Eq("131")}), Eq("Edi")),
        ),
    )


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,d",
        [("", "", 0), ("a", "", 1), ("", "abc", 3), ("abc", "abc", 0),
         ("abc", "abd", 1), ("abc", "acb", 2), ("kitten", "sitting", 3)],
    )
    def test_known_distances(self, a, b, d):
        assert _edit_distance(a, b) == d

    def test_symmetry(self):
        assert _edit_distance("abcd", "ab") == _edit_distance("ab", "abcd")


class TestGreedyRepair:
    def test_rhs_strategy_changes_city(self):
        rel = Relation(SCHEMA, [("020", "Edi", "z")])
        repaired, changes = GreedyCFDRepair([psi()]).repair(rel)
        assert repaired.row(0)["city"] == "Ldn"
        assert [c.attr for c in changes] == ["city"]

    def test_input_not_mutated(self):
        rel = Relation(SCHEMA, [("020", "Edi", "z")])
        GreedyCFDRepair([psi()]).repair(rel)
        assert rel.row(0)["city"] == "Edi"

    def test_result_satisfies_cfds(self):
        rel = Relation(SCHEMA, [("020", "Edi", "z"), ("131", "Ldn", "z2")])
        repaired, _ = GreedyCFDRepair([psi()]).repair(rel)
        assert satisfies([psi()], repaired)

    def test_clean_data_untouched(self):
        rel = Relation(SCHEMA, [("020", "Ldn", "z")])
        repaired, changes = GreedyCFDRepair([psi()]).repair(rel)
        assert changes == []

    def test_min_cost_prefers_cheap_change(self):
        # city 'Lds' is 1 edit from the required 'Ldn'; blanking AC costs 4
        rel = Relation(SCHEMA, [("020", "Lds", "z")])
        repaired, changes = GreedyCFDRepair(
            [psi()], strategy=RepairStrategy.MIN_COST
        ).repair(rel)
        assert repaired.row(0)["city"] == "Ldn"

    def test_min_cost_can_blank_lhs(self):
        # the RHS fix would cost many edits; blanking the short AC is cheaper
        rel = Relation(SCHEMA, [("020", "Completely Different City Name", "z")])
        repaired, changes = GreedyCFDRepair(
            [psi()], strategy=RepairStrategy.MIN_COST
        ).repair(rel)
        assert repaired.row(0)["AC"] == ""
        assert satisfies([psi()], repaired)

    def test_variable_cfd_majority_vote(self):
        fd = CFD("fd", ("zip",), "city", (CFDRow(PatternTuple(), WILDCARD),))
        rel = Relation(SCHEMA, [("1", "Ldn", "z"), ("2", "Ldn", "z"), ("3", "Edi", "z")])
        repaired, changes = GreedyCFDRepair([fd]).repair(rel)
        assert repaired.column("city") == ["Ldn", "Ldn", "Ldn"]
        assert len(changes) == 1

    def test_example1_reproduction(self):
        """The paper's Example 1: the heuristic 'fixes' the correct city
        instead of the wrong AC — a new error."""
        dirty = Relation(uk.INPUT_SCHEMA, [uk.example1_tuple()])
        truth = Relation(uk.INPUT_SCHEMA, [uk.example1_truth()])
        repaired, changes = GreedyCFDRepair(uk.paper_cfds()).repair(dirty)
        assert [(c.attr, c.new) for c in changes] == [("city", "Ldn")]
        quality = evaluate_repair(dirty, repaired, truth)
        assert quality.new_errors == 1
        assert quality.errors_fixed == 0
        assert quality.precision == 0.0


class TestQualityMetrics:
    def _relations(self, dirty_rows, repaired_rows, truth_rows):
        s = Schema("q", ["a", "b"])
        return (
            Relation(s, dirty_rows),
            Relation(s, repaired_rows),
            Relation(s, truth_rows),
        )

    def test_perfect_repair(self):
        d, r, t = self._relations([("x", "bad")], [("x", "good")], [("x", "good")])
        q = evaluate_repair(d, r, t)
        assert q.precision == 1.0 and q.recall == 1.0 and q.f1 == 1.0
        assert q.new_errors == 0

    def test_no_repair_recall_zero(self):
        d, r, t = self._relations([("x", "bad")], [("x", "bad")], [("x", "good")])
        q = evaluate_repair(d, r, t)
        assert q.recall == 0.0
        assert q.errors_missed == 1
        assert q.precision == 1.0  # no changes -> vacuous precision

    def test_new_error_counted(self):
        d, r, t = self._relations([("x", "good")], [("x", "oops")], [("x", "good")])
        q = evaluate_repair(d, r, t)
        assert q.new_errors == 1
        assert q.wrong_changes == 1

    def test_wrong_change_on_error_cell(self):
        d, r, t = self._relations([("x", "bad")], [("x", "worse")], [("x", "good")])
        q = evaluate_repair(d, r, t)
        assert q.new_errors == 0  # the cell was already wrong
        assert q.errors_missed == 1 and q.wrong_changes == 1

    def test_clean_data_perfect_scores(self):
        d, r, t = self._relations([("x", "y")], [("x", "y")], [("x", "y")])
        q = evaluate_repair(d, r, t)
        assert q.precision == 1.0 and q.recall == 1.0

    def test_size_mismatch_rejected(self):
        d, r, t = self._relations([("x", "y")], [("x", "y")], [("x", "y")])
        t.append(("q", "w"))
        with pytest.raises(ValidationError):
            evaluate_repair(d, r, t)

    def test_describe(self):
        d, r, t = self._relations([("x", "bad")], [("x", "good")], [("x", "good")])
        assert "precision=1.000" in evaluate_repair(d, r, t).describe()
