"""Unit tests for the data auditing module."""

import pytest

from repro.audit.events import ChangeEvent
from repro.audit.log import AuditLog
from repro.audit.stats import (
    attribute_stats,
    cell_provenance,
    overall_stats,
    tuple_trace,
)
from repro.errors import ValidationError


@pytest.fixture()
def log():
    """Two tuples: t0 has FN user-validated and city rule-fixed (changed);
    t1 has FN rule-fixed ('M.' -> 'Mark') and a zip normalisation."""
    log = AuditLog()
    log.record("t0", "FN", "Bob", "Robert", "user", round_no=1)
    log.record("t0", "city", "Ldn", "Edi", "rule", rule_id="phi9",
               master_positions=(0,), round_no=1)
    log.record("t1", "FN", "M.", "Mark", "rule", rule_id="phi4",
               master_positions=(1,), round_no=1)
    log.record("t1", "zip", "dh1 3le", "DH1 3LE", "normalize", rule_id="phi1",
               master_positions=(1,), round_no=2)
    log.record("t1", "item", "DVD", "DVD", "user", round_no=1)
    return log


class TestChangeEvent:
    def test_unknown_source_rejected(self):
        with pytest.raises(ValidationError):
            ChangeEvent(0, "t", "a", "x", "y", "robot")

    def test_changed_flag(self):
        assert ChangeEvent(0, "t", "a", "x", "y", "user").changed
        assert not ChangeEvent(0, "t", "a", "x", "x", "user").changed

    def test_describe_confirmation(self):
        e = ChangeEvent(0, "t", "a", "x", "x", "user")
        assert "confirmed" in e.describe()

    def test_describe_rule_fix(self):
        e = ChangeEvent(0, "t", "a", "x", "y", "rule", rule_id="phi4", master_positions=(1,))
        text = e.describe()
        assert "phi4" in text and "master tuple(s) [1]" in text

    def test_json_roundtrip(self):
        e = ChangeEvent(3, "t", "a", "x", "y", "normalize", rule_id="r",
                        master_positions=(1, 2), round_no=4)
        assert ChangeEvent.from_json(e.to_json()) == e


class TestAuditLog:
    def test_sequence_numbers(self, log):
        assert [e.seq for e in log] == [0, 1, 2, 3, 4]

    def test_by_tuple(self, log):
        assert len(log.by_tuple("t0")) == 2
        assert log.by_tuple("nope") == []

    def test_by_attr(self, log):
        assert len(log.by_attr("FN")) == 2

    def test_tuple_ids_first_seen_order(self, log):
        assert log.tuple_ids() == ["t0", "t1"]

    def test_len(self, log):
        assert len(log) == 5

    def test_jsonl_roundtrip(self, log, tmp_path):
        path = tmp_path / "audit.jsonl"
        log.to_jsonl(path)
        back = AuditLog.from_jsonl(path)
        assert back.events == log.events


class TestStats:
    def test_attribute_stats(self, log):
        stats = {s.attr: s for s in attribute_stats(log)}
        fn = stats["FN"]
        assert fn.user_validations == 1
        assert fn.rule_fixes == 1
        assert fn.pct_user == 50.0 and fn.pct_auto == 50.0

    def test_normalizations_tracked_separately(self, log):
        stats = {s.attr: s for s in attribute_stats(log)}
        z = stats["zip"]
        assert z.normalizations == 1
        assert z.validated_cells == 0  # normalisation is not a validation

    def test_confirmations(self, log):
        stats = {s.attr: s for s in attribute_stats(log)}
        assert stats["item"].confirmations == 1

    def test_explicit_attr_order(self, log):
        stats = attribute_stats(log, attrs=["zip", "FN"])
        assert [s.attr for s in stats] == ["zip", "FN"]

    def test_overall(self, log):
        o = overall_stats(log)
        assert o.tuples == 2
        assert o.user_cells == 2
        assert o.auto_cells == 2
        assert o.user_share == 0.5
        assert o.normalizations == 1
        assert o.value_changes == 4

    def test_empty_log(self):
        o = overall_stats(AuditLog())
        assert o.user_share == 0.0 and o.auto_share == 0.0

    def test_tuple_trace(self, log):
        trace = tuple_trace(log, "t1")
        assert len(trace) == 3
        assert any("phi4" in line for line in trace)

    def test_cell_provenance(self, log):
        events = cell_provenance(log, "t1", "zip")
        assert len(events) == 1
        assert events[0].source == "normalize"

    def test_first_validation_wins(self):
        # a later user event on an already rule-fixed cell is not recounted
        log = AuditLog()
        log.record("t", "a", "x", "y", "rule", rule_id="r")
        log.record("t", "a", "y", "y", "user")
        stats = {s.attr: s for s in attribute_stats(log)}
        assert stats["a"].rule_fixes == 1
        assert stats["a"].user_validations == 0
