"""Tests for instance configuration and the web explorer."""

import json
import urllib.request

import pytest

from repro import CertaintyMode
from repro.config import InstanceConfig, load_instance, save_instance
from repro.errors import ValidationError
from repro.explorer.web import serve
from repro.monitor.suggest import SuggestionStrategy
from repro.scenarios import uk_customers as uk


@pytest.fixture()
def instance_dir(tmp_path, paper_master, paper_ruleset):
    config = InstanceConfig(
        name="uk-customers",
        input_schema=uk.INPUT_SCHEMA,
        master_schema=uk.MASTER_SCHEMA,
        mode=CertaintyMode.ANCHORED,
        strategy=SuggestionStrategy.CORE_FIRST,
        precompute_regions=0,
    )
    save_instance(tmp_path, config, paper_master, paper_ruleset)
    return tmp_path


class TestInstanceConfig:
    def test_save_writes_artifacts(self, instance_dir):
        assert (instance_dir / "instance.json").exists()
        assert (instance_dir / "master.csv").exists()
        assert (instance_dir / "rules.txt").exists()
        text = (instance_dir / "rules.txt").read_text(encoding="utf-8")
        assert "phi9" in text

    def test_load_roundtrip(self, instance_dir):
        engine, config = load_instance(instance_dir)
        assert config.name == "uk-customers"
        assert len(engine.ruleset) == 9
        assert len(engine.master) == 2
        assert engine.mode is CertaintyMode.ANCHORED

    def test_loaded_engine_fixes_fig3(self, instance_dir):
        engine, _ = load_instance(instance_dir)
        session = engine.session(uk.fig3_tuple(), "t")
        truth = uk.fig3_truth()
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        session.validate({"zip": truth["zip"]})
        assert session.fixed_values() == truth

    def test_load_accepts_file_path(self, instance_dir):
        engine, _ = load_instance(instance_dir / "instance.json")
        assert len(engine.ruleset) == 9

    def test_missing_document(self, tmp_path):
        with pytest.raises(ValidationError, match="no instance document"):
            load_instance(tmp_path)

    @pytest.mark.parametrize(
        "store,backend",
        [
            ({"backend": "sharded", "shards": 3}, "sharded"),
            ({"backend": "sqlite", "path": "master.db"}, "sqlite"),
            ({}, "single"),
        ],
    )
    def test_store_section_selects_backend(
        self, tmp_path, paper_master, paper_ruleset, store, backend
    ):
        config = InstanceConfig(
            name="uk-customers",
            input_schema=uk.INPUT_SCHEMA,
            master_schema=uk.MASTER_SCHEMA,
            mode=CertaintyMode.ANCHORED,
            store=store,
        )
        save_instance(tmp_path, config, paper_master, paper_ruleset)
        engine, loaded = load_instance(tmp_path)
        assert loaded.store == store
        assert engine.master.store.backend == backend
        assert engine.master.relation.tuples() == paper_master.tuples()
        if backend == "sqlite":
            # the snapshot landed next to the other instance artefacts
            assert (tmp_path / "master.db").exists()
        # the loaded engine still fixes (the store is transparent)
        session = engine.session(uk.fig3_tuple(), "t")
        truth = uk.fig3_truth()
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        session.validate({"zip": truth["zip"]})
        assert session.fixed_values() == truth

    def test_unknown_store_backend_rejected(self):
        with pytest.raises(ValidationError, match="store backend"):
            InstanceConfig.from_json(
                {
                    "name": "x",
                    "input_schema": {"name": "i", "attributes": [{"name": "a"}]},
                    "master_schema": {"name": "m", "attributes": [{"name": "b"}]},
                    "store": {"backend": "mongodb"},
                }
            )

    def test_sqlite_store_without_path_rejected(self):
        with pytest.raises(ValidationError, match="needs a 'path'"):
            InstanceConfig.from_json(
                {
                    "name": "x",
                    "input_schema": {"name": "i", "attributes": [{"name": "a"}]},
                    "master_schema": {"name": "m", "attributes": [{"name": "b"}]},
                    "store": {"backend": "sqlite"},
                }
            )

    @pytest.mark.parametrize("shards", ["eight", None, 0, -3])
    def test_bad_store_shards_rejected(self, shards):
        """A malformed 'shards' value must fail document validation with
        the prettified error, not escape as a bare ValueError later."""
        with pytest.raises(ValidationError, match="shards"):
            InstanceConfig.from_json(
                {
                    "name": "x",
                    "input_schema": {"name": "i", "attributes": [{"name": "a"}]},
                    "master_schema": {"name": "m", "attributes": [{"name": "b"}]},
                    "store": {"backend": "sharded", "shards": shards},
                }
            )

    def test_bad_json(self, tmp_path):
        (tmp_path / "instance.json").write_text("{nope", encoding="utf-8")
        with pytest.raises(ValidationError, match="bad JSON"):
            load_instance(tmp_path)

    def test_missing_keys_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            InstanceConfig.from_json({"name": "x"})

    def test_unknown_mode_rejected(self):
        doc = InstanceConfig(
            "x", uk.INPUT_SCHEMA, uk.MASTER_SCHEMA
        ).to_json()
        doc["mode"] = "psychic"
        with pytest.raises(ValidationError, match="unknown certainty mode"):
            InstanceConfig.from_json(doc)

    def test_scenario_mode_rejected_in_documents(self, instance_dir):
        doc = json.loads((instance_dir / "instance.json").read_text())
        doc["mode"] = "scenario"
        (instance_dir / "instance.json").write_text(json.dumps(doc))
        with pytest.raises(ValidationError, match="scenario"):
            load_instance(instance_dir)

    def test_json_roundtrip(self):
        config = InstanceConfig(
            "x", uk.INPUT_SCHEMA, uk.MASTER_SCHEMA,
            precompute_regions=3, options={"k": 1},
        )
        back = InstanceConfig.from_json(config.to_json())
        assert back.input_schema == uk.INPUT_SCHEMA
        assert back.precompute_regions == 3
        assert back.options == {"k": 1}

    def test_precompute_applied_on_load(self, tmp_path, paper_master, paper_ruleset):
        config = InstanceConfig(
            "uk", uk.INPUT_SCHEMA, uk.MASTER_SCHEMA,
            mode=CertaintyMode.ANCHORED, precompute_regions=2,
        )
        save_instance(tmp_path, config, paper_master, paper_ruleset)
        engine, _ = load_instance(tmp_path)
        assert len(engine.regions) == 2


@pytest.fixture()
def server(paper_engine):
    with serve(paper_engine) as srv:
        yield srv


def _get(server, path):
    with urllib.request.urlopen(server.url + path) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, payload):
    req = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestWebExplorer:
    def test_instance_summary(self, server):
        status, doc = _get(server, "/api/instance")
        assert status == 200
        assert doc["rules"] == 9
        assert doc["input_schema"][0] == "FN"

    def test_rules_listing(self, server):
        status, rules = _get(server, "/api/rules")
        assert status == 200
        assert len(rules) == 9
        assert rules[8]["id"] == "phi9"

    def test_rules_check(self, server):
        status, doc = _get(server, "/api/rules/check?samples=5")
        assert status == 200
        assert doc["consistent"] is True

    def test_regions(self, server):
        status, regions = _get(server, "/api/regions?k=2")
        assert status == 200
        assert len(regions) == 2
        assert regions[0]["attrs"] == ["AC", "item", "phn", "type", "zip"]

    def test_full_session_flow(self, server):
        truth = uk.fig3_truth()
        status, state = _post(
            server, "/api/sessions",
            {"tuple_id": "w1", "values": uk.fig3_tuple()},
        )
        assert status == 201
        assert state["suggestion"]["attrs"] == ["AC", "phn", "type", "item"]

        status, state = _post(
            server, "/api/sessions/w1/validate",
            {"assignments": {a: truth[a] for a in state["suggestion"]["attrs"]}},
        )
        assert status == 200
        assert state["values"]["FN"] == "Mark"
        assert state["suggestion"]["attrs"] == ["zip"]

        status, state = _post(
            server, "/api/sessions/w1/validate",
            {"assignments": {"zip": truth["zip"]}},
        )
        assert state["complete"] is True
        assert state["values"] == {k: str(v) for k, v in truth.items()}

        status, trace = _get(server, "/api/audit/w1")
        assert status == 200
        assert any(e["rule_id"] == "phi4" for e in trace)

    def test_audit_stats_endpoint(self, server):
        truth = uk.fig3_truth()
        _post(server, "/api/sessions", {"tuple_id": "w2", "values": uk.fig3_tuple()})
        _post(server, "/api/sessions/w2/validate",
              {"assignments": {a: truth[a] for a in ("AC", "phn", "type", "item")}})
        status, doc = _get(server, "/api/audit")
        assert status == 200
        assert doc["overall"]["tuples"] >= 1

    def test_session_state_endpoint(self, server):
        _post(server, "/api/sessions", {"tuple_id": "w3", "values": uk.fig3_tuple()})
        status, state = _get(server, "/api/sessions/w3")
        assert status == 200 and state["round"] == 0

    def test_unknown_session_404(self, server):
        status, doc = _get_error(server, "/api/sessions/nope")
        assert status == 404

    def test_duplicate_session_409(self, server):
        _post(server, "/api/sessions", {"tuple_id": "w4", "values": uk.fig3_tuple()})
        status, doc = _post(server, "/api/sessions",
                            {"tuple_id": "w4", "values": uk.fig3_tuple()})
        assert status == 409

    def test_bad_body_400(self, server):
        status, doc = _post(server, "/api/sessions", {"tuple_id": "w5"})
        assert status == 400

    def test_monitor_error_409(self, server):
        _post(server, "/api/sessions", {"tuple_id": "w6", "values": uk.fig3_tuple()})
        status, doc = _post(server, "/api/sessions/w6/validate",
                            {"assignments": {"nope": "x"}})
        assert status == 409
        assert "unknown attribute" in doc["error"]

    def test_unknown_route_404(self, server):
        status, _ = _get_error(server, "/api/teapot")
        assert status == 404


def _get_error(server, path):
    try:
        with urllib.request.urlopen(server.url + path) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
