"""Unit tests for hash indexes and value normalisers."""

import pytest

from repro.errors import ValidationError
from repro.relational.index import HashIndex
from repro.relational.normalize import NORMALIZERS, normalize_value, register_normalizer


class TestNormalizers:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("exact", "AbC", "AbC"),
            ("casefold", "AbC", "abc"),
            ("digits", "079 172 485", "079172485"),
            ("digits", "no digits", ""),
            ("alnum", "EH8 4AH", "eh84ah"),
            ("alnum", "e-h-8", "eh8"),
            ("collapse_spaces", "  A   B ", "a b"),
        ],
    )
    def test_string_normalisation(self, op, value, expected):
        assert normalize_value(value, op) == expected

    def test_non_string_pass_through(self):
        assert normalize_value(42, "casefold") == 42
        assert normalize_value(None, "digits") is None

    def test_unknown_op_raises(self):
        with pytest.raises(ValidationError, match="unknown match operator"):
            normalize_value("x", "soundex")

    def test_register_and_use(self):
        register_normalizer("test_reverse", lambda v: v[::-1] if isinstance(v, str) else v)
        try:
            assert normalize_value("abc", "test_reverse") == "cba"
        finally:
            del NORMALIZERS["test_reverse"]

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_normalizer("exact", lambda v: v)

    def test_equivalence_semantics(self):
        # two values match under op iff their normalisations are equal
        assert normalize_value("EH8 4AH", "alnum") == normalize_value("eh84ah", "alnum")
        assert normalize_value("EH8 4AH", "exact") != normalize_value("eh84ah", "exact")


class TestHashIndex:
    def test_build_and_lookup(self):
        idx = HashIndex(("a",)).build([(1,), (2,), (1,)])
        assert idx.lookup((1,)) == [0, 2]
        assert idx.lookup((3,)) == []

    def test_multi_attr_keys(self):
        idx = HashIndex(("a", "b")).build([(1, "x"), (1, "y")])
        assert idx.lookup((1, "x")) == [0]

    def test_normalised_probe_and_build(self):
        idx = HashIndex(("z",), ops=("alnum",)).build([("EH8 4AH",)])
        assert idx.lookup(("eh84ah",)) == [0]

    def test_ops_arity_checked(self):
        with pytest.raises(ValueError):
            HashIndex(("a", "b"), ops=("exact",))

    def test_duplicate_keys(self):
        idx = HashIndex(("a",)).build([(1,), (1,), (2,)])
        assert idx.duplicate_keys() == {(1,): [0, 1]}

    def test_len_counts_entries(self):
        idx = HashIndex(("a",)).build([(1,), (1,)])
        assert len(idx) == 2

    def test_keys(self):
        idx = HashIndex(("a",)).build([(1,), (2,)])
        assert set(idx.keys()) == {(1,), (2,)}

    def test_add_incremental(self):
        idx = HashIndex(("a",))
        idx.add(0, (5,))
        assert idx.lookup((5,)) == [0]

    def test_repr_mentions_ops(self):
        assert "z~alnum" in repr(HashIndex(("z",), ops=("alnum",)))
