"""The bench-dump checker: schema validation and the throughput floor.

``benchmarks/check_bench_json.py`` is what stands between a silently
broken benchmark (empty dump, perf regression) and a green CI run, so
it gets its own tests: the regression comparison keys on
(rows, mode, workers) — batch throughput is size-dependent, so only
same-size rows are comparable — anchors batch expectations to the
stream row measured in the same fresh dump, and fails closed when the
dumps share no configuration.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_json",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench_json.py",
)
check_bench_json = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_bench_json", check_bench_json)
_SPEC.loader.exec_module(check_bench_json)


def _dump(path: Path, rows: list[dict]) -> Path:
    path.write_text(
        json.dumps(
            {
                "experiment": "B1",
                "headers": sorted({k for r in rows for k in r}),
                "rows": rows,
                "machine": {"python": "3", "platform": "test", "cpus": 1},
            }
        ),
        encoding="utf-8",
    )
    return path


def _row(mode: str, workers: int, tput: int, rows: int = 300) -> dict:
    return {
        "rows": rows,
        "mode": mode,
        "workers": workers,
        "seconds": "1.00",
        "tuples/s": str(tput),
        "speedup": "1.00x",
        "dedup": "x1.00",
        "cache hit rate": "50%",
    }


def test_within_tolerance_passes(tmp_path):
    base = _dump(tmp_path / "base.json", [_row("stream", 1, 1000), _row("batch/thread", 1, 2000)])
    fresh = _dump(tmp_path / "fresh.json", [_row("stream", 1, 800), _row("batch/thread", 1, 1500)])
    assert check_bench_json.check_regression(fresh, base, 0.30) == []


def test_deep_drop_fails(tmp_path):
    base = _dump(tmp_path / "base.json", [_row("stream", 1, 1000), _row("batch/thread", 1, 2000)])
    fresh = _dump(tmp_path / "fresh.json", [_row("stream", 1, 950), _row("batch/thread", 1, 900)])
    problems = check_bench_json.check_regression(fresh, base, 0.30)
    assert len(problems) == 1
    assert "batch/thread" in problems[0]


def test_only_same_size_rows_compared(tmp_path):
    # quick sweep (300 rows) vs a committed full sweep that kept the
    # 300-row point: only the matching size is compared — the fast 5k
    # row neither raises the bar nor hides a same-size drop
    base = _dump(
        tmp_path / "base.json",
        [_row("stream", 1, 600, rows=300), _row("stream", 1, 1000, rows=5000)],
    )
    fresh = _dump(tmp_path / "fresh.json", [_row("stream", 1, 550, rows=300)])
    assert check_bench_json.check_regression(fresh, base, 0.30) == []
    slow = _dump(tmp_path / "slow.json", [_row("stream", 1, 300, rows=300)])
    assert check_bench_json.check_regression(slow, base, 0.30)


def test_disjoint_configurations_fail_closed(tmp_path):
    base = _dump(tmp_path / "base.json", [_row("stream", 1, 1000, rows=5000)])
    fresh = _dump(tmp_path / "fresh.json", [_row("stream", 1, 1000, rows=300)])
    problems = check_bench_json.check_regression(fresh, base, 0.30)
    assert problems and "no comparable" in problems[0]


def test_unreadable_baseline_fails(tmp_path):
    fresh = _dump(tmp_path / "fresh.json", [_row("stream", 1, 1000)])
    missing = tmp_path / "nope.json"
    assert check_bench_json.check_regression(fresh, missing, 0.30)


def test_main_wires_baseline_and_exit_codes(tmp_path, capsys):
    base = _dump(tmp_path / "base.json", [_row("stream", 1, 1000)])
    good = _dump(tmp_path / "good.json", [_row("stream", 1, 980)])
    bad = _dump(tmp_path / "bad.json", [_row("stream", 1, 100)])
    assert check_bench_json.main([str(good), "--baseline", str(base)]) == 0
    assert check_bench_json.main([str(bad), "--baseline", str(base)]) == 1
    out = capsys.readouterr().out
    assert "below 70% of the baseline" in out


def test_main_rejects_bad_tolerance(tmp_path):
    fresh = _dump(tmp_path / "fresh.json", [_row("stream", 1, 1000)])
    with pytest.raises(SystemExit):
        check_bench_json.main([str(fresh), "--max-regression", "1.5"])


def test_batch_rows_are_stream_anchored(tmp_path):
    base = _dump(
        tmp_path / "base.json",
        [_row("stream", 1, 4000), _row("batch/thread", 1, 7000)],
    )
    # a slower machine: stream at ~72% of baseline, batch scaled
    # proportionally — no batch-layer regression, so no failure
    fresh = _dump(
        tmp_path / "fresh.json",
        [_row("stream", 1, 2900, rows=300), _row("batch/thread", 1, 4300, rows=300)],
    )
    problems = check_bench_json.check_regression(fresh, base, 0.30)
    assert problems == []
    # same stream, but batch collapsed below the scaled floor: the
    # batch layer itself regressed and the guard says so
    broken = _dump(
        tmp_path / "broken.json",
        [_row("stream", 1, 2900, rows=300), _row("batch/thread", 1, 2000, rows=300)],
    )
    problems = check_bench_json.check_regression(broken, base, 0.30)
    assert len(problems) == 1
    assert "stream-anchored" in problems[0]
