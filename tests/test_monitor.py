"""Unit tests for the data monitor: suggestions, sessions, users, streams."""

import pytest

from repro import CerFix, CertaintyMode
from repro.audit.log import AuditLog
from repro.core.region import RankedRegion, Region
from repro.core.pattern import Eq, PatternTuple
from repro.errors import MonitorError, ValidationError
from repro.master.manager import MasterDataManager
from repro.monitor.session import MonitorSession
from repro.monitor.stream import StreamProcessor
from repro.monitor.suggest import SuggestionStrategy, compute_suggestion
from repro.monitor.user import (
    CautiousUser,
    NoisyOracleUser,
    OracleUser,
    ScriptedUser,
    SelectiveUser,
)
from repro.relational.relation import Relation
from repro.scenarios import uk_customers as uk


@pytest.fixture()
def session(paper_ruleset, paper_manager):
    return MonitorSession(paper_ruleset, paper_manager, uk.fig3_tuple(), "t1")


class TestSuggestions:
    def test_core_first_round1_is_fig3a(self, paper_ruleset, paper_manager):
        s = compute_suggestion(uk.fig3_tuple(), frozenset(), paper_ruleset, paper_manager)
        assert s.attrs == ("AC", "phn", "type", "item")
        assert s.strategy is SuggestionStrategy.CORE_FIRST

    def test_core_first_round2_is_zip(self, paper_ruleset, paper_manager, session):
        session.validate({a: uk.fig3_truth()[a] for a in ("AC", "phn", "type", "item")})
        s = session.suggestion()
        assert s.attrs == ("zip",)

    def test_complete_session_no_suggestion(self, session):
        truth = uk.fig3_truth()
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        session.validate({"zip": truth["zip"]})
        assert session.suggestion() is None

    def test_region_strategy_uses_precomputed(self, paper_ruleset, paper_manager):
        region = RankedRegion(
            Region(("AC", "item", "phn", "type", "zip"),
                   (PatternTuple({"type": Eq("2")}),)),
            CertaintyMode.SCENARIO,
        )
        s = compute_suggestion(
            uk.fig3_tuple(), frozenset({"type"}), paper_ruleset, paper_manager,
            strategy=SuggestionStrategy.REGION, regions=[region],
        )
        assert s.strategy is SuggestionStrategy.REGION
        assert set(s.attrs) == {"AC", "item", "phn", "zip"}

    def test_region_strategy_falls_back(self, paper_ruleset, paper_manager):
        s = compute_suggestion(
            uk.fig3_tuple(), frozenset(), paper_ruleset, paper_manager,
            strategy=SuggestionStrategy.REGION, regions=[],
        )
        assert s.strategy is SuggestionStrategy.CORE_FIRST

    def test_semantic_strategy_one_round(self, paper_ruleset, paper_manager, paper_master):
        s = compute_suggestion(
            uk.fig3_tuple(), frozenset(), paper_ruleset, paper_manager,
            strategy=SuggestionStrategy.SEMANTIC,
            mode=CertaintyMode.SCENARIO,
            scenario=uk.scenario_tuples(paper_master),
        )
        assert s.strategy is SuggestionStrategy.SEMANTIC
        # validating this set completes in one round for any correct values
        assert set(s.attrs) >= {"AC", "phn", "type", "item"}

    def test_suggestion_render(self, session):
        assert "validate" in session.suggestion().render()


class TestSessionLifecycle:
    def test_initial_state(self, session):
        assert not session.is_complete
        assert session.validated == frozenset()
        assert session.round_no == 0

    def test_missing_attrs_rejected(self, paper_ruleset, paper_manager):
        with pytest.raises(MonitorError, match="missing"):
            MonitorSession(paper_ruleset, paper_manager, {"FN": "x"}, "t")

    def test_fig3_full_walkthrough(self, session):
        truth = uk.fig3_truth()
        r1 = session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        assert set(r1.newly_validated) >= {"FN", "LN", "city"}
        r2 = session.validate({"zip": truth["zip"]})
        assert session.is_complete
        assert session.round_no == 2
        assert session.fixed_values() == truth

    def test_assure_uses_current_values(self, paper_ruleset, paper_manager):
        t = uk.fig3_truth()  # already-clean tuple
        session = MonitorSession(paper_ruleset, paper_manager, t, "t")
        session.assure(["AC", "phn", "type", "item"])
        session.assure(["zip"])
        assert session.is_complete
        assert session.fixed_values() == t

    def test_normalization_on_assure(self, paper_ruleset, paper_manager):
        # assure the lower-case zip: phi1 rewrites it to the master form
        t = dict(uk.fig3_truth())
        t["zip"] = "dh1 3le"
        session = MonitorSession(paper_ruleset, paper_manager, t, "t")
        session.assure(["AC", "phn", "type", "item"])
        session.assure(["zip"])
        assert session.fixed_values()["zip"] == "DH1 3LE"

    def test_fixed_values_before_complete_raises(self, session):
        with pytest.raises(MonitorError, match="no certain fix yet"):
            session.fixed_values()

    def test_validate_after_complete_raises(self, session):
        truth = uk.fig3_truth()
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        session.validate({"zip": truth["zip"]})
        with pytest.raises(MonitorError, match="already"):
            session.validate({"zip": truth["zip"]})

    def test_empty_validation_rejected(self, session):
        with pytest.raises(MonitorError):
            session.validate({})

    def test_unknown_attr_rejected(self, session):
        with pytest.raises(MonitorError, match="unknown attribute"):
            session.validate({"nope": "x"})

    def test_contradicting_validation_rejected(self, session):
        session.validate({"AC": "201"})
        with pytest.raises(MonitorError, match="contradictory"):
            session.validate({"AC": "131"})

    def test_revalidation_same_value_ok(self, session):
        session.validate({"AC": "201"})
        session.validate({"AC": "201", "type": "2"})  # AC ignored, no error
        assert "type" in session.validated

    def test_provenance_split(self, session):
        truth = uk.fig3_truth()
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        session.validate({"zip": truth["zip"]})
        prov = session.provenance
        assert prov["AC"] == "user"
        assert prov["FN"] == "rule"
        assert prov["str"] == "rule"

    def test_audit_events_recorded(self, session):
        truth = uk.fig3_truth()
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        events = session.audit.by_tuple("t1")
        sources = {e.attr: e.source for e in events}
        assert sources["AC"] == "user"
        assert sources["FN"] == "rule"

    def test_user_can_validate_unsuggested_attrs(self, session):
        # paper step (2): S may not be any certain region
        truth = uk.fig3_truth()
        record = session.validate({"zip": truth["zip"], "type": truth["type"]})
        # zip + type validated; phi1 self-normalises, phi3/phi2 need nothing else
        assert "str" in session.validated
        assert "city" in session.validated

    def test_conflict_recorded_on_wrong_validation(self, paper_ruleset, paper_manager):
        t = dict(uk.fig3_tuple())
        session = MonitorSession(paper_ruleset, paper_manager, t, "t")
        truth = uk.fig3_truth()
        # user wrongly validates city as 'Newcastle', then validates AC:
        # phi9 prescribes 'Dur' -> conflict detected, value not overwritten
        session.validate({"city": "Newcastle"})
        session.validate({"AC": truth["AC"]})
        assert session.conflicts
        assert session.current_values()["city"] == "Newcastle"

    def test_run_with_oracle(self, paper_ruleset, paper_manager):
        session = MonitorSession(paper_ruleset, paper_manager, uk.fig3_tuple(), "t")
        assert session.run(OracleUser(uk.fig3_truth()))
        assert session.round_no == 2

    def test_suggestion_cache_invalidated(self, session):
        s1 = session.suggestion()
        assert session.suggestion() is s1  # cached
        session.validate({"AC": "201"})
        assert session.suggestion() is not s1


class TestUsers:
    def test_oracle_answers_suggestion(self, session):
        user = OracleUser(uk.fig3_truth())
        out = user.respond(session.suggestion(), session)
        assert out == {a: uk.fig3_truth()[a] for a in ("AC", "phn", "type", "item")}

    def test_cautious_limits_per_round(self, session):
        user = CautiousUser(uk.fig3_truth(), max_per_round=2)
        out = user.respond(session.suggestion(), session)
        assert len(out) == 2

    def test_cautious_validates_eventually(self, paper_ruleset, paper_manager):
        session = MonitorSession(paper_ruleset, paper_manager, uk.fig3_tuple(), "t")
        assert session.run(CautiousUser(uk.fig3_truth(), max_per_round=1), max_rounds=10)
        assert session.round_no > 2  # more rounds than the oracle

    def test_cautious_rejects_zero(self):
        with pytest.raises(ValidationError):
            CautiousUser({}, max_per_round=0)

    def test_selective_volunteers_known_attr(self, session):
        user = SelectiveUser(uk.fig3_truth(), known={"zip"})
        out = user.respond(session.suggestion(), session)
        assert out == {"zip": uk.fig3_truth()["zip"]}

    def test_selective_gives_up(self, session):
        user = SelectiveUser(uk.fig3_truth(), known=set())
        assert user.respond(session.suggestion(), session) == {}

    def test_scripted_replays(self, session):
        user = ScriptedUser([{"AC": "201"}, {"zip": "DH1 3LE"}])
        assert user.respond(session.suggestion(), session) == {"AC": "201"}
        assert user.respond(session.suggestion(), session) == {"zip": "DH1 3LE"}
        assert user.respond(session.suggestion(), session) == {}

    def test_noisy_oracle_bounds(self):
        with pytest.raises(ValidationError):
            NoisyOracleUser({}, error_rate=1.5)

    def test_noisy_oracle_corrupts(self, session):
        import random

        user = NoisyOracleUser(uk.fig3_truth(), error_rate=1.0, rng=random.Random(1))
        out = user.respond(session.suggestion(), session)
        assert all(v.endswith("!wrong") for v in out.values())


class TestStream:
    def test_oracle_stream_completes(self, paper_ruleset, paper_manager, uk_master_100):
        workload = uk.generate_workload(uk_master_100, 30, rate=0.3, seed=5)
        manager = MasterDataManager(uk_master_100)
        processor = StreamProcessor(paper_ruleset, manager)
        report = processor.process(workload.dirty, workload.clean)
        assert report.tuples == 30
        assert report.completed == 30
        assert 0 < report.user_share < 1
        assert report.throughput > 0

    def test_fixed_tuples_match_truth(self, paper_ruleset, uk_master_100):
        """The headline guarantee: every certain fix equals the ground truth."""
        workload = uk.generate_workload(uk_master_100, 25, rate=0.4, seed=6)
        manager = MasterDataManager(uk_master_100)
        engine = CerFix(paper_ruleset, manager)
        for i, (dirty_row, clean_row) in enumerate(
            zip(workload.dirty.rows(), workload.clean.rows())
        ):
            session = engine.fix(dirty_row.to_dict(), OracleUser(clean_row.to_dict()), f"t{i}")
            assert session.is_complete
            assert session.fixed_values() == clean_row.to_dict()

    def test_stalling_user_marks_incomplete(self, paper_ruleset, paper_manager):
        dirty = Relation(uk.INPUT_SCHEMA, [uk.fig3_tuple()])
        processor = StreamProcessor(paper_ruleset, paper_manager)
        report = processor.process(
            dirty, user_factory=lambda tid, truth: SelectiveUser({}, known=set())
        )
        assert report.completed == 0
        assert not report.outcomes[0].complete

    def test_truth_size_mismatch_rejected(self, paper_ruleset, paper_manager):
        dirty = Relation(uk.INPUT_SCHEMA, [uk.fig3_tuple()])
        truth = Relation(uk.INPUT_SCHEMA, [])
        with pytest.raises(MonitorError):
            StreamProcessor(paper_ruleset, paper_manager).process(dirty, truth)

    def test_needs_truth_or_factory(self, paper_ruleset, paper_manager):
        dirty = Relation(uk.INPUT_SCHEMA, [uk.fig3_tuple()])
        with pytest.raises(MonitorError):
            StreamProcessor(paper_ruleset, paper_manager).process(dirty)

    def test_custom_tuple_ids(self, paper_ruleset, paper_manager):
        dirty = Relation(uk.INPUT_SCHEMA, [uk.fig3_tuple()])
        truth = Relation(uk.INPUT_SCHEMA, [uk.fig3_truth()])
        audit = AuditLog()
        processor = StreamProcessor(paper_ruleset, paper_manager, audit=audit)
        report = processor.process(dirty, truth, tuple_ids=["order-42"])
        assert report.outcomes[0].tuple_id == "order-42"
        assert audit.by_tuple("order-42")
