"""Batch pipeline wiring: engine facade, audit log, CLI, web API, harness."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import CerFix
from repro.bench.harness import BenchResult, save_json
from repro.explorer.cli import main as cli_main
from repro.explorer.web import serve
from repro.relational.csvio import read_csv, write_csv
from repro.scenarios import uk_customers as uk


@pytest.fixture(scope="module")
def workload():
    master = uk.generate_master(15, seed=51)
    wl = uk.generate_workload(master, 25, rate=0.25, seed=52)
    return master, wl


# ---------------------------------------------------------------------------
# Engine facade + audit integration
# ---------------------------------------------------------------------------


def test_engine_clean_relation_fills_audit_log(workload):
    master, wl = workload
    engine = CerFix(uk.paper_ruleset(), master)
    result = engine.clean_relation(wl.dirty, wl.clean, workers=2, shards=4)
    # every row has an audit trail under the stream naming convention
    ids = engine.audit.tuple_ids()
    assert set(ids) == {f"t{i}" for i in range(len(wl.dirty))}
    # provenance sums match the report exactly
    assert (
        sum(1 for e in engine.audit if e.source == "user") == result.report.user_cells
    )
    assert (
        sum(1 for e in engine.audit if e.source == "rule") == result.report.rule_cells
    )
    assert (
        sum(1 for e in engine.audit if e.changed) == result.report.changed_cells
    )


def test_engine_clean_relation_custom_tuple_ids(workload):
    master, wl = workload
    engine = CerFix(uk.paper_ruleset(), master)
    ids = [f"row-{i}" for i in range(len(wl.dirty))]
    engine.clean_relation(wl.dirty, wl.clean, tuple_ids=ids)
    assert set(engine.audit.tuple_ids()) == set(ids)


def test_scenario_mode_process_falls_back_to_threads(workload):
    """A closure scenario cannot cross a process boundary; the pipeline
    must degrade to threads (same output) instead of crashing."""
    master, wl = workload
    from repro import CertaintyMode

    engine = CerFix(
        uk.paper_ruleset(),
        master,
        mode=CertaintyMode.SCENARIO,
        scenario=uk.scenario_tuples(master),
    )
    serial = engine.clean_relation(wl.dirty, wl.clean, workers=1)
    engine2 = CerFix(
        uk.paper_ruleset(),
        master,
        mode=CertaintyMode.SCENARIO,
        scenario=uk.scenario_tuples(master),
    )
    result = engine2.clean_relation(
        wl.dirty, wl.clean, workers=2, backend="process"
    )
    assert result.relation.tuples() == serial.relation.tuples()
    assert any("fell back to threads" in n for n in result.report.notes)


# ---------------------------------------------------------------------------
# CLI: cerfix clean
# ---------------------------------------------------------------------------


def test_cli_clean_roundtrip(workload, tmp_path, capsys):
    master, wl = workload
    master_csv = tmp_path / "master.csv"
    dirty_csv = tmp_path / "dirty.csv"
    truth_csv = tmp_path / "truth.csv"
    write_csv(master, master_csv)
    write_csv(wl.dirty, dirty_csv)
    write_csv(wl.clean, truth_csv)
    out_csv = tmp_path / "fixed.csv"
    report_json = tmp_path / "report.json"

    rc = cli_main(
        [
            "clean",
            "--scenario", "uk",
            "--master", str(master_csv),
            "--mode", "strict",
            "--input", str(dirty_csv),
            "--truth", str(truth_csv),
            "--workers", "2",
            "--out", str(out_csv),
            "--report", str(report_json),
            "--journal", str(tmp_path / "journal.jsonl"),
        ]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "batch:" in printed and "cache:" in printed

    # the CLI output equals the library result
    engine = CerFix(uk.paper_ruleset(), read_csv(master_csv, schema=uk.MASTER_SCHEMA))
    expected = engine.clean_relation(
        read_csv(dirty_csv, schema=uk.INPUT_SCHEMA),
        read_csv(truth_csv, schema=uk.INPUT_SCHEMA),
    )
    assert read_csv(out_csv, schema=uk.INPUT_SCHEMA).tuples() == expected.relation.tuples()

    payload = json.loads(report_json.read_text())
    assert payload["tuples"] == len(wl.dirty)
    assert payload["cache"]["hits"] > 0


def test_cli_clean_rule_only(workload, tmp_path):
    master, wl = workload
    dirty_csv = tmp_path / "dirty.csv"
    master_csv = tmp_path / "master.csv"
    write_csv(wl.dirty, dirty_csv)
    write_csv(master, master_csv)
    out_csv = tmp_path / "fixed.csv"
    rc = cli_main(
        [
            "clean",
            "--scenario", "uk",
            "--master", str(master_csv),
            "--mode", "strict",
            "--input", str(dirty_csv),
            "--validated", "zip,phn,type",
            "--out", str(out_csv),
        ]
    )
    assert rc == 0
    assert len(read_csv(out_csv, schema=uk.INPUT_SCHEMA)) == len(wl.dirty)


# ---------------------------------------------------------------------------
# Web API: POST /api/clean
# ---------------------------------------------------------------------------


def _post(url, payload):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, json.loads(resp.read())


def test_web_api_clean(workload):
    master, wl = workload
    engine = CerFix(uk.paper_ruleset(), master)
    expected = CerFix(uk.paper_ruleset(), master).clean_relation(wl.dirty, wl.clean)
    rows = [r.to_dict() for r in wl.dirty.rows()]
    truth = [r.to_dict() for r in wl.clean.rows()]
    with serve(engine, port=0) as server:
        status, payload = _post(
            f"{server.url}/api/clean", {"rows": rows, "truth": truth, "workers": 2}
        )
    assert status == 200
    assert payload["report"]["tuples"] == len(rows)
    assert payload["report"]["completed"] == payload["report"]["tuples"]
    got = [tuple(r[n] for n in uk.INPUT_SCHEMA.names) for r in payload["rows"]]
    assert got == expected.relation.tuples()


def test_web_api_clean_rejects_bad_body(workload):
    master, _ = workload
    engine = CerFix(uk.paper_ruleset(), master)
    with serve(engine, port=0) as server:
        req = urllib.request.Request(
            f"{server.url}/api/clean",
            data=json.dumps({"rows": []}).encode("utf-8"),
            method="POST",
        )
        try:
            urllib.request.urlopen(req)
            status = 200
        except urllib.error.HTTPError as exc:
            status = exc.code
    assert status == 400


# ---------------------------------------------------------------------------
# Harness JSON dumps
# ---------------------------------------------------------------------------


def test_bench_result_json_roundtrip(tmp_path):
    result = BenchResult("X — demo", ("a", "b"))
    result.add(1, "one")
    result.add(2, "two")
    result.note("a note")
    path = save_json(result, "BENCH_demo.json", out_dir=tmp_path)
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "X — demo"
    assert payload["rows"] == [{"a": 1, "b": "one"}, {"a": 2, "b": "two"}]
    assert payload["notes"] == ["a note"]
    assert payload["machine"]["cpus"] >= 1
