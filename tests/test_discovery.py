"""Unit tests for constraint discovery (FDs, constant CFDs, MDs)."""

import pytest

from repro.core.chase import chase
from repro.core.ruleset import RuleSet
from repro.discovery.cfd import discover_constant_cfds
from repro.discovery.fd import FD, discover_fds, fd_confidence, partition
from repro.discovery.md import discover_mds
from repro.errors import ValidationError
from repro.master.manager import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.rules.cfd import satisfies
from repro.rules.derive import editing_rules_from_cfds, editing_rules_from_md
from repro.scenarios import hospital, uk_customers as uk

SCHEMA = Schema("r", ["a", "b", "c"])


@pytest.fixture()
def rel():
    # a -> b holds; b -> a does not (b=1 maps to a in {x, z}); c free
    return Relation(
        SCHEMA,
        [
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("y", "2", "p"),
            ("z", "1", "r"),
            ("z", "1", "p"),
        ],
    )


class TestPartition:
    def test_groups(self, rel):
        groups = partition(rel, ["a"])
        assert groups[("x",)] == [0, 1]
        assert groups[("z",)] == [3, 4]

    def test_multi_attr(self, rel):
        groups = partition(rel, ["a", "b"])
        assert groups[("x", "1")] == [0, 1]


class TestFDConfidence:
    def test_exact_fd(self, rel):
        confidence, support = fd_confidence(rel, ["a"], "b")
        assert confidence == 1.0
        assert support == 4  # two groups of size 2

    def test_violated_fd(self, rel):
        confidence, _ = fd_confidence(rel, ["b"], "a")
        assert confidence < 1.0

    def test_empty_lhs_is_constancy(self):
        rel = Relation(SCHEMA, [("x", "1", "p"), ("y", "1", "p")])
        confidence, _ = fd_confidence(rel, [], "b")
        assert confidence == 1.0

    def test_empty_relation(self):
        confidence, support = fd_confidence(Relation(SCHEMA), ["a"], "b")
        assert confidence == 1.0 and support == 0


class TestDiscoverFDs:
    def test_finds_a_to_b(self, rel):
        fds = discover_fds(rel, max_lhs=1)
        assert any(fd.lhs == ("a",) and fd.rhs == "b" for fd in fds)
        assert not any(fd.lhs == ("b",) and fd.rhs == "a" for fd in fds)

    def test_minimality(self, rel):
        # a -> b holds, so (a, c) -> b must not be reported
        fds = discover_fds(rel, max_lhs=2)
        assert not any(set(fd.lhs) == {"a", "c"} and fd.rhs == "b" for fd in fds)

    def test_targets_filter(self, rel):
        fds = discover_fds(rel, targets=["b"])
        assert all(fd.rhs == "b" for fd in fds)

    def test_approximate_confidence(self, rel):
        fds = discover_fds(rel, min_confidence=0.6, min_support=2)
        assert any(fd.lhs == ("b",) and fd.rhs == "a" for fd in fds)

    def test_confidence_bounds(self, rel):
        with pytest.raises(ValidationError):
            discover_fds(rel, min_confidence=0.0)

    def test_render(self):
        assert "-> b" in FD(("a",), "b", 4, 1.0).render()

    def test_hospital_keys_discovered(self, hospital_master):
        clean = hospital.clean_inputs_from_master(hospital_master, 150, seed=1)
        fds = discover_fds(clean, max_lhs=1, targets=["hname", "city", "state"])
        lhs_for_hname = {fd.lhs for fd in fds if fd.rhs == "hname"}
        assert ("provider_id",) in lhs_for_hname


class TestDiscoverConstantCFDs:
    def test_mines_vocabulary(self):
        rel = Relation(
            Schema("v", ["code", "name"]),
            [("A", "Alpha")] * 3 + [("B", "Beta")] * 3,
        )
        cfds = discover_constant_cfds(rel, max_lhs=1, min_support=2, targets=["name"])
        assert len(cfds) == 1
        cfd = cfds[0]
        assert cfd.lhs == ("code",) and cfd.rhs == "name"
        assert len(cfd.tableau) == 2
        assert satisfies([cfd], rel)

    def test_mines_both_directions_by_default(self):
        rel = Relation(
            Schema("v", ["code", "name"]),
            [("A", "Alpha")] * 3 + [("B", "Beta")] * 3,
        )
        cfds = discover_constant_cfds(rel, max_lhs=1, min_support=2)
        directions = {(cfd.lhs, cfd.rhs) for cfd in cfds}
        assert (("code",), "name") in directions
        assert (("name",), "code") in directions

    def test_support_threshold(self):
        rel = Relation(
            Schema("v", ["code", "name"]),
            [("A", "Alpha")] * 3 + [("B", "Beta")],  # B group too small
        )
        cfds = discover_constant_cfds(rel, max_lhs=1, min_support=2)
        rows = cfds[0].tableau
        assert len(rows) == 1  # only the A row

    def test_confidence_threshold(self):
        rel = Relation(
            Schema("v", ["code", "name"]),
            [("A", "Alpha"), ("A", "Alpha"), ("A", "Oops")],
        )
        assert discover_constant_cfds(rel, max_lhs=1, min_support=2,
                                      targets=["name"]) == []
        mined = discover_constant_cfds(
            rel, max_lhs=1, min_support=2, min_confidence=0.6, targets=["name"]
        )
        assert mined and mined[0].tableau[0].rhs.value == "Alpha"

    def test_minimality_across_levels(self):
        rel = Relation(
            Schema("v", ["code", "region", "name"]),
            [("A", "r1", "Alpha")] * 2 + [("A", "r2", "Alpha")] * 2,
        )
        cfds = discover_constant_cfds(rel, max_lhs=2, min_support=2, targets=["name"])
        # code alone explains name; (code, region) adds nothing
        assert all(cfd.lhs == ("code",) for cfd in cfds)

    def test_rediscovers_hospital_vocabulary(self, hospital_master):
        """The hand-written vocabulary CFDs are rediscoverable from clean
        samples, and the derived rules behave identically in the chase."""
        clean = hospital.clean_inputs_from_master(hospital_master, 250, seed=2)
        mined = discover_constant_cfds(
            clean, max_lhs=1, min_support=3,
            targets=["measure_name", "condition", "category", "state_name"],
        )
        rules = editing_rules_from_cfds(mined)
        assert rules
        ruleset = RuleSet(rules, hospital.INPUT_SCHEMA, hospital.MASTER_SCHEMA)
        manager = MasterDataManager(hospital_master)
        t = clean.row(0).to_dict()
        dirty = dict(t)
        dirty["measure_name"] = "GARBAGE"
        result = chase(dirty, ["measure_code"], ruleset, manager)
        assert result.values["measure_name"] == t["measure_name"]


class TestDiscoverMDs:
    def _pairs(self, master, n=40):
        clean = uk.clean_inputs_from_master(master, n, seed=3)
        by_mob = {r["Mphn"]: r for r in master.rows()}
        by_home = {(r["AC"], r["Hphn"]): r for r in master.rows()}
        pairs = []
        for t in clean.rows():
            values = t.to_dict()
            s = by_mob[values["phn"]] if values["type"] == "2" else by_home[
                (values["AC"], values["phn"])
            ]
            pairs.append((values, s))
        return pairs

    def test_discovers_zip_keyed_md(self, uk_master_100):
        mds = discover_mds(self._pairs(uk_master_100), md_id="uk")
        assert mds
        clause_attrs = {c.attr1 for md in mds for c in md.lhs}
        assert "zip" in clause_attrs  # zip is unique per person: selective

    def test_identified_pairs_exclude_clause_attrs(self, uk_master_100):
        for md in discover_mds(self._pairs(uk_master_100)):
            clause_attrs = {c.attr1 for c in md.lhs}
            assert all(a not in clause_attrs for a, _ in md.identify)

    def test_derived_rules_fix_names(self, uk_master_100):
        mds = discover_mds(self._pairs(uk_master_100))
        md = mds[0]
        wanted = [p for p in md.identify if p[0] in ("FN", "LN", "city")]
        assert wanted
        from repro.rules.md import MatchingDependency

        md_small = MatchingDependency(md.md_id, md.lhs, tuple(wanted))
        rules = editing_rules_from_md(md_small)
        ruleset = RuleSet(rules, uk.INPUT_SCHEMA, uk.MASTER_SCHEMA)
        manager = MasterDataManager(uk_master_100)
        clean = uk.clean_inputs_from_master(uk_master_100, 1, seed=4)
        t = clean.row(0).to_dict()
        dirty = dict(t)
        dirty["FN"] = "WRONG"
        validated = sorted({c.attr1 for c in md_small.lhs})
        result = chase(dirty, validated, ruleset, manager)
        assert result.values["FN"] == t["FN"]

    def test_requires_pairs(self):
        with pytest.raises(ValidationError):
            discover_mds([])

    def test_confidence_bounds(self, uk_master_100):
        with pytest.raises(ValidationError):
            discover_mds(self._pairs(uk_master_100, n=5), min_confidence=0.0)
