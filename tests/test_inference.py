"""Unit tests for the inference system (syntactic closures)."""


from repro.core.inference import (
    chase_depth_bound,
    dependency_graph,
    derivation_cycles,
    mandatory_attributes,
    potential_closure,
    reachable_closure,
    syntactically_certain,
)
from repro.core.pattern import Eq, PatternTuple
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.relational.schema import Schema
from repro.scenarios import uk_customers as uk

INPUT = Schema("t", ["k", "a", "b", "c"])
MASTER = Schema("m", ["mk", "ma", "mb"])


def rs(*rules):
    return RuleSet(rules, INPUT, MASTER)


R_KA = EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma"))
R_AB = EditingRule("ab", (MatchPair("a", "ma"),), "b", MasterColumn("mb"))
R_AB_GATED = EditingRule(
    "abg", (MatchPair("a", "ma"),), "b", MasterColumn("mb"), PatternTuple({"c": Eq("go")})
)


class TestPotentialClosure:
    def test_transitive(self):
        assert potential_closure({"k"}, rs(R_KA, R_AB)) == frozenset({"k", "a", "b"})

    def test_no_rules_fire(self):
        assert potential_closure({"c"}, rs(R_KA)) == frozenset({"c"})

    def test_pattern_attrs_count_as_reads(self):
        # abg reads c via its pattern: without c, b is unreachable
        assert "b" not in potential_closure({"k"}, rs(R_KA, R_AB_GATED))
        assert "b" in potential_closure({"k", "c"}, rs(R_KA, R_AB_GATED))

    def test_ignores_pattern_values(self):
        # syntactic: the closure includes b even though c='stop' blocks it
        closure = potential_closure({"a", "c"}, rs(R_AB_GATED))
        assert "b" in closure

    def test_paper_mandatory_plus_zip_closes(self, paper_ruleset):
        closure = potential_closure({"AC", "phn", "type", "item", "zip"}, paper_ruleset)
        assert closure == frozenset(uk.INPUT_SCHEMA.names)


class TestReachableClosure:
    def test_respects_known_pattern_values(self):
        # c is validated with a blocking value -> b not reachable
        closure = reachable_closure({"a": "A1", "c": "stop"}, {"a", "c"}, rs(R_AB_GATED))
        assert "b" not in closure

    def test_pattern_on_unknown_assumed_satisfiable(self):
        # c is to-be-validated (not in the known base) -> optimistic
        closure = reachable_closure({"a": "A1"}, {"a", "c"}, rs(R_AB_GATED))
        assert "b" in closure

    def test_fig3_round2_zip_unlocks_str(self, paper_ruleset):
        t = uk.fig3_tuple()
        validated = {"AC", "phn", "type", "item", "FN", "LN", "city"}
        known = {a: uk.fig3_truth()[a] for a in validated}
        closure = reachable_closure(known, validated | {"zip"}, paper_ruleset)
        assert closure == frozenset(uk.INPUT_SCHEMA.names)

    def test_fig3_type2_blocks_phi8(self, paper_ruleset):
        validated = {"AC", "phn", "type", "item"}
        known = {"AC": "201", "phn": "075568485", "type": "2", "item": "DVD"}
        closure = reachable_closure(known, frozenset(validated), paper_ruleset)
        assert "zip" not in closure  # phi8 requires type=1


class TestMandatory:
    def test_simple(self):
        assert mandatory_attributes(rs(R_KA)) == frozenset({"k", "b", "c"})

    def test_paper_mandatory_is_fig3a_suggestion(self, paper_ruleset):
        assert mandatory_attributes(paper_ruleset) == frozenset(
            {"AC", "phn", "type", "item"}
        )

    def test_extended_rules_drop_ac(self, extended_ruleset):
        assert mandatory_attributes(extended_ruleset) == frozenset({"phn", "type", "item"})


class TestSyntacticCertainty:
    def test_positive(self):
        assert syntactically_certain(["k", "c"], rs(R_KA, R_AB))

    def test_negative(self):
        assert not syntactically_certain(["k"], rs(R_KA))

    def test_paper(self, paper_ruleset):
        assert syntactically_certain(
            ["AC", "phn", "type", "item", "zip"], paper_ruleset
        )
        assert not syntactically_certain(["AC", "phn", "type"], paper_ruleset)


class TestDependencyGraph:
    def test_nodes_and_edges(self):
        g = dependency_graph(rs(R_KA, R_AB))
        assert set(g.nodes) == {"k", "a", "b", "c"}
        assert g.has_edge("k", "a")
        assert g.has_edge("a", "b")

    def test_edge_rule_labels(self):
        g = dependency_graph(rs(R_KA))
        assert g["k"]["a"]["rules"] == ["ka"]

    def test_parallel_rules_merge_labels(self):
        r2 = EditingRule("ka2", (MatchPair("k", "mk"),), "a", MasterColumn("mb"))
        g = dependency_graph(rs(R_KA, r2))
        assert g["k"]["a"]["rules"] == ["ka", "ka2"]

    def test_no_cycles_in_paper_rules(self, paper_ruleset):
        assert derivation_cycles(paper_ruleset) == []

    def test_cycle_detection(self):
        r_ba = EditingRule("ba", (MatchPair("b", "mb"),), "a", MasterColumn("ma"))
        cycles = derivation_cycles(rs(R_AB, r_ba))
        assert any(set(c) == {"a", "b"} for c in cycles)

    def test_depth_bound_chain(self):
        assert chase_depth_bound(rs(R_KA, R_AB)) == 3  # k -> a -> b

    def test_depth_bound_cyclic_falls_back(self):
        r_ba = EditingRule("ba", (MatchPair("b", "mb"),), "a", MasterColumn("ma"))
        assert chase_depth_bound(rs(R_AB, r_ba)) == len(INPUT)

    def test_self_normalizing_loop_excluded(self, paper_ruleset):
        # phi1 (zip -> zip) is a self-loop; it must not count as a cycle
        assert derivation_cycles(paper_ruleset) == []
