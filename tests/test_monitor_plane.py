"""The cluster monitoring plane: Prometheus exposition, scraper, CLI.

Three layers under test:

* :mod:`repro.obs.promfmt` — conformance to the Prometheus text format
  0.0.4 (a small strict parser lives in this file): name sanitization,
  ``# TYPE`` discipline, counter monotonicity of cumulative buckets.
* :mod:`repro.obs.monitor` — :class:`ClusterMonitor` merge semantics
  against a live replicated cluster, including one replica dying
  mid-scrape; the health rollup must name the dead replica and its
  opened circuit.
* ``cerfix health`` / ``cerfix top`` — exit codes and rendered output.

The cluster fixtures are in-process by default (tier-1 speed); set
``CERFIX_MONITOR_PROCESSES=1`` (the CI obs leg does) to run the
spawned-subprocess variant too.
"""

from __future__ import annotations

import json
import os
import re
import urllib.request

import pytest

from repro.errors import MasterDataError
from repro.explorer import cli
from repro.obs import promfmt
from repro.obs.metrics import BUCKET_BOUNDS_MS, MetricsRegistry
from repro.obs.monitor import (
    ClusterMonitor,
    describe_rollup,
    install_process_gauges,
    render_top,
)
from repro.master.shardserver import ShardCluster
from repro.scenarios import uk_customers as uk

SHARDS = 2
REPLICAS = 2


@pytest.fixture(scope="module")
def world():
    master = uk.generate_master(30, seed=7)
    ruleset = uk.paper_ruleset()
    return master, ruleset


@pytest.fixture()
def cluster(world):
    master, ruleset = world
    cluster = ShardCluster.in_process(ruleset, master, SHARDS, replicas=REPLICAS)
    yield cluster
    cluster.close()


def flat_urls(cluster) -> str:
    return ";".join(",".join(group) for group in cluster.urls)


# ---------------------------------------------------------------------------
# A small, strict text-format parser (the conformance oracle)
# ---------------------------------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^(?P<name>{_NAME})(?P<labels>\{{[^{{}}]*\}})? (?P<value>\S+)$"
)
_TYPE = re.compile(rf"^# TYPE (?P<name>{_NAME}) (?P<kind>counter|gauge|histogram)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str):
    """Parse (strictly) into {family: {"kind", "samples": [(name, labels, value)]}}.

    Enforces what a real Prometheus parser enforces: every sample line
    matches the grammar, every sample is preceded by its family's single
    ``# TYPE`` line, and no family is declared twice.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict[str, dict] = {}
    current: str | None = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            m = _TYPE.match(line)
            assert m, f"malformed comment line: {line!r}"
            name = m.group("name")
            assert name not in families, f"family {name} declared twice"
            families[name] = {"kind": m.group("kind"), "samples": []}
            current = name
            continue
        m = _SAMPLE.match(line)
        assert m, f"malformed sample line: {line!r}"
        name = m.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        assert current == base, f"sample {name} outside its family group ({current})"
        labels = dict(_LABEL.findall(m.group("labels") or ""))
        value = float(m.group("value").replace("+Inf", "inf"))
        families[base]["samples"].append((name, labels, value))
    return families


# ---------------------------------------------------------------------------
# Exposition conformance
# ---------------------------------------------------------------------------


class TestPromfmt:
    def test_name_sanitization(self):
        assert promfmt.sanitize_name("cerfix.remote.failovers") == "cerfix_remote_failovers"
        assert promfmt.sanitize_name("9lives") == "_9lives"
        assert promfmt.sanitize_name("a b/c-d") == "a_b_c_d"
        assert promfmt.sanitize_name("") == "_"
        pattern = re.compile(rf"^{_NAME}$")
        for ugly in ("cerfix.proc.rss_bytes", "1", "-", "x:y", "ü"):
            assert pattern.match(promfmt.sanitize_name(ugly))

    def test_label_escaping(self):
        assert promfmt.escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_counter_total_suffix_and_types(self):
        reg = MetricsRegistry()
        reg.inc("cerfix.shard.probes", 5)
        reg.set_gauge("cerfix.proc.threads", 3)
        families = parse_exposition(promfmt.render(reg.dump()))
        assert families["cerfix_shard_probes_total"]["kind"] == "counter"
        assert families["cerfix_shard_probes_total"]["samples"][0][2] == 5.0
        assert families["cerfix_proc_threads"]["kind"] == "gauge"

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        for seconds in (0.0001, 0.003, 0.003, 0.4, 100.0):
            reg.observe("cerfix.shard.request_seconds", seconds)
        families = parse_exposition(promfmt.render(reg.dump()))
        hist = families["cerfix_shard_request_seconds"]
        assert hist["kind"] == "histogram"
        buckets = [s for s in hist["samples"] if s[0].endswith("_bucket")]
        assert len(buckets) == len(BUCKET_BOUNDS_MS) + 1
        values = [v for _, _, v in buckets]
        assert values == sorted(values), "bucket counts must be cumulative"
        les = [labels["le"] for _, labels, _ in buckets]
        assert les[-1] == "+Inf"
        assert [float(le.replace("+Inf", "inf")) for le in les] == sorted(
            float(le.replace("+Inf", "inf")) for le in les
        )
        count = next(v for n, _, v in hist["samples"] if n.endswith("_count"))
        total = next(v for n, _, v in hist["samples"] if n.endswith("_sum"))
        assert values[-1] == count == 5.0
        # one 100s observation dominates the sum; sum is in seconds
        assert total == pytest.approx(100.41, rel=0.01)

    def test_render_labeled_one_type_line_per_family(self):
        reg = MetricsRegistry()
        reg.inc("cerfix.shard.requests", 2)
        reg.observe("cerfix.shard.request_seconds", 0.01)
        dump = reg.dump()
        text = promfmt.render_labeled(
            [({"shard": "0", "replica": "0"}, dump), ({"shard": "0", "replica": "1"}, dump)]
        )
        families = parse_exposition(text)  # parser enforces grouping itself
        samples = families["cerfix_shard_requests_total"]["samples"]
        assert {s[1]["replica"] for s in samples} == {"0", "1"}
        assert text.count("# TYPE cerfix_shard_request_seconds histogram") == 1

    def test_empty_dump_renders_empty(self):
        assert promfmt.render(MetricsRegistry().dump()) == ""


# ---------------------------------------------------------------------------
# Process self-gauges
# ---------------------------------------------------------------------------


class TestProcessGauges:
    def test_gauges_present_and_sane(self):
        reg = MetricsRegistry()
        install_process_gauges(reg)
        gauges = reg.dump()["gauges"]
        assert gauges["cerfix.proc.rss_bytes"] > 1024 * 1024
        assert gauges["cerfix.proc.open_fds"] >= 1
        assert gauges["cerfix.proc.threads"] >= 1
        assert gauges["cerfix.proc.uptime_seconds"] >= 0
        # lazily evaluated: nothing recorded on the registry until dump
        assert reg.gauge_value("cerfix.proc.rss_bytes") is None

    def test_reinstall_is_idempotent(self):
        reg = MetricsRegistry()
        install_process_gauges(reg)
        install_process_gauges(reg)
        assert sorted(
            name for name in reg.dump()["gauges"] if name.startswith("cerfix.proc.")
        ) == [
            "cerfix.proc.open_fds",
            "cerfix.proc.rss_bytes",
            "cerfix.proc.threads",
            "cerfix.proc.uptime_seconds",
        ]


# ---------------------------------------------------------------------------
# Live scrape surfaces
# ---------------------------------------------------------------------------


class TestScrapeEndpoints:
    def test_shard_server_prometheus_endpoint(self, cluster):
        url = cluster.urls[0][0]
        with urllib.request.urlopen(f"{url}/metrics?format=prometheus") as resp:
            assert resp.headers["Content-Type"].startswith("text/plain; version=0.0.4")
            families = parse_exposition(resp.read().decode("utf-8"))
        assert families["cerfix_shard_requests_total"]["kind"] == "counter"
        assert "cerfix_proc_rss_bytes" in families
        assert "cerfix_shard_request_seconds" in families

    def test_shard_server_json_metrics_include_rates(self, cluster):
        url = cluster.urls[0][0]
        for _ in range(2):  # two scrapes → two snapshots → a real window
            with urllib.request.urlopen(f"{url}/metrics") as resp:
                data = json.loads(resp.read())
        assert data["schema"] == "cerfix.metrics.v1"
        assert data["shard"]["requests"] >= 2
        assert "counters_per_s" in data["rates"]

    def test_counter_monotonic_across_scrapes(self, cluster):
        url = cluster.urls[0][0]

        def requests_total():
            with urllib.request.urlopen(f"{url}/metrics?format=prometheus") as resp:
                families = parse_exposition(resp.read().decode("utf-8"))
            return families["cerfix_shard_requests_total"]["samples"][0][2]

        first = requests_total()
        urllib.request.urlopen(f"{url}/healthz").read()
        second = requests_total()
        assert second > first


# ---------------------------------------------------------------------------
# ClusterMonitor merge + rollup
# ---------------------------------------------------------------------------


class TestClusterMonitor:
    def test_healthy_rollup(self, cluster):
        monitor = ClusterMonitor(cluster.urls, fail_threshold=1)
        snap = monitor.scrape_once()
        rollup = snap["rollup"]
        assert rollup["status"] == "ok"
        assert rollup["replicas_up"] == rollup["replicas_total"] == SHARDS * REPLICAS
        assert rollup["open_circuits"] == []
        assert rollup["digest_agreement"] is True
        # every shard's live digests agree and are non-empty
        for shard, digests in rollup["digests"].items():
            assert len({d for d in digests if d}) == 1

    def test_one_replica_down_mid_scrape(self, cluster):
        monitor = ClusterMonitor(cluster.urls, fail_threshold=1)
        assert monitor.scrape_once()["rollup"]["status"] == "ok"
        dead_url = cluster.urls[1][0]
        cluster.stop(1, 0)
        snap = monitor.scrape_once()
        rollup = snap["rollup"]
        assert rollup["status"] == "degraded"
        assert rollup["replicas_up"] == SHARDS * REPLICAS - 1
        assert [d["url"] for d in rollup["down"]] == [dead_url]
        assert rollup["down"][0]["shard"] == 1
        circuits = [c for c in rollup["open_circuits"] if c["source"] == "monitor"]
        assert [c["url"] for c in circuits] == [dead_url]
        # the healthy members still merged: their dumps are present
        up = [m for m in snap["members"] if m["up"]]
        assert len(up) == 3
        assert all(m["metrics"]["schema"] == "cerfix.metrics.v1" for m in up)
        assert rollup["shards_down"] == []  # replica 1 still covers shard 1

    def test_whole_shard_down_is_down(self, cluster):
        monitor = ClusterMonitor(cluster.urls, fail_threshold=1)
        cluster.stop(1, 0)
        cluster.stop(1, 1)
        rollup = monitor.scrape_once()["rollup"]
        assert rollup["status"] == "down"
        assert rollup["shards_down"] == [1]

    def test_fail_threshold_gates_monitor_circuit(self, cluster):
        monitor = ClusterMonitor(cluster.urls, fail_threshold=2)
        cluster.stop(0, 0)
        first = monitor.scrape_once()["rollup"]
        assert first["status"] == "degraded"
        assert all(c["source"] != "monitor" for c in first["open_circuits"])
        second = monitor.scrape_once()["rollup"]
        assert any(c["source"] == "monitor" for c in second["open_circuits"])

    def test_rates_from_consecutive_scrapes(self, cluster):
        monitor = ClusterMonitor(cluster.urls, fail_threshold=1)
        monitor.scrape_once()
        assert monitor.rates()["window_s"] == 0.0  # one snapshot: no window yet
        # generate some traffic so the deltas are non-zero
        for group in cluster.urls:
            for url in group:
                urllib.request.urlopen(f"{url}/healthz").read()
        monitor.scrape_once()
        monitor._history[0]["ts"] -= 1.0  # widen the window deterministically
        rates = monitor.rates()
        assert rates["window_s"] > 0
        assert rates["requests_per_s"] > 0
        assert set(rates["per_shard"]) == {"0", "1"}
        for shard_rates in rates["per_shard"].values():
            assert shard_rates["p50_ms"] <= shard_rates["p95_ms"] <= shard_rates["p99_ms"]

    def test_bad_topology_rejected(self):
        with pytest.raises(MasterDataError):
            ClusterMonitor("http://127.0.0.1:1")

    def test_describe_and_top_render(self, cluster):
        monitor = ClusterMonitor(cluster.urls, fail_threshold=1)
        cluster.stop(0, 0)
        snap = monitor.scrape_once()
        lines = describe_rollup(snap["rollup"])
        text = "\n".join(lines)
        dead_url = cluster.urls[0][0]
        assert dead_url in text and "DOWN" in text and "CIRCUIT open" in text
        frame = render_top(snap, monitor.rates())
        assert "status: DEGRADED" in frame
        assert dead_url[:28] in frame


# ---------------------------------------------------------------------------
# Operator CLI
# ---------------------------------------------------------------------------


class TestHealthCli:
    def test_health_ok_exit_zero(self, cluster, capsys):
        assert cli.main(["health", "--shard-urls", flat_urls(cluster)]) == 0
        out = capsys.readouterr().out
        assert "cluster status: ok" in out

    def test_health_names_dead_replica_and_circuit(self, cluster, capsys):
        dead_url = cluster.urls[0][1]
        cluster.stop(0, 1)
        assert cli.main(["health", "--shard-urls", flat_urls(cluster)]) == 1
        out = capsys.readouterr().out
        assert dead_url in out
        assert "DOWN" in out
        assert "CIRCUIT open" in out

    def test_health_json_snapshot(self, cluster, capsys):
        assert cli.main(["health", "--shard-urls", flat_urls(cluster), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["schema"] == "cerfix.cluster.v1"
        assert snap["rollup"]["status"] == "ok"

    def test_health_requires_urls(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["health"])

    def test_top_single_frame(self, cluster, capsys):
        rc = cli.main(
            ["top", "--shard-urls", flat_urls(cluster), "--iterations", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cerfix top" in out
        assert f"{SHARDS} shard(s)" in out
        assert "\x1b[2J" not in out  # final frame carries no screen control


# ---------------------------------------------------------------------------
# Spawned-cluster variant (the CI obs leg's scrape-path smoke test)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    os.environ.get("CERFIX_MONITOR_PROCESSES") != "1",
    reason="spawned-cluster scrape smoke runs when CERFIX_MONITOR_PROCESSES=1",
)
def test_spawned_cluster_scrape_and_health(tmp_path, capsys):
    from repro.master.conformance import generate_case, write_case_instance

    case = generate_case(13, master_size=24, n=6)
    instance = write_case_instance(case, tmp_path)
    cluster = ShardCluster.spawn(instance, SHARDS, replicas=REPLICAS)
    try:
        with urllib.request.urlopen(
            f"{cluster.urls[0][0]}/metrics?format=prometheus"
        ) as resp:
            families = parse_exposition(resp.read().decode("utf-8"))
        assert "cerfix_proc_rss_bytes" in families
        assert cli.main(["health", "--shard-urls", flat_urls(cluster)]) == 0
        capsys.readouterr()
        cluster.stop(1, 0)
        assert cli.main(["health", "--shard-urls", flat_urls(cluster)]) == 1
        out = capsys.readouterr().out
        assert cluster.urls[1][0] in out and "CIRCUIT open" in out
    finally:
        cluster.close()
