"""Unit tests for repro.relational.row."""

import pytest

from repro.errors import RelationError
from repro.relational.row import Row
from repro.relational.schema import Schema


@pytest.fixture()
def schema():
    return Schema("r", ["a", "b", "c"])


class TestRowConstruction:
    def test_basic(self, schema):
        r = Row(schema, [1, 2, 3])
        assert r.values == (1, 2, 3)

    def test_arity_mismatch(self, schema):
        with pytest.raises(RelationError, match="arity"):
            Row(schema, [1, 2])

    def test_from_dict(self, schema):
        r = Row.from_dict(schema, {"b": 2, "a": 1, "c": 3})
        assert r.values == (1, 2, 3)

    def test_from_dict_missing_attr(self, schema):
        with pytest.raises(RelationError, match="missing"):
            Row.from_dict(schema, {"a": 1})

    def test_from_dict_ignores_extras(self, schema):
        r = Row.from_dict(schema, {"a": 1, "b": 2, "c": 3, "zz": 9})
        assert r.values == (1, 2, 3)


class TestRowAccess:
    def test_getitem_by_name(self, schema):
        assert Row(schema, [1, 2, 3])["b"] == 2

    def test_getitem_by_position(self, schema):
        assert Row(schema, [1, 2, 3])[0] == 1

    def test_getitem_unknown(self, schema):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            Row(schema, [1, 2, 3])["zz"]

    def test_get_with_default(self, schema):
        r = Row(schema, [1, 2, 3])
        assert r.get("a") == 1
        assert r.get("zz", 42) == 42

    def test_to_dict(self, schema):
        assert Row(schema, [1, 2, 3]).to_dict() == {"a": 1, "b": 2, "c": 3}

    def test_to_dict_is_copy(self, schema):
        r = Row(schema, [1, 2, 3])
        d = r.to_dict()
        d["a"] = 99
        assert r["a"] == 1

    def test_project(self, schema):
        assert Row(schema, [1, 2, 3]).project(["c", "a"]) == (3, 1)

    def test_iter_and_len(self, schema):
        r = Row(schema, [1, 2, 3])
        assert list(r) == [1, 2, 3]
        assert len(r) == 3


class TestRowUpdate:
    def test_with_values(self, schema):
        r = Row(schema, [1, 2, 3]).with_values({"b": 9})
        assert r.values == (1, 9, 3)

    def test_with_values_does_not_mutate(self, schema):
        r = Row(schema, [1, 2, 3])
        r.with_values({"a": 0})
        assert r["a"] == 1

    def test_with_values_unknown_attr(self, schema):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            Row(schema, [1, 2, 3]).with_values({"zz": 1})


class TestRowEquality:
    def test_equal(self, schema):
        assert Row(schema, [1, 2, 3]) == Row(schema, [1, 2, 3])

    def test_unequal_values(self, schema):
        assert Row(schema, [1, 2, 3]) != Row(schema, [1, 2, 4])

    def test_hashable(self, schema):
        assert len({Row(schema, [1, 2, 3]), Row(schema, [1, 2, 3])}) == 1

    def test_not_equal_to_tuple(self, schema):
        assert Row(schema, [1, 2, 3]) != (1, 2, 3)

    def test_repr(self, schema):
        assert "a=1" in repr(Row(schema, [1, 2, 3]))
