"""Remote master store: routing, failure handling, lifecycle, resume.

The conformance kit (``tests/test_conformance.py``) proves the remote
backend bit-identical to the in-process backends; this module pins the
*remote-specific* machinery: the handshake guards, misroute rejection,
retry-with-backoff, shard-down degradation, round-trip amortisation of
``probe_many``, fork/pickle safety, journal resume across a shard
restart, and the subprocess cluster lifecycle the CI leg relies on.
"""

from __future__ import annotations

import json
import pickle

import pytest

import repro.batch.executor as executor_mod
from repro import CerFix
from repro.errors import MasterDataError
from repro.master.conformance import (
    case_cluster,
    generate_case,
    normalize_report,
    store_factories,
    write_case_instance,
)
from repro.master.remote import RemoteMasterStore, fetch_health
from repro.master.shardserver import ShardCluster, ShardServerApp
from repro.master.store import SingleRelationStore, make_store
from repro.relational.relation import Relation
from repro.scenarios import uk_customers as uk

SHARDS = 3


@pytest.fixture(scope="module")
def world():
    master = uk.generate_master(40, seed=41)
    ruleset = uk.paper_ruleset()
    workload = uk.generate_workload(master, 50, rate=0.25, seed=42)
    return master, ruleset, workload


@pytest.fixture(scope="module")
def cluster(world):
    master, ruleset, _ = world
    cluster = ShardCluster.in_process(ruleset, master, SHARDS)
    yield cluster
    cluster.close()


def _probe_requests(world, n=10):
    master, ruleset, workload = world
    rules = [r for r in ruleset if not r.is_constant]
    rows = list(workload.clean.rows())[:n]
    return [(rule, row.to_dict()) for row in rows for rule in rules]


# ---------------------------------------------------------------------------
# Handshake and construction guards
# ---------------------------------------------------------------------------


def test_handshake_rejects_misordered_urls(world, cluster):
    urls = list(cluster.urls)
    urls[0], urls[1] = urls[1], urls[0]
    with pytest.raises(MasterDataError, match="shard-url order mismatch"):
        RemoteMasterStore(urls)


def test_handshake_rejects_wrong_shard_count(world, cluster):
    with pytest.raises(MasterDataError, match="shard-url order mismatch"):
        RemoteMasterStore(cluster.urls[:2])  # servers say shards=3


def test_handshake_rejects_divergent_content(world, cluster, tmp_path):
    master, ruleset, _ = world
    other = uk.generate_master(40, seed=99)
    other_cluster = ShardCluster.in_process(ruleset, other, SHARDS)
    try:
        mixed = [cluster.urls[0], other_cluster.urls[1], cluster.urls[2]]
        with pytest.raises(MasterDataError, match="disagree on master content"):
            RemoteMasterStore(mixed)
        # make_store with a local relation digest-checks the cluster
        with pytest.raises(MasterDataError, match="different master content"):
            make_store(master, "remote", urls=other_cluster.urls)
    finally:
        other_cluster.close()


def test_construction_needs_urls(world):
    master, _, _ = world
    with pytest.raises(MasterDataError, match="needs shard server urls"):
        make_store(master, "remote")
    with pytest.raises(MasterDataError, match="at least one shard url"):
        RemoteMasterStore([])
    with pytest.raises(MasterDataError, match="host and port"):
        RemoteMasterStore(["http://nowhere"])


def test_shard_server_rejects_non_scalar_master(world):
    from repro.relational.schema import Schema

    _, ruleset, _ = world
    bad = Relation(Schema("m", ["a", "b"]), [(("t", "uple"), "x")])
    with pytest.raises(MasterDataError, match="JSON scalar"):
        ShardServerApp(ruleset, bad, 0, 1)


# ---------------------------------------------------------------------------
# Routing and misroutes
# ---------------------------------------------------------------------------


def test_probes_spread_across_shards(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        requests = _probe_requests(world, n=20)
        got = store.probe_many(requests)
        single = SingleRelationStore(world[0])
        assert got == [single.probe(r, v) for r, v in requests]
        per_shard = store.stats()["per_shard"]
        assert sum(s["probes"] for s in per_shard) == len(requests)
        assert sum(1 for s in per_shard if s["probes"]) > 1, "routing never spread"
    finally:
        store.close()


def test_server_rejects_misrouted_probe(world):
    master, ruleset, workload = world
    rules = [r for r in ruleset if not r.is_constant]
    app = ShardServerApp(ruleset, master, 0, SHARDS)
    values = list(workload.clean.rows())[0].to_dict()
    # find a probe that routes elsewhere, send it to shard 0 anyway
    for row in workload.clean.rows():
        values = row.to_dict()
        rule = rules[0]
        if app.store.route(rule, values) != 0:
            break
    status, payload = app.handle(
        "POST",
        "/probe_many",
        {"probes": [{"rule_id": rule.rule_id, "values": values}]},
    )
    assert status == 409
    assert "routes to shard" in payload["error"]
    assert app.misroutes == 1


def test_client_misroute_is_loud_not_wrong(world, cluster, monkeypatch):
    store = RemoteMasterStore(cluster.urls)
    try:
        (rule, values) = _probe_requests(world, n=1)[0]
        right = store.route(rule, values)
        monkeypatch.setattr(
            RemoteMasterStore, "route", lambda self, r, v: (right + 1) % SHARDS
        )
        with pytest.raises(MasterDataError, match="routes to shard"):
            store.probe(rule, values)
    finally:
        store.close()


def test_unknown_rule_is_a_clear_400(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        status_error = None
        try:
            store.endpoints[0].request(
                "POST", "/probe_many",
                {"probes": [{"rule_id": "phantom", "values": {}}]},
            )
        except MasterDataError as exc:
            status_error = str(exc)
        assert status_error and "unknown or constant rule" in status_error
    finally:
        store.close()


# ---------------------------------------------------------------------------
# Failure handling: retries, restarts, dead shards
# ---------------------------------------------------------------------------


def test_transient_5xx_retries_then_succeeds(world):
    master, ruleset, _ = world
    solo = ShardCluster.in_process(ruleset, master, 1)
    try:
        app = solo._members[0]["server"].app
        real = app.handle
        failures = {"left": 2}

        def flaky(method, path, body):
            if path == "/probe_many" and failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("injected shard hiccup")  # -> 500
            return real(method, path, body)

        app.handle = flaky
        store = RemoteMasterStore(solo.urls, retries=3, backoff=0.01)
        (rule, values) = _probe_requests(world, n=1)[0]
        expected = SingleRelationStore(master).probe(rule, values)
        assert store.probe(rule, values) == expected
        stats = store.stats()["per_shard"][0]
        assert stats["retries"] >= 2 and stats["errors"] == 0
        store.close()
    finally:
        solo.close()


def test_shard_restart_mid_probing_heals_via_retry(world, cluster):
    store = RemoteMasterStore(cluster.urls, retries=3, backoff=0.02)
    try:
        (rule, values) = _probe_requests(world, n=1)[0]
        shard_id = store.route(rule, values)
        before = store.probe(rule, values)  # opens the pooled connection
        cluster.restart(shard_id)
        assert store.probe(rule, values) == before
        assert store.stats()["per_shard"][shard_id]["retries"] >= 1
    finally:
        store.close()


def test_dead_shard_is_a_loud_error_not_a_wrong_answer(world):
    master, ruleset, _ = world
    mortal = ShardCluster.in_process(ruleset, master, SHARDS)
    store = RemoteMasterStore(mortal.urls, retries=1, backoff=0.01)
    try:
        requests = _probe_requests(world, n=12)
        by_shard = {}
        for rule, values in requests:
            by_shard.setdefault(store.route(rule, values), (rule, values))
        assert len(by_shard) > 1, "need probes on several shards"
        dead = sorted(by_shard)[0]
        alive = sorted(by_shard)[1]
        mortal.stop(dead)
        # probes routed to the dead shard: loud, naming shard and url
        with pytest.raises(MasterDataError, match=f"shard {dead} .* unreachable"):
            store.probe(*by_shard[dead])
        # probes routed elsewhere keep working
        rule, values = by_shard[alive]
        assert store.probe(rule, values) == SingleRelationStore(master).probe(rule, values)
        assert store.stats()["per_shard"][dead]["errors"] >= 1
    finally:
        store.close()
        mortal.close()


def test_remote_updates_are_refused(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        with pytest.raises(MasterDataError, match="read-only"):
            store.apply_update(add=[{}])
    finally:
        store.close()


# ---------------------------------------------------------------------------
# Round-trip amortisation and the wire lifecycle
# ---------------------------------------------------------------------------


def test_probe_many_amortises_round_trips(world, cluster):
    requests = _probe_requests(world, n=30)
    naive = RemoteMasterStore(cluster.urls)
    batched = RemoteMasterStore(cluster.urls)
    try:
        for rule, values in requests:
            naive.probe(rule, values)
        batched.probe_many(requests)

        def trips(store):
            # subtract the handshake GET per shard
            return sum(s["round_trips"] - 1 for s in store.stats()["per_shard"])

        assert trips(naive) == len(requests)
        assert trips(batched) <= SHARDS  # one POST per shard
        assert trips(batched) < trips(naive) / 5
    finally:
        naive.close()
        batched.close()


def test_relation_fetch_is_lazy_and_digest_checked(world, cluster):
    master, _, _ = world
    store = RemoteMasterStore(cluster.urls)
    try:
        assert store._relation is None  # probing never fetched it
        assert len(store) == len(master)
        assert store.content_digest() == SingleRelationStore(master).content_digest()
        assert store.relation.tuples() == master.tuples()  # lazy fetch
        rule = next(r for r in world[1] if not r.is_constant)
        assert store.ambiguous_keys(rule) == SingleRelationStore(master).ambiguous_keys(rule)
    finally:
        store.close()


def test_pickled_store_reconnects_and_agrees(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        (rule, values) = _probe_requests(world, n=1)[0]
        expected = store.probe(rule, values)
        clone = pickle.loads(pickle.dumps(store))
        try:
            assert clone.probe(rule, values) == expected
            assert clone.content_digest() == store.content_digest()
        finally:
            clone.close()
    finally:
        store.close()


def test_fetch_health_reports_dead_server():
    with pytest.raises(MasterDataError, match="no healthy shard server"):
        fetch_health("http://127.0.0.1:1")


# ---------------------------------------------------------------------------
# Journal resume across a shard restart (the acceptance scenario)
# ---------------------------------------------------------------------------


def test_remote_batch_crash_resume_with_shard_restart(tmp_path, monkeypatch):
    """Kill a remote-backed batch run mid-shard, restart one shard
    server, then resume from the journal: same repaired relation, same
    scheduling-independent report as an uninterrupted run."""
    case = generate_case(2101, scenario="uk")
    journal = tmp_path / "journal.jsonl"
    with case_cluster(case, tmp_path, shards=SHARDS) as cluster:
        def engine():
            return CerFix(
                case.ruleset,
                make_store(
                    Relation(case.master.schema, case.master.tuples()),
                    "remote",
                    urls=cluster.urls,
                ),
            )

        expected = engine().clean_relation(
            case.dirty, case.truth, workers=1, shards=4
        )

        real = executor_mod._run_shard
        calls = {"n": 0}

        def crashing(shard, ctx, base, cache, *memos):
            if calls["n"] >= 2:
                raise RuntimeError("simulated mid-shard kill")
            calls["n"] += 1
            return real(shard, ctx, base, cache, *memos)

        monkeypatch.setattr(executor_mod, "_run_shard", crashing)
        with pytest.raises(RuntimeError, match="simulated mid-shard kill"):
            engine().clean_relation(
                case.dirty, case.truth, workers=1, shards=4, journal_path=journal
            )
        monkeypatch.setattr(executor_mod, "_run_shard", real)
        assert sum(
            1 for line in journal.read_text().splitlines()
            if json.loads(line)["kind"] == "shard"
        ) == 2

        # the "restart": one shard server bounces before the resume
        cluster.restart(1)
        resumed = engine().clean_relation(
            case.dirty, case.truth, workers=1, shards=4, journal_path=journal
        )
        assert resumed.relation.tuples() == expected.relation.tuples()
        assert resumed.report.resumed_shards == 2
        assert normalize_report(resumed.report.to_json()) == normalize_report(
            expected.report.to_json()
        )


# ---------------------------------------------------------------------------
# Subprocess cluster lifecycle (what the CI remote-store leg boots)
# ---------------------------------------------------------------------------


def test_subprocess_cluster_boots_serves_and_dies(world, tmp_path):
    master, ruleset, workload = world
    case = generate_case(2202, scenario="uk", n=8)
    instance = tmp_path / "inst"
    write_case_instance(case, instance)
    cluster = ShardCluster.spawn(instance, SHARDS)
    processes = [m["process"] for m in cluster._members]
    try:
        for i, url in enumerate(cluster.urls):
            health = fetch_health(url)
            assert (health["shard_id"], health["shards"]) == (i, SHARDS)
        factories = store_factories(case, tmp_path, remote_urls=cluster.urls)
        remote, single = factories["remote"](), factories["single"]()
        rules = [r for r in case.ruleset if not r.is_constant]
        requests = [
            (rule, row.to_dict())
            for row in list(case.dirty.rows())[:6]
            for rule in rules
        ]
        assert remote.probe_many(requests) == [
            single.probe(r, v) for r, v in requests
        ]
        # rolling restart of a real process, same port
        cluster.restart(0)
        assert remote.probe_many(requests) == [
            single.probe(r, v) for r, v in requests
        ]
        remote.close()
    finally:
        cluster.close()
    for process in processes:
        assert process.poll() is not None, "cluster.close() left an orphan"


# ---------------------------------------------------------------------------
# Configuration surfaces
# ---------------------------------------------------------------------------


def test_spawn_failure_reports_child_output(tmp_path):
    """A server dying at startup must surface its own error text, not
    just an exit code and a timeout."""
    with pytest.raises(MasterDataError, match="child output") as excinfo:
        ShardCluster.spawn(tmp_path / "no-such-instance", 1, timeout=10)
    assert "no instance document" in str(excinfo.value)


def test_auto_dispatch_never_inlines_remote_probes(world, cluster, monkeypatch):
    """dispatch='auto' must pick the executor for an io_bound store even
    on one core: a blocking network probe (or its retry cycle) on the
    event loop would stall accepts and backpressure."""
    import os as os_mod

    from repro.service.app import AsyncCerFixService

    master, ruleset, _ = world
    monkeypatch.setattr(os_mod, "cpu_count", lambda: 1)
    engine = CerFix(ruleset, master, store="remote", store_urls=list(cluster.urls))
    service = AsyncCerFixService(engine)
    assert service.dispatch_mode == "executor"
    service.close()
    with pytest.raises(ValueError, match="io_bound"):
        AsyncCerFixService(engine, dispatch="inline")  # pinned inline: refuse loudly
    engine.master.store.close()
    local = CerFix(ruleset, master)
    service = AsyncCerFixService(local)
    assert service.dispatch_mode == "inline"  # in-memory stores keep the fast path
    service.close()


def test_instance_document_remote_store_section(world, cluster, tmp_path):
    master, ruleset, _ = world
    from repro.config import InstanceConfig, load_instance, save_instance
    from repro.core.certainty import CertaintyMode

    config = InstanceConfig(
        "uk-remote",
        ruleset.input_schema,
        ruleset.master_schema,
        mode=CertaintyMode.ANCHORED,
        store={"backend": "remote", "urls": list(cluster.urls)},
    )
    save_instance(tmp_path / "inst", config, master, ruleset)
    engine, loaded = load_instance(tmp_path / "inst")
    assert engine.master.store.backend == "remote"
    assert loaded.store["urls"] == list(cluster.urls)
    engine.master.store.close()


def test_instance_document_rejects_bad_remote_section():
    from repro.config import InstanceConfig
    from repro.errors import ValidationError

    base = {
        "name": "x",
        "input_schema": {"name": "i", "attributes": [{"name": "a"}]},
        "master_schema": {"name": "m", "attributes": [{"name": "a"}]},
    }
    for urls in (None, [], ["", "http://ok:1"], "http://not-a-list:1"):
        doc = dict(base, store={"backend": "remote", "urls": urls})
        with pytest.raises(ValidationError, match="'urls'"):
            InstanceConfig.from_json(doc)


def test_cli_remote_flag_validation():
    from repro.explorer.cli import main

    rc = main(
        ["clean", "--scenario", "uk", "--store", "remote", "--input", "/dev/null"]
    )
    assert rc == 2  # "--store remote requires --shard-urls", prettified
