"""Remote master store: routing, failure handling, lifecycle, resume.

The conformance kit (``tests/test_conformance.py``) proves the remote
backend bit-identical to the in-process backends; this module pins the
*remote-specific* machinery: the handshake guards, misroute rejection,
retry-with-backoff, shard-down degradation, round-trip amortisation of
``probe_many``, fork/pickle safety, journal resume across a shard
restart, and the subprocess cluster lifecycle the CI leg relies on.
"""

from __future__ import annotations

import json
import pickle
import time

import pytest

import repro.batch.executor as executor_mod
from repro import CerFix
from repro.errors import MasterDataError
from repro.master.conformance import (
    case_cluster,
    generate_case,
    normalize_report,
    run_failover_conformance,
    store_factories,
    write_case_instance,
)
from repro.master.remote import (
    RemoteMasterStore,
    ShardEndpoint,
    _backoff_delay,
    _normalize_topology,
    fetch_health,
)
from repro.master.shardserver import ShardCluster, ShardServerApp
from repro.master.store import SingleRelationStore, make_store
from repro.relational.relation import Relation
from repro.scenarios import uk_customers as uk

SHARDS = 3
REPLICAS = 2


@pytest.fixture(scope="module")
def world():
    master = uk.generate_master(40, seed=41)
    ruleset = uk.paper_ruleset()
    workload = uk.generate_workload(master, 50, rate=0.25, seed=42)
    return master, ruleset, workload


@pytest.fixture(scope="module")
def cluster(world):
    master, ruleset, _ = world
    cluster = ShardCluster.in_process(ruleset, master, SHARDS)
    yield cluster
    cluster.close()


def _probe_requests(world, n=10):
    master, ruleset, workload = world
    rules = [r for r in ruleset if not r.is_constant]
    rows = list(workload.clean.rows())[:n]
    return [(rule, row.to_dict()) for row in rows for rule in rules]


# ---------------------------------------------------------------------------
# Handshake and construction guards
# ---------------------------------------------------------------------------


def test_handshake_rejects_misordered_urls(world, cluster):
    urls = list(cluster.urls)
    urls[0], urls[1] = urls[1], urls[0]
    with pytest.raises(MasterDataError, match="shard-url order mismatch"):
        RemoteMasterStore(urls)


def test_handshake_rejects_wrong_shard_count(world, cluster):
    with pytest.raises(MasterDataError, match="shard-url order mismatch"):
        RemoteMasterStore(cluster.urls[:2])  # servers say shards=3


def test_handshake_rejects_divergent_content(world, cluster, tmp_path):
    master, ruleset, _ = world
    other = uk.generate_master(40, seed=99)
    other_cluster = ShardCluster.in_process(ruleset, other, SHARDS)
    try:
        mixed = [cluster.urls[0], other_cluster.urls[1], cluster.urls[2]]
        with pytest.raises(MasterDataError, match="disagree on master content"):
            RemoteMasterStore(mixed)
        # make_store with a local relation digest-checks the cluster
        with pytest.raises(MasterDataError, match="different master content"):
            make_store(master, "remote", urls=other_cluster.urls)
    finally:
        other_cluster.close()


def test_construction_needs_urls(world):
    master, _, _ = world
    with pytest.raises(MasterDataError, match="needs shard server urls"):
        make_store(master, "remote")
    with pytest.raises(MasterDataError, match="at least one shard url"):
        RemoteMasterStore([])
    with pytest.raises(MasterDataError, match="host and port"):
        RemoteMasterStore(["http://nowhere"])


def test_shard_server_rejects_non_scalar_master(world):
    from repro.relational.schema import Schema

    _, ruleset, _ = world
    bad = Relation(Schema("m", ["a", "b"]), [(("t", "uple"), "x")])
    with pytest.raises(MasterDataError, match="JSON scalar"):
        ShardServerApp(ruleset, bad, 0, 1)


# ---------------------------------------------------------------------------
# Routing and misroutes
# ---------------------------------------------------------------------------


def test_probes_spread_across_shards(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        requests = _probe_requests(world, n=20)
        got = store.probe_many(requests)
        single = SingleRelationStore(world[0])
        assert got == [single.probe(r, v) for r, v in requests]
        per_shard = store.stats()["per_shard"]
        assert sum(s["probes"] for s in per_shard) == len(requests)
        assert sum(1 for s in per_shard if s["probes"]) > 1, "routing never spread"
    finally:
        store.close()


def test_server_rejects_misrouted_probe(world):
    master, ruleset, workload = world
    rules = [r for r in ruleset if not r.is_constant]
    app = ShardServerApp(ruleset, master, 0, SHARDS)
    values = list(workload.clean.rows())[0].to_dict()
    # find a probe that routes elsewhere, send it to shard 0 anyway
    for row in workload.clean.rows():
        values = row.to_dict()
        rule = rules[0]
        if app.store.route(rule, values) != 0:
            break
    status, payload = app.handle(
        "POST",
        "/probe_many",
        {"probes": [{"rule_id": rule.rule_id, "values": values}]},
    )
    assert status == 409
    assert "routes to shard" in payload["error"]
    assert app.misroutes == 1


def test_client_misroute_is_loud_not_wrong(world, cluster, monkeypatch):
    store = RemoteMasterStore(cluster.urls)
    try:
        (rule, values) = _probe_requests(world, n=1)[0]
        right = store.route(rule, values)
        monkeypatch.setattr(
            RemoteMasterStore, "route", lambda self, r, v: (right + 1) % SHARDS
        )
        with pytest.raises(MasterDataError, match="routes to shard"):
            store.probe(rule, values)
    finally:
        store.close()


def test_unknown_rule_is_a_clear_400(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        status_error = None
        try:
            store.groups[0].request(
                "POST", "/probe_many",
                {"probes": [{"rule_id": "phantom", "values": {}}]},
            )
        except MasterDataError as exc:
            status_error = str(exc)
        assert status_error and "unknown or constant rule" in status_error
    finally:
        store.close()


# ---------------------------------------------------------------------------
# Failure handling: retries, restarts, dead shards
# ---------------------------------------------------------------------------


def test_transient_5xx_retries_then_succeeds(world):
    master, ruleset, _ = world
    solo = ShardCluster.in_process(ruleset, master, 1)
    try:
        app = solo._members[0]["server"].app
        real = app.handle
        failures = {"left": 2}

        def flaky(method, path, body):
            if path == "/probe_many" and failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("injected shard hiccup")  # -> 500
            return real(method, path, body)

        app.handle = flaky
        store = RemoteMasterStore(solo.urls, retries=3, backoff=0.01)
        (rule, values) = _probe_requests(world, n=1)[0]
        expected = SingleRelationStore(master).probe(rule, values)
        assert store.probe(rule, values) == expected
        stats = store.stats()["per_shard"][0]
        assert stats["retries"] >= 2 and stats["errors"] == 0
        store.close()
    finally:
        solo.close()


def test_shard_restart_mid_probing_heals_via_retry(world, cluster):
    store = RemoteMasterStore(cluster.urls, retries=3, backoff=0.02)
    try:
        (rule, values) = _probe_requests(world, n=1)[0]
        shard_id = store.route(rule, values)
        before = store.probe(rule, values)  # opens the pooled connection
        cluster.restart(shard_id)
        assert store.probe(rule, values) == before
        assert store.stats()["per_shard"][shard_id]["retries"] >= 1
    finally:
        store.close()


def test_dead_shard_is_a_loud_error_not_a_wrong_answer(world):
    master, ruleset, _ = world
    mortal = ShardCluster.in_process(ruleset, master, SHARDS)
    store = RemoteMasterStore(mortal.urls, retries=1, backoff=0.01)
    try:
        requests = _probe_requests(world, n=12)
        by_shard = {}
        for rule, values in requests:
            by_shard.setdefault(store.route(rule, values), (rule, values))
        assert len(by_shard) > 1, "need probes on several shards"
        dead = sorted(by_shard)[0]
        alive = sorted(by_shard)[1]
        mortal.stop(dead)
        # probes routed to the dead shard: loud, naming shard and url
        with pytest.raises(MasterDataError, match=f"shard {dead} .* unreachable"):
            store.probe(*by_shard[dead])
        # probes routed elsewhere keep working
        rule, values = by_shard[alive]
        assert store.probe(rule, values) == SingleRelationStore(master).probe(rule, values)
        assert store.stats()["per_shard"][dead]["errors"] >= 1
    finally:
        store.close()
        mortal.close()


def test_remote_updates_are_refused(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        with pytest.raises(MasterDataError, match="read-only"):
            store.apply_update(add=[{}])
    finally:
        store.close()


# ---------------------------------------------------------------------------
# Round-trip amortisation and the wire lifecycle
# ---------------------------------------------------------------------------


def test_probe_many_amortises_round_trips(world, cluster):
    requests = _probe_requests(world, n=30)
    naive = RemoteMasterStore(cluster.urls)
    batched = RemoteMasterStore(cluster.urls)
    try:
        for rule, values in requests:
            naive.probe(rule, values)
        batched.probe_many(requests)

        def trips(store):
            # subtract the handshake GET per shard
            return sum(s["round_trips"] - 1 for s in store.stats()["per_shard"])

        assert trips(naive) == len(requests)
        assert trips(batched) <= SHARDS  # one POST per shard
        assert trips(batched) < trips(naive) / 5
    finally:
        naive.close()
        batched.close()


def test_relation_fetch_is_lazy_and_digest_checked(world, cluster):
    master, _, _ = world
    store = RemoteMasterStore(cluster.urls)
    try:
        assert store._relation is None  # probing never fetched it
        assert len(store) == len(master)
        assert store.content_digest() == SingleRelationStore(master).content_digest()
        assert store.relation.tuples() == master.tuples()  # lazy fetch
        rule = next(r for r in world[1] if not r.is_constant)
        assert store.ambiguous_keys(rule) == SingleRelationStore(master).ambiguous_keys(rule)
    finally:
        store.close()


def test_pickled_store_reconnects_and_agrees(world, cluster):
    store = RemoteMasterStore(cluster.urls)
    try:
        (rule, values) = _probe_requests(world, n=1)[0]
        expected = store.probe(rule, values)
        clone = pickle.loads(pickle.dumps(store))
        try:
            assert clone.probe(rule, values) == expected
            assert clone.content_digest() == store.content_digest()
        finally:
            clone.close()
    finally:
        store.close()


def test_fetch_health_reports_dead_server():
    with pytest.raises(MasterDataError, match="no healthy shard server"):
        fetch_health("http://127.0.0.1:1")


# ---------------------------------------------------------------------------
# Journal resume across a shard restart (the acceptance scenario)
# ---------------------------------------------------------------------------


def test_remote_batch_crash_resume_with_shard_restart(tmp_path, monkeypatch):
    """Kill a remote-backed batch run mid-shard, restart one shard
    server, then resume from the journal: same repaired relation, same
    scheduling-independent report as an uninterrupted run."""
    case = generate_case(2101, scenario="uk")
    journal = tmp_path / "journal.jsonl"
    with case_cluster(case, tmp_path, shards=SHARDS) as cluster:
        def engine():
            return CerFix(
                case.ruleset,
                make_store(
                    Relation(case.master.schema, case.master.tuples()),
                    "remote",
                    urls=cluster.urls,
                ),
            )

        expected = engine().clean_relation(
            case.dirty, case.truth, workers=1, shards=4
        )

        real = executor_mod._run_shard
        calls = {"n": 0}

        def crashing(shard, ctx, base, cache, *memos):
            if calls["n"] >= 2:
                raise RuntimeError("simulated mid-shard kill")
            calls["n"] += 1
            return real(shard, ctx, base, cache, *memos)

        monkeypatch.setattr(executor_mod, "_run_shard", crashing)
        with pytest.raises(RuntimeError, match="simulated mid-shard kill"):
            engine().clean_relation(
                case.dirty, case.truth, workers=1, shards=4, journal_path=journal
            )
        monkeypatch.setattr(executor_mod, "_run_shard", real)
        assert sum(
            1 for line in journal.read_text().splitlines()
            if json.loads(line)["kind"] == "shard"
        ) == 2

        # the "restart": one shard server bounces before the resume
        cluster.restart(1)
        resumed = engine().clean_relation(
            case.dirty, case.truth, workers=1, shards=4, journal_path=journal
        )
        assert resumed.relation.tuples() == expected.relation.tuples()
        assert resumed.report.resumed_shards == 2
        assert normalize_report(resumed.report.to_json()) == normalize_report(
            expected.report.to_json()
        )


# ---------------------------------------------------------------------------
# Subprocess cluster lifecycle (what the CI remote-store leg boots)
# ---------------------------------------------------------------------------


def test_subprocess_cluster_boots_serves_and_dies(world, tmp_path):
    master, ruleset, workload = world
    case = generate_case(2202, scenario="uk", n=8)
    instance = tmp_path / "inst"
    write_case_instance(case, instance)
    cluster = ShardCluster.spawn(instance, SHARDS)
    processes = [m["process"] for m in cluster._members]
    try:
        for i, url in enumerate(cluster.urls):
            health = fetch_health(url)
            assert (health["shard_id"], health["shards"]) == (i, SHARDS)
        factories = store_factories(case, tmp_path, remote_urls=cluster.urls)
        remote, single = factories["remote"](), factories["single"]()
        rules = [r for r in case.ruleset if not r.is_constant]
        requests = [
            (rule, row.to_dict())
            for row in list(case.dirty.rows())[:6]
            for rule in rules
        ]
        assert remote.probe_many(requests) == [
            single.probe(r, v) for r, v in requests
        ]
        # rolling restart of a real process, same port
        cluster.restart(0)
        assert remote.probe_many(requests) == [
            single.probe(r, v) for r, v in requests
        ]
        remote.close()
    finally:
        cluster.close()
    for process in processes:
        assert process.poll() is not None, "cluster.close() left an orphan"


# ---------------------------------------------------------------------------
# Configuration surfaces
# ---------------------------------------------------------------------------


def test_spawn_failure_reports_child_output(tmp_path):
    """A server dying at startup must surface its own error text, not
    just an exit code and a timeout."""
    with pytest.raises(MasterDataError, match="child output") as excinfo:
        ShardCluster.spawn(tmp_path / "no-such-instance", 1, timeout=10)
    assert "no instance document" in str(excinfo.value)


def test_auto_dispatch_never_inlines_remote_probes(world, cluster, monkeypatch):
    """dispatch='auto' must pick the executor for an io_bound store even
    on one core: a blocking network probe (or its retry cycle) on the
    event loop would stall accepts and backpressure."""
    import os as os_mod

    from repro.service.app import AsyncCerFixService

    master, ruleset, _ = world
    monkeypatch.setattr(os_mod, "cpu_count", lambda: 1)
    engine = CerFix(ruleset, master, store="remote", store_urls=list(cluster.urls))
    service = AsyncCerFixService(engine)
    assert service.dispatch_mode == "executor"
    service.close()
    with pytest.raises(ValueError, match="io_bound"):
        AsyncCerFixService(engine, dispatch="inline")  # pinned inline: refuse loudly
    engine.master.store.close()
    local = CerFix(ruleset, master)
    service = AsyncCerFixService(local)
    assert service.dispatch_mode == "inline"  # in-memory stores keep the fast path
    service.close()


def test_instance_document_remote_store_section(world, cluster, tmp_path):
    master, ruleset, _ = world
    from repro.config import InstanceConfig, load_instance, save_instance
    from repro.core.certainty import CertaintyMode

    config = InstanceConfig(
        "uk-remote",
        ruleset.input_schema,
        ruleset.master_schema,
        mode=CertaintyMode.ANCHORED,
        store={"backend": "remote", "urls": list(cluster.urls)},
    )
    save_instance(tmp_path / "inst", config, master, ruleset)
    engine, loaded = load_instance(tmp_path / "inst")
    assert engine.master.store.backend == "remote"
    assert loaded.store["urls"] == list(cluster.urls)
    engine.master.store.close()


def test_instance_document_rejects_bad_remote_section():
    from repro.config import InstanceConfig
    from repro.errors import ValidationError

    base = {
        "name": "x",
        "input_schema": {"name": "i", "attributes": [{"name": "a"}]},
        "master_schema": {"name": "m", "attributes": [{"name": "a"}]},
    }
    for urls in (None, [], ["", "http://ok:1"], "http://not-a-list:1"):
        doc = dict(base, store={"backend": "remote", "urls": urls})
        with pytest.raises(ValidationError, match="'urls'"):
            InstanceConfig.from_json(doc)


def test_cli_remote_flag_validation():
    from repro.explorer.cli import main

    rc = main(
        ["clean", "--scenario", "uk", "--store", "remote", "--input", "/dev/null"]
    )
    assert rc == 2  # "--store remote requires --shard-urls", prettified


def test_cli_shard_urls_parses_replica_groups():
    from types import SimpleNamespace

    from repro.explorer.cli import _parse_shard_urls

    flat = _parse_shard_urls(SimpleNamespace(shard_urls="h:1, h:2 ,h:3"))
    assert flat == ["h:1", "h:2", "h:3"]
    nested = _parse_shard_urls(SimpleNamespace(shard_urls="h:1,h:2; h:3 ,h:4"))
    assert nested == [["h:1", "h:2"], ["h:3", "h:4"]]
    assert _parse_shard_urls(SimpleNamespace(shard_urls="")) is None


def test_topology_normalisation_accepts_mixed_forms():
    got = _normalize_topology(["http://a:1", ["http://b:2", "http://c:3/"]])
    assert got == (("http://a:1",), ("http://b:2", "http://c:3"))
    with pytest.raises(MasterDataError, match="single string"):
        _normalize_topology("http://a:1")
    with pytest.raises(MasterDataError, match="at least one url"):
        _normalize_topology([[]])


def test_instance_document_accepts_replica_url_lists():
    from repro.config import InstanceConfig
    from repro.errors import ValidationError

    base = {
        "name": "x",
        "input_schema": {"name": "i", "attributes": [{"name": "a"}]},
        "master_schema": {"name": "m", "attributes": [{"name": "a"}]},
    }
    nested = [["http://a:1", "http://b:2"], "http://c:3"]
    config = InstanceConfig.from_json(
        dict(base, store={"backend": "remote", "urls": nested})
    )
    assert config.store["urls"] == nested
    for urls in ([[]], [["http://a:1"], []], [[""]], [["http://a:1", 7]]):
        with pytest.raises(ValidationError, match="'urls'"):
            InstanceConfig.from_json(
                dict(base, store={"backend": "remote", "urls": urls})
            )


# ---------------------------------------------------------------------------
# Retry-path details: jitter, failure kinds, error accounting
# ---------------------------------------------------------------------------


def test_backoff_jitter_is_decorrelated_and_bounded():
    base, cap = 0.05, 0.8
    delay, seen = 0.0, set()
    for _ in range(200):
        delay = _backoff_delay(base, delay, cap)
        assert base <= delay <= cap
        seen.add(round(delay, 9))
    assert len(seen) > 20, "no jitter: delays repeat deterministically"


def test_exhausted_5xx_reports_server_error_not_unreachable(world):
    """A shard that *answers* — with a 5xx every time — must not be
    reported as 'unreachable': the operator's next move differs."""
    master, ruleset, _ = world
    solo = ShardCluster.in_process(ruleset, master, 1)
    store = RemoteMasterStore(solo.urls, retries=1, backoff=0.01)
    try:
        app = solo._members[0]["server"].app

        def always_fail(method, path, body):
            raise RuntimeError("injected permanent failure")  # handler -> 500

        app.handle = always_fail
        with pytest.raises(MasterDataError, match="5xx answer on every one of 2"):
            store.probe(*_probe_requests(world, n=1)[0])
        assert store.stats()["per_shard"][0]["errors"] >= 1
    finally:
        store.close()
        solo.close()


def test_4xx_detail_is_decoded_text_and_counted(world):
    master, ruleset, _ = world
    solo = ShardCluster.in_process(ruleset, master, 1)
    store = RemoteMasterStore(solo.urls)
    try:
        app = solo._members[0]["server"].app
        # a non-dict JSON body: the detail must come out as text, never
        # as a bytes repr leaking b'...' into the user-facing error
        app.handle = lambda method, path, body: (418, "short and stout")
        with pytest.raises(MasterDataError, match="short and stout") as excinfo:
            store.probe(*_probe_requests(world, n=1)[0])
        assert "b'" not in str(excinfo.value)
        assert store.stats()["per_shard"][0]["errors"] == 1
    finally:
        store.close()
        solo.close()


# ---------------------------------------------------------------------------
# Replication: rotation, failover, circuit breaking
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def replicated(world):
    master, ruleset, _ = world
    cluster = ShardCluster.in_process(ruleset, master, SHARDS, replicas=REPLICAS)
    yield cluster
    cluster.close()


def test_replicated_topology_parity_and_read_spread(world, replicated):
    urls = replicated.urls
    assert all(isinstance(group, list) and len(group) == REPLICAS for group in urls)
    store = RemoteMasterStore(urls)
    try:
        requests = _probe_requests(world, n=20)
        single = SingleRelationStore(world[0])
        expected = [single.probe(r, v) for r, v in requests]
        for _ in range(3):
            assert store.probe_many(requests) == expected
        per_shard = store.stats()["per_shard"]
        assert sum(s["probes"] for s in per_shard) == 3 * len(requests)
        # healthy replicas rotate the read load — for busy shards both
        # replicas end up serving probes, not just the primary
        spread = [[r["probes"] for r in s["replicas"]] for s in per_shard]
        assert any(all(served > 0 for served in shard) for shard in spread), spread
    finally:
        store.close()


def test_replica_killed_mid_run_fails_over_bit_identically(world):
    master, ruleset, _ = world
    cluster = ShardCluster.in_process(ruleset, master, SHARDS, replicas=REPLICAS)
    store = RemoteMasterStore(cluster.urls, retries=1, backoff=0.01)
    try:
        requests = _probe_requests(world, n=20)
        single = SingleRelationStore(master)
        expected = [single.probe(r, v) for r, v in requests]
        assert store.probe_many(requests) == expected  # warm pooled conns
        for shard in range(SHARDS):
            cluster.stop(shard, 1)  # kill one replica of every shard
        # two sweeps: rotation guarantees the dead replica leads the
        # candidate order at least once per shard — forcing a failover
        assert store.probe_many(requests) == expected
        assert store.probe_many(requests) == expected
        stats = store.stats()
        assert sum(s["failovers"] for s in stats["per_shard"]) >= 1
    finally:
        store.close()
        cluster.close()


def test_circuit_opens_and_half_opens_on_schedule():
    endpoint = ShardEndpoint(
        0,
        "http://127.0.0.1:9",
        stats_token="circuit-schedule-test",
        circuit_threshold=2,
        circuit_reset=0.15,
    )
    assert endpoint.circuit_state() == "closed"
    endpoint.note_failure()
    assert endpoint.circuit_state() == "closed"  # below threshold
    endpoint.note_failure()
    assert endpoint.circuit_state() == "open"
    assert endpoint.stats()["circuit_opens"] == 1
    assert not endpoint.claim_half_open_probe()  # window not elapsed yet
    time.sleep(0.2)
    assert endpoint.circuit_state() == "half-open"
    assert endpoint.claim_half_open_probe()  # exactly one claimant...
    assert not endpoint.claim_half_open_probe()  # ...window re-armed
    endpoint.note_failure()  # the re-probe failed: open again, counted once
    assert endpoint.circuit_state() == "open"
    assert endpoint.stats()["circuit_opens"] == 1
    time.sleep(0.2)
    assert endpoint.claim_half_open_probe()
    endpoint.note_success()  # the re-probe succeeded: fully closed
    assert endpoint.circuit_state() == "closed"
    assert endpoint.stats()["circuit"] == "closed"


def test_circuit_parks_dead_replica_after_threshold(world):
    master, ruleset, _ = world
    cluster = ShardCluster.in_process(ruleset, master, 1, replicas=REPLICAS)
    store = RemoteMasterStore(
        cluster.urls, retries=0, backoff=0.01, circuit_threshold=2, circuit_reset=60.0
    )
    try:
        rule, values = _probe_requests(world, n=1)[0]
        cluster.stop(0, 0)
        for _ in range(6):
            store.probe(rule, values)
        dead, alive = store.stats()["per_shard"][0]["replicas"]
        assert dead["circuit"] == "open"
        assert alive["circuit"] == "closed" and alive["probes"] == 6
        # after circuit_threshold failures the dead replica is parked —
        # later probes stop re-dialing it, so failovers stay bounded
        assert dead["failovers"] == 2
    finally:
        store.close()
        cluster.close()


def test_all_replicas_dead_is_loud_and_names_every_url(world):
    master, ruleset, _ = world
    cluster = ShardCluster.in_process(ruleset, master, 1, replicas=REPLICAS)
    urls = list(cluster.urls[0])
    store = RemoteMasterStore(cluster.urls, retries=0, backoff=0.01)
    try:
        rule, values = _probe_requests(world, n=1)[0]
        cluster.stop(0, 0)
        cluster.stop(0, 1)
        with pytest.raises(MasterDataError, match="no reachable replica") as excinfo:
            store.probe(rule, values)
        for url in urls:
            assert url in str(excinfo.value), f"error does not name {url}"
    finally:
        store.close()
        cluster.close()


def test_stale_replica_rejected_at_handshake(world, cluster):
    """A replica serving *yesterday's* master must be refused loudly at
    construction — failover would otherwise consult it silently."""
    master, ruleset, _ = world
    stale_master = uk.generate_master(40, seed=77)
    stale = ShardCluster.in_process(ruleset, stale_master, SHARDS)
    try:
        urls = [
            [cluster.urls[i], stale.urls[i]] if i == 1 else [cluster.urls[i]]
            for i in range(SHARDS)
        ]
        with pytest.raises(MasterDataError, match="disagree on master content"):
            RemoteMasterStore(urls)
    finally:
        stale.close()


def test_replicated_store_pickles_with_topology(world, replicated):
    store = RemoteMasterStore(replicated.urls)
    try:
        rule, values = _probe_requests(world, n=1)[0]
        expected = store.probe(rule, values)
        clone = pickle.loads(pickle.dumps(store))
        try:
            assert clone.replica_urls == store.replica_urls
            assert clone.probe(rule, values) == expected
        finally:
            clone.close()
    finally:
        store.close()


# ---------------------------------------------------------------------------
# Chaos conformance: kills and rolling restarts under a live batch clean
# ---------------------------------------------------------------------------


def test_failover_conformance_replica_killed_mid_run(tmp_path):
    """A replica dying while a batch clean is probing: zero wrong
    answers, bit-identical to the single-backend run."""
    case = generate_case(2303, scenario="uk")
    with case_cluster(case, tmp_path, shards=SHARDS, replicas=REPLICAS) as cluster:
        outcome = run_failover_conformance(
            case, cluster, disrupt=lambda c: c.stop(1, 0), delay=0.03
        )
    assert outcome.fixed_rows


def test_failover_conformance_rolling_restart_under_live_traffic(tmp_path):
    """Every member bounced one at a time while the clean runs — the
    zero-downtime deployment shape — with bit-identical output."""
    case = generate_case(2404, scenario="uk")
    with case_cluster(case, tmp_path, shards=SHARDS, replicas=REPLICAS) as cluster:
        run_failover_conformance(
            case,
            cluster,
            disrupt=lambda c: c.rolling_restart(pause=0.02),
            delay=0.03,
        )
