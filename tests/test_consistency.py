"""Unit tests for the rule-engine static analysis (consistency)."""


from repro.core.consistency import (
    check_consistency,
    differential_order_test,
    find_ambiguities,
    find_pairwise_conflicts,
)
from repro.core.pattern import Eq, PatternTuple
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema

INPUT = Schema("t", ["k", "j", "a", "b"])
MASTER = Schema("m", ["mk", "mj", "ma", "mb"])


def manager(rows):
    return MasterDataManager(Relation(MASTER, rows))


def rs(*rules):
    return RuleSet(rules, INPUT, MASTER)


R_KA = EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma"))
R_JA = EditingRule("ja", (MatchPair("j", "mj"),), "a", MasterColumn("ma"))


class TestAmbiguities:
    def test_detected(self):
        m = manager([("k1", "j1", "A1", "B1"), ("k1", "j2", "A2", "B2")])
        amb = find_ambiguities(rs(R_KA), m)
        assert len(amb) == 1
        assert amb[0].rule_id == "ka"
        assert amb[0].key == ("k1",)
        assert set(amb[0].values) == {"A1", "A2"}

    def test_consistent_duplicates_ok(self):
        m = manager([("k1", "j1", "A1", "B1"), ("k1", "j2", "A1", "B2")])
        assert find_ambiguities(rs(R_KA), m) == []

    def test_describe(self):
        m = manager([("k1", "j1", "A1", "B1"), ("k1", "j2", "A2", "B2")])
        assert "never fires" in find_ambiguities(rs(R_KA), m)[0].describe()


class TestPairwiseConflicts:
    def test_same_entity_conflict_master_vs_constant(self):
        # constant rule says a:='FIXED' when k=k1; master rule says a:=A1
        const = EditingRule("c", (), "a", Constant("FIXED"), PatternTuple({"k": Eq("k1")}))
        m = manager([("k1", "j1", "A1", "B1")])
        conflicts, cross, checked, exhaustive = find_pairwise_conflicts(rs(R_KA, const), m)
        assert exhaustive
        assert len(conflicts) == 1
        assert conflicts[0].same_entity
        assert {conflicts[0].value1, conflicts[0].value2} == {"A1", "FIXED"}

    def test_cross_entity_classified(self):
        # two master rules keyed on different attrs disagree across tuples
        m = manager([("k1", "j1", "A1", "B1"), ("k2", "j2", "A2", "B2")])
        conflicts, cross, _, _ = find_pairwise_conflicts(rs(R_KA, R_JA), m)
        assert conflicts == []
        assert len(cross) == 1
        assert not cross[0].same_entity

    def test_same_entity_agreement_is_fine(self):
        m = manager([("k1", "j1", "A1", "B1")])
        conflicts, cross, _, _ = find_pairwise_conflicts(rs(R_KA, R_JA), m)
        assert conflicts == []

    def test_contradictory_patterns_skip_pair(self):
        r1 = EditingRule("r1", (MatchPair("k", "mk"),), "a", MasterColumn("ma"),
                         PatternTuple({"b": Eq("1")}))
        r2 = EditingRule("r2", (MatchPair("j", "mj"),), "a", MasterColumn("ma"),
                         PatternTuple({"b": Eq("2")}))
        m = manager([("k1", "j1", "A1", "B1"), ("k2", "j2", "A2", "B2")])
        conflicts, cross, _, _ = find_pairwise_conflicts(rs(r1, r2), m)
        assert conflicts == [] and cross == []

    def test_uniqueness_gate_respected(self):
        # rule ka is ambiguous on k1 (two values) so it cannot co-fire
        m = manager([("k1", "j1", "A1", "B1"), ("k1", "j2", "A2", "B2")])
        const = EditingRule("c", (), "a", Constant("X"), PatternTuple({"k": Eq("k1")}))
        conflicts, cross, _, _ = find_pairwise_conflicts(rs(R_KA, const), m)
        assert conflicts == []

    def test_budget_marks_non_exhaustive(self):
        m = manager([("k1", "j1", "A1", "B1"), ("k2", "j2", "A2", "B2")])
        _, _, checked, exhaustive = find_pairwise_conflicts(
            rs(R_KA, R_JA), m, pair_budget=1
        )
        assert not exhaustive

    def test_constant_constant_conflict(self):
        c1 = EditingRule("c1", (), "a", Constant("X"), PatternTuple({"k": Eq("k1")}))
        c2 = EditingRule("c2", (), "a", Constant("Y"), PatternTuple({"b": Eq("1")}))
        m = manager([("k1", "j1", "A1", "B1")])
        conflicts, _, _, _ = find_pairwise_conflicts(rs(c1, c2), m)
        assert len(conflicts) == 1
        assert conflicts[0].same_entity


class TestDifferentialOrder:
    def test_consistent_rules_no_divergence(self, paper_ruleset, paper_manager):
        div, checked = differential_order_test(paper_ruleset, paper_manager, samples=30)
        assert div == []
        assert checked > 0

    def test_small_ruleset_no_divergence(self):
        m = manager([("k1", "j1", "A1", "B1")])
        div, _ = differential_order_test(rs(R_KA, R_JA), m, samples=20)
        assert div == []


class TestCheckConsistency:
    def test_paper_rules_consistent(self, paper_ruleset, paper_manager):
        report = check_consistency(paper_ruleset, paper_manager, samples=20)
        assert report.is_consistent
        assert report.conflicts == ()
        # the four zip-vs-(AC,phn) warnings are cross-entity by design
        assert len(report.cross_entity_conflicts) == 4
        assert report.ambiguities == ()

    def test_extended_rules_consistent(self, extended_ruleset, paper_manager):
        report = check_consistency(extended_ruleset, paper_manager, samples=20)
        assert report.is_consistent

    def test_inconsistent_detected(self):
        const = EditingRule("c", (), "a", Constant("FIXED"), PatternTuple({"k": Eq("k1")}))
        m = manager([("k1", "j1", "A1", "B1")])
        report = check_consistency(rs(R_KA, const), m, samples=10)
        assert not report.is_consistent
        assert len(report.conflicts) == 1

    def test_describe_mentions_tiers(self, paper_ruleset, paper_manager):
        report = check_consistency(paper_ruleset, paper_manager, samples=5)
        text = report.describe()
        assert "cross-entity" in text
        assert "consistent: True" in text

    def test_hospital_rules_consistent(self, hospital_ruleset, hospital_master):
        report = check_consistency(
            hospital_ruleset, MasterDataManager(hospital_master), samples=10
        )
        assert report.is_consistent
        assert report.ambiguities == ()
