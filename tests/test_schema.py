"""Unit tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, Schema


class TestAttribute:
    def test_defaults(self):
        a = Attribute("zip")
        assert a.dtype == "str"
        assert a.description == ""

    def test_explicit_dtype(self):
        assert Attribute("n", "int").dtype == "int"

    def test_rejects_unknown_dtype(self):
        with pytest.raises(SchemaError, match="unknown dtype"):
            Attribute("n", "float")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_non_string_name(self):
        with pytest.raises(SchemaError):
            Attribute(3)  # type: ignore[arg-type]

    def test_frozen(self):
        a = Attribute("zip")
        with pytest.raises(AttributeError):
            a.name = "other"  # type: ignore[misc]


class TestSchema:
    def test_names_in_order(self):
        s = Schema("r", ["b", "a", "c"])
        assert s.names == ("b", "a", "c")

    def test_accepts_attribute_objects(self):
        s = Schema("r", [Attribute("a", "int"), "b"])
        assert s.attribute("a").dtype == "int"
        assert s.attribute("b").dtype == "str"

    def test_position(self):
        s = Schema("r", ["a", "b", "c"])
        assert s.position("c") == 2

    def test_position_unknown_raises(self):
        s = Schema("r", ["a"])
        with pytest.raises(SchemaError, match="has no attribute 'x'"):
            s.position("x")

    def test_contains(self):
        s = Schema("r", ["a", "b"])
        assert "a" in s
        assert "z" not in s

    def test_len_and_iter(self):
        s = Schema("r", ["a", "b", "c"])
        assert len(s) == 3
        assert [a.name for a in s] == ["a", "b", "c"]

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema("r", ["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", [])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("", ["a"])

    def test_require_passes_through(self):
        s = Schema("r", ["a", "b"])
        assert s.require(["b", "a"]) == ("b", "a")

    def test_require_unknown_raises(self):
        s = Schema("r", ["a"])
        with pytest.raises(SchemaError):
            s.require(["a", "zz"])

    def test_project_order_and_name(self):
        s = Schema("r", ["a", "b", "c"])
        p = s.project(["c", "a"])
        assert p.names == ("c", "a")
        assert "r" in p.name

    def test_project_custom_name(self):
        s = Schema("r", ["a", "b"])
        assert s.project(["a"], name="q").name == "q"

    def test_project_unknown_raises(self):
        s = Schema("r", ["a"])
        with pytest.raises(SchemaError):
            s.project(["zz"])

    def test_extend(self):
        s = Schema("r", ["a"]).extend(["b", Attribute("c", "int")])
        assert s.names == ("a", "b", "c")
        assert s.attribute("c").dtype == "int"

    def test_extend_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", ["a"]).extend(["a"])

    def test_equality_and_hash(self):
        s1 = Schema("r", ["a", "b"])
        s2 = Schema("r", ["a", "b"])
        s3 = Schema("r", ["a", "c"])
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3

    def test_equality_other_type(self):
        assert Schema("r", ["a"]) != "r"

    def test_repr_mentions_names(self):
        assert "'a'" in repr(Schema("r", ["a"]))
