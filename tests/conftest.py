"""Shared fixtures and property-test generators.

Fixtures cover the paper scenario in various sizes; the Hypothesis
strategies at the bottom generate arbitrary master relations, editing
rules and probe keys for the store-parity property tests
(``tests/test_store_parity.py``) — values are drawn from a small,
collision-prone alphabet so normalised keys overlap, buckets carry
duplicates, and ambiguous correction values actually occur.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro import CerFix, CertaintyMode
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.master import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.scenarios import hospital, uk_customers as uk


@pytest.fixture(scope="session")
def paper_master():
    return uk.paper_master()


@pytest.fixture(scope="session")
def paper_ruleset():
    return uk.paper_ruleset()


@pytest.fixture(scope="session")
def extended_ruleset():
    return uk.paper_ruleset(extended=True)


@pytest.fixture(scope="session")
def paper_manager(paper_master):
    return MasterDataManager(paper_master)


@pytest.fixture(scope="session")
def uk_master_100():
    return uk.generate_master(100, seed=11)


@pytest.fixture(scope="session")
def uk_workload(uk_master_100):
    return uk.generate_workload(uk_master_100, 120, rate=0.25, seed=12)


@pytest.fixture()
def paper_engine(paper_ruleset, paper_master):
    return CerFix(
        paper_ruleset,
        paper_master,
        mode=CertaintyMode.SCENARIO,
        scenario=uk.scenario_tuples(paper_master),
    )


@pytest.fixture(scope="session")
def hospital_master():
    return hospital.generate_master(40, seed=3)


@pytest.fixture(scope="session")
def hospital_ruleset():
    return hospital.hospital_ruleset()


# ---------------------------------------------------------------------------
# Hypothesis strategies for the store-parity property tests
# ---------------------------------------------------------------------------

#: Deliberately collision-prone: pairs that normalise together under
#: casefold / digits / alnum / collapse_spaces, plus empties and typos.
PROBE_VALUE_ALPHABET = (
    "EH8 4AH", "eh84ah", "EH84AH", "DH1 3LE", "dh13le",
    "0791724858", "0791 724 858", "131", "191",
    "Mike", "mike", "M.", "Dur", "Durham", "durham ",
    "", " ", "20 Baker St", "20 baker st",
)

MATCH_OPS = ("exact", "casefold", "digits", "alnum", "collapse_spaces")

#: Fixed probe-test schema: two key columns, one correction column.
PROBE_MASTER_SCHEMA = Schema("pm", ["k0", "k1", "v"])


def probe_values() -> st.SearchStrategy[str]:
    return st.sampled_from(PROBE_VALUE_ALPHABET)


def master_relations(min_rows: int = 0, max_rows: int = 24) -> st.SearchStrategy[Relation]:
    """Master relations over :data:`PROBE_MASTER_SCHEMA` with heavy key
    collision (so shard buckets, duplicates and ambiguity all occur)."""
    row = st.tuples(probe_values(), probe_values(), probe_values())
    return st.lists(row, min_size=min_rows, max_size=max_rows).map(
        lambda rows: Relation(PROBE_MASTER_SCHEMA, rows)
    )


def probe_rules() -> st.SearchStrategy[EditingRule]:
    """Editing rules over the probe schema: 1 or 2 match pairs, each
    with an arbitrary match operator, correcting column ``v``."""

    def build(ops: list[str]) -> EditingRule:
        match = tuple(
            MatchPair(f"a{i}", f"k{i}", op) for i, op in enumerate(ops)
        )
        return EditingRule("pr", match, "b", MasterColumn("v"))

    return st.lists(st.sampled_from(MATCH_OPS), min_size=1, max_size=2).map(build)


@st.composite
def probe_cases(draw) -> tuple[Relation, EditingRule, dict[str, str]]:
    """(master relation, rule, probe values) for one differential probe.

    Probe keys are biased toward values that exist in the master so
    hits are common, but arbitrary alphabet values (guaranteed misses,
    normalisation collisions) are drawn too.
    """
    master = draw(master_relations())
    rule = draw(probe_rules())
    values: dict[str, str] = {}
    for i, attr in enumerate(rule.lhs_attrs):
        if len(master) and draw(st.booleans()):
            pos = draw(st.integers(0, len(master) - 1))
            values[attr] = master.tuples()[pos][i]
        else:
            values[attr] = draw(probe_values())
    return master, rule, values
