"""Shared fixtures: the paper scenario in various sizes."""

from __future__ import annotations

import pytest

from repro import CerFix, CertaintyMode
from repro.master import MasterDataManager
from repro.scenarios import hospital, uk_customers as uk


@pytest.fixture(scope="session")
def paper_master():
    return uk.paper_master()


@pytest.fixture(scope="session")
def paper_ruleset():
    return uk.paper_ruleset()


@pytest.fixture(scope="session")
def extended_ruleset():
    return uk.paper_ruleset(extended=True)


@pytest.fixture(scope="session")
def paper_manager(paper_master):
    return MasterDataManager(paper_master)


@pytest.fixture(scope="session")
def uk_master_100():
    return uk.generate_master(100, seed=11)


@pytest.fixture(scope="session")
def uk_workload(uk_master_100):
    return uk.generate_workload(uk_master_100, 120, rate=0.25, seed=12)


@pytest.fixture()
def paper_engine(paper_ruleset, paper_master):
    return CerFix(
        paper_ruleset,
        paper_master,
        mode=CertaintyMode.SCENARIO,
        scenario=uk.scenario_tuples(paper_master),
    )


@pytest.fixture(scope="session")
def hospital_master():
    return hospital.generate_master(40, seed=3)


@pytest.fixture(scope="session")
def hospital_ruleset():
    return hospital.hospital_ruleset()
