"""Property-based tests for region certainty — the core soundness claim.

If the region finder certifies ``(Z, Tc)``, then *every* tuple matching
``Tc`` whose ``Z`` attributes are validated must chase to a complete,
conflict-free fix. We generate random master relations and rule sets,
run the finder, then try to falsify its output with randomly sampled
matching tuples (including out-of-partition values).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.certainty import CertaintyMode, fresh, value_partition
from repro.core.chase import chase
from repro.core.inference import mandatory_attributes
from repro.core.pattern import Eq, PatternTuple
from repro.core.region_finder import find_certain_regions
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema

INPUT = Schema("t", ["k", "j", "a", "b"])
MASTER = Schema("m", ["mk", "mj", "ma", "mb"])

cells = st.sampled_from(["v1", "v2", "v3"])


@st.composite
def worlds(draw):
    """(master manager, ruleset) with key-determined columns."""
    n = draw(st.integers(min_value=1, max_value=5))
    rows = []
    for i in range(n):
        rows.append((f"k{i}", f"j{i}", draw(cells), draw(cells)))
    master = MasterDataManager(Relation(MASTER, rows))
    rules = [
        EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma")),
        EditingRule("kb", (MatchPair("k", "mk"),), "b", MasterColumn("mb")),
    ]
    if draw(st.booleans()):
        rules.append(EditingRule("ja", (MatchPair("j", "mj"),), "a", MasterColumn("ma")))
    if draw(st.booleans()):
        rules.append(
            EditingRule("const_b", (), "b", Constant("CB"),
                        PatternTuple({"j": Eq("j0")}))
        )
    return master, RuleSet(rules, INPUT, MASTER)


def _sample_matching_tuples(region, ruleset, master, rnd):
    """Random full tuples matching the region tableau, with values drawn
    from the partition plus out-of-partition strings."""
    partition = value_partition(ruleset, master, extra_patterns=region.tableau)
    out = []
    for pattern in region.tableau:
        for _ in range(3):
            values = {}
            for attr in ruleset.input_schema.names:
                cond = pattern.condition(attr)
                pool = list(partition.get(attr, ())) + [f"junk{rnd.randrange(99)}", fresh(attr)]
                allowed = cond.allowed(pool)
                if not allowed:
                    break
                values[attr] = rnd.choice(allowed)
            else:
                out.append(values)
    return out


class TestRegionSoundness:
    @given(worlds(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_certified_regions_cannot_be_falsified(self, world, rnd):
        master, ruleset = world
        regions = find_certain_regions(ruleset, master, k=4, max_combos=50_000)
        for ranked in regions:
            region = ranked.region
            for values in _sample_matching_tuples(region, ruleset, master, rnd):
                result = chase(values, region.attrs, ruleset, master)
                assert result.is_complete, (region.render(), values)
                assert not result.conflicts

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_regions_contain_mandatory_attributes(self, world):
        master, ruleset = world
        mandatory = mandatory_attributes(ruleset)
        for ranked in find_certain_regions(ruleset, master, k=4, max_combos=50_000):
            assert mandatory <= frozenset(ranked.region.attrs)

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_ranking_is_ascending_by_size(self, world):
        master, ruleset = world
        regions = find_certain_regions(ruleset, master, k=6, max_combos=50_000)
        sizes = [r.region.size for r in regions]
        assert sizes == sorted(sizes)

    @given(worlds())
    @settings(max_examples=30, deadline=None)
    def test_anchored_regions_hold_on_master_induced_tuples(self, world):
        """ANCHORED-certified regions must at least fix every tuple whose
        region values come verbatim from one master tuple."""
        master, ruleset = world
        regions = find_certain_regions(
            ruleset, master, k=3, mode=CertaintyMode.ANCHORED, max_combos=50_000
        )
        corr = {"k": "mk", "j": "mj", "a": "ma", "b": "mb"}
        for ranked in regions:
            region = ranked.region
            for s in master.relation.rows():
                values = {attr: s[corr[attr]] for attr in ruleset.input_schema.names}
                if not region.matches(values):
                    continue
                result = chase(values, region.attrs, ruleset, master)
                assert result.is_complete, (region.render(), values)
