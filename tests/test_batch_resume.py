"""Checkpoint journal: crash-safe resume of interrupted batch runs."""

from __future__ import annotations

import json

import pytest

from repro import CerFix
from repro.batch import CheckpointJournal
import repro.batch.executor as executor_mod
from repro.scenarios import uk_customers as uk


@pytest.fixture(scope="module")
def workload():
    master = uk.generate_master(20, seed=41)
    wl = uk.generate_workload(master, 40, rate=0.25, seed=42)
    return master, wl


def _engine(master):
    return CerFix(uk.paper_ruleset(), master)


def test_resume_after_simulated_crash(workload, tmp_path, monkeypatch):
    master, wl = workload
    journal = tmp_path / "journal.jsonl"
    expected = _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4
    )

    # Crash the worker after two shards have been journaled.
    real = executor_mod._run_shard
    calls = {"n": 0}

    def crashing(shard, ctx, base, cache, *memos):
        if calls["n"] >= 2:
            raise RuntimeError("simulated mid-run crash")
        calls["n"] += 1
        return real(shard, ctx, base, cache, *memos)

    monkeypatch.setattr(executor_mod, "_run_shard", crashing)
    with pytest.raises(RuntimeError, match="simulated mid-run crash"):
        _engine(master).clean_relation(
            wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
        )
    monkeypatch.setattr(executor_mod, "_run_shard", real)

    lines = [json.loads(l) for l in journal.read_text().splitlines()]
    assert lines[0]["kind"] == "header"
    assert sum(1 for l in lines if l["kind"] == "shard") == 2

    resumed = _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )
    assert resumed.relation.tuples() == expected.relation.tuples()
    assert resumed.report.resumed_shards == 2
    assert resumed.report.executed_shards == 2
    # resumed shards keep their recorded accounting
    assert resumed.report.completed == expected.report.completed
    assert resumed.report.user_cells == expected.report.user_cells


def test_complete_journal_skips_all_work(workload, tmp_path, monkeypatch):
    master, wl = workload
    journal = tmp_path / "journal.jsonl"
    first = _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )

    def exploding(*args, **kwargs):
        raise AssertionError("no shard should execute on a complete journal")

    monkeypatch.setattr(executor_mod, "_run_shard", exploding)
    second = _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )
    assert second.relation.tuples() == first.relation.tuples()
    assert second.report.resumed_shards == 4
    assert second.report.executed_shards == 0


def test_stale_journal_is_discarded(workload, tmp_path):
    master, wl = workload
    journal = tmp_path / "journal.jsonl"
    _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )
    # A different workload fingerprints differently: full rerun, no leakage.
    other = uk.generate_workload(master, 40, rate=0.25, seed=99)
    fresh = _engine(master).clean_relation(
        other.dirty, other.clean, workers=1, shards=4
    )
    resumed = _engine(master).clean_relation(
        other.dirty, other.clean, workers=1, shards=4, journal_path=journal
    )
    assert resumed.relation.tuples() == fresh.relation.tuples()
    assert resumed.report.resumed_shards == 0


def test_journal_discarded_when_master_content_changes(workload, tmp_path):
    """Same master cardinality, different content -> different fingerprint.
    A checkpoint computed against old master data must never be resumed."""
    master, wl = workload
    journal = tmp_path / "journal.jsonl"
    _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )
    altered = uk.generate_master(20, seed=77)  # same row count, other people
    assert len(altered) == len(master)
    resumed = CerFix(uk.paper_ruleset(), altered).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )
    assert resumed.report.resumed_shards == 0


def test_torn_tail_line_is_dropped(workload, tmp_path):
    master, wl = workload
    journal = tmp_path / "journal.jsonl"
    _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )
    text = journal.read_text()
    journal.write_text(text + '{"kind": "shard", "shard_id": 99, "trunc')  # torn write
    resumed = _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=4, journal_path=journal
    )
    assert resumed.report.resumed_shards == 4


def test_journal_roundtrip_preserves_shard_results(workload, tmp_path):
    master, wl = workload
    journal_path = tmp_path / "journal.jsonl"
    result = _engine(master).clean_relation(
        wl.dirty, wl.clean, workers=1, shards=2, journal_path=journal_path
    )
    # Re-derive the fingerprint the pipeline used and load what it wrote.
    lines = [json.loads(l) for l in journal_path.read_text().splitlines()]
    fingerprint = lines[0]["fingerprint"]
    done = CheckpointJournal(journal_path).load(fingerprint)
    assert sorted(done) == [0, 1]
    assert all(r.resumed for r in done.values())
    assert sum(r.tuples for r in done.values()) == result.report.tuples


def test_record_before_open_raises(tmp_path):
    journal = CheckpointJournal(tmp_path / "j.jsonl")
    from repro.batch.executor import ShardResult

    with pytest.raises(RuntimeError):
        journal.record(ShardResult(shard_id=0, outcomes=()))
