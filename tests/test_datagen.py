"""Unit tests for the workload generators."""

import random

import pytest

from repro.datagen.inject import ErrorInjector
from repro.datagen.noise import (
    NOISE_OPS,
    abbreviate,
    blank,
    case_mangle,
    digit_noise,
    typo_drop,
    typo_insert,
    typo_replace,
    typo_swap,
)
from repro.datagen.pools import (
    TOLL_FREE_AC,
    UK_REGIONS,
    region_for_ac,
    region_for_city,
)
from repro.errors import ValidationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture()
def rng():
    return random.Random(42)


class TestPools:
    def test_regions_unique_acs_and_cities(self):
        acs = [r.ac for r in UK_REGIONS]
        cities = [r.city for r in UK_REGIONS]
        assert len(set(acs)) == len(acs)
        assert len(set(cities)) == len(cities)

    def test_toll_free_not_a_region(self):
        with pytest.raises(ValidationError):
            region_for_ac(TOLL_FREE_AC)

    def test_lookup_by_ac_and_city(self):
        r = region_for_ac("131")
        assert r.city == "Edi"
        assert region_for_city("Edi") is r

    def test_every_region_has_districts(self):
        assert all(r.districts for r in UK_REGIONS)


class TestNoiseOps:
    def test_typo_replace_changes_one_char(self, rng):
        out = typo_replace("079172485", rng)
        assert out != "079172485"
        assert len(out) == 9
        assert sum(a != b for a, b in zip(out, "079172485")) == 1

    def test_typo_replace_preserves_char_class(self, rng):
        for _ in range(20):
            out = typo_replace("abc123", rng)
            assert out.isalnum()

    def test_typo_swap(self, rng):
        out = typo_swap("ab", rng)
        assert out == "ba"

    def test_typo_swap_too_short(self, rng):
        assert typo_swap("a", rng) == "a"

    def test_typo_drop(self, rng):
        assert len(typo_drop("abcd", rng)) == 3

    def test_typo_insert(self, rng):
        assert len(typo_insert("abcd", rng)) == 5

    def test_abbreviate(self, rng):
        assert abbreviate("Mark", rng) == "M."
        assert abbreviate("robert", rng) == "R."

    def test_case_mangle(self, rng):
        assert case_mangle("EH8 4AH", rng) == "eh8 4ah"

    def test_digit_noise_only_touches_digits(self, rng):
        out = digit_noise("AC-020", rng)
        assert out[:3] == "AC-"
        assert out != "AC-020"

    def test_digit_noise_no_digits_noop(self, rng):
        assert digit_noise("abc", rng) == "abc"

    def test_blank(self, rng):
        assert blank("anything", rng) == ""

    def test_registry_complete(self):
        assert set(NOISE_OPS) >= {
            "typo_replace", "typo_swap", "typo_drop", "typo_insert",
            "abbreviate", "case_mangle", "digit_noise", "blank",
        }


class TestErrorInjector:
    SCHEMA = Schema("r", ["name", "phone"])

    def _clean(self, n=50):
        return Relation(self.SCHEMA, [(f"Name{i}", f"07{i:09d}") for i in range(n)])

    def test_rate_zero_no_errors(self):
        injector = ErrorInjector({"name": [("blank", blank)]}, rate=0.0)
        report = injector.inject(self._clean())
        assert report.errors == []
        assert report.dirty.tuples() == report.clean.tuples()

    def test_rate_bounds_checked(self):
        with pytest.raises(ValidationError):
            ErrorInjector({}, rate=1.5)

    def test_every_error_recorded_correctly(self):
        injector = ErrorInjector(
            {"name": [("typo_replace", typo_replace)],
             "phone": [("digit_noise", digit_noise)]},
            rate=0.5, seed=7,
        )
        report = injector.inject(self._clean())
        assert report.errors  # at ~50% some cells must corrupt
        for e in report.errors:
            assert report.clean.row(e.position)[e.attr] == e.clean
            assert report.dirty.row(e.position)[e.attr] == e.dirty
            assert e.clean != e.dirty

    def test_untouched_cells_identical(self):
        injector = ErrorInjector({"name": [("blank", blank)]}, rate=0.3, seed=1)
        report = injector.inject(self._clean())
        corrupted = report.error_positions()
        for pos, (d, c) in enumerate(zip(report.dirty.rows(), report.clean.rows())):
            for attr in self.SCHEMA.names:
                if (pos, attr) not in corrupted:
                    assert d[attr] == c[attr]

    def test_deterministic_given_seed(self):
        injector1 = ErrorInjector({"name": [("typo_replace", typo_replace)]}, rate=0.4, seed=9)
        injector2 = ErrorInjector({"name": [("typo_replace", typo_replace)]}, rate=0.4, seed=9)
        r1 = injector1.inject(self._clean())
        r2 = injector2.inject(self._clean())
        assert r1.dirty.tuples() == r2.dirty.tuples()

    def test_max_errors_per_tuple(self):
        injector = ErrorInjector(
            {"name": [("blank", blank)], "phone": [("blank", blank)]},
            rate=1.0, max_errors_per_tuple=1,
        )
        report = injector.inject(self._clean(10))
        by_pos = {}
        for e in report.errors:
            by_pos[e.position] = by_pos.get(e.position, 0) + 1
        assert all(v == 1 for v in by_pos.values())

    def test_unknown_attr_rejected(self):
        injector = ErrorInjector({"nope": [("blank", blank)]}, rate=0.5)
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            injector.inject(self._clean())

    def test_errors_by_attr(self):
        injector = ErrorInjector({"name": [("blank", blank)]}, rate=1.0)
        report = injector.inject(self._clean(5))
        assert report.errors_by_attr() == {"name": 5}
