"""CLI tests for the instance (init) and web-serve entry points."""

import pytest

from repro.config import load_instance
from repro.explorer.cli import build_parser, main
from repro.scenarios import uk_customers as uk


class TestInitCommand:
    def test_init_uk_paper_data(self, tmp_path, capsys):
        out = tmp_path / "inst"
        assert main(["init", "--scenario", "uk", "--out", str(out)]) == 0
        assert (out / "instance.json").exists()
        engine, config = load_instance(out)
        assert config.name == "uk-customers"
        assert len(engine.master) == 2  # the paper tuples
        assert len(engine.ruleset) == 9

    def test_init_generated_master(self, tmp_path):
        out = tmp_path / "inst"
        assert main(["init", "--scenario", "uk", "--master-size", "30",
                     "--out", str(out)]) == 0
        engine, _ = load_instance(out)
        assert len(engine.master) == 32  # paper 2 + generated 30

    def test_init_hospital(self, tmp_path):
        out = tmp_path / "inst"
        assert main(["init", "--scenario", "hospital", "--master-size", "25",
                     "--out", str(out)]) == 0
        engine, config = load_instance(out)
        assert config.name == "hospital"
        assert len(engine.master) == 25
        assert len(engine.ruleset) > 100

    def test_initialized_instance_fixes(self, tmp_path):
        out = tmp_path / "inst"
        main(["init", "--scenario", "uk", "--out", str(out)])
        engine, _ = load_instance(out)
        truth = uk.fig3_truth()
        session = engine.session(uk.fig3_tuple(), "t")
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        session.validate({"zip": truth["zip"]})
        assert session.fixed_values() == truth


class TestServeParser:
    def test_parser_accepts_serve(self):
        args = build_parser().parse_args(["serve", "--scenario", "uk", "--port", "0"])
        assert args.command == "serve"
        assert args.port == 0

    def test_parser_accepts_instance_flag(self, tmp_path):
        args = build_parser().parse_args(["serve", "--instance", str(tmp_path)])
        assert args.instance == str(tmp_path)

    @pytest.mark.parametrize(
        "flags",
        [["--store", "sharded"], ["--store-shards", "16"], ["--store-path", "m.db"]],
    )
    def test_store_flags_conflict_with_instance(self, tmp_path, capsys, flags):
        """--instance configures the backend in the document; any explicit
        --store flag must be rejected, not silently ignored."""
        rc = main(["serve", "--instance", str(tmp_path), *flags])
        assert rc == 2
        assert "--store flags conflict with --instance" in capsys.readouterr().err
