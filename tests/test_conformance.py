"""The store-conformance kit, run over all four backends.

This is the registration point the ROADMAP follow-up asked for: the
``single``, ``sharded``, ``sqlite`` and ``remote`` backends all run
through :func:`repro.master.conformance.run_conformance` — monitor
path, batch path, async-service path and the interleaving fuzz — and
must stay bit-identical to the ``single`` reference.

The remote backend runs against an in-process thread cluster by
default (fast); the CI ``remote-store`` leg sets
``CERFIX_REMOTE_PROCESSES=1`` to boot real ``cerfix shard-server``
subprocesses instead, and ``CERFIX_REMOTE_REPLICAS=2`` to boot that
many replicas per shard (the whole kit then runs through the
replicated failover client). Every cluster is torn down on test exit
so no server process leaks into later CI steps.
"""

from __future__ import annotations

import os

import pytest

from repro.master.conformance import (
    case_cluster,
    generate_case,
    run_conformance,
    run_failover_conformance,
    store_factories,
)

#: CI's remote-store leg flips these to exercise real subprocess
#: servers and replicated shard groups.
REMOTE_PROCESSES = os.environ.get("CERFIX_REMOTE_PROCESSES", "") == "1"
REMOTE_REPLICAS = max(1, int(os.environ.get("CERFIX_REMOTE_REPLICAS", "1") or "1"))
SHARDS = 3
ALL_BACKENDS = {"single", "sharded", "sqlite", "remote"}


@pytest.mark.parametrize(
    "seed,scenario,n,paths",
    [
        (1101, "uk", 24, ("monitor", "batch", "service")),
        (1202, "hospital", 10, ("monitor", "batch")),
    ],
)
def test_all_backends_conform(seed, scenario, n, paths, tmp_path):
    """Monitor, batch and service paths: identical fixes, regions and
    audit trails on every backend, remote included."""
    case = generate_case(seed, scenario=scenario, n=n)
    with case_cluster(
        case, tmp_path, shards=SHARDS, replicas=REMOTE_REPLICAS, processes=REMOTE_PROCESSES
    ) as cluster:
        factories = store_factories(
            case, tmp_path, shards=SHARDS, remote_urls=cluster.urls
        )
        results = run_conformance(case, factories, paths=paths)
    for path in paths:
        assert set(results[path]) >= ALL_BACKENDS, path
    # sanity: the case exercised the master data, not just normalisation
    assert any(
        e["source"] == "rule" for e in results["monitor"]["single"].audit_events
    )


def test_all_backends_interleaving_fuzz(tmp_path):
    """Seeded random interleavings of non-oracle sessions: per-tuple
    outcomes identical across every backend *and* every order."""
    case = generate_case(1303, scenario="uk", n=16)
    with case_cluster(
        case, tmp_path, shards=SHARDS, replicas=REMOTE_REPLICAS, processes=REMOTE_PROCESSES
    ) as cluster:
        factories = store_factories(
            case, tmp_path, shards=SHARDS, remote_urls=cluster.urls
        )
        results = run_conformance(case, factories, paths=("interleaved",))
    outcomes = results["interleaved"]
    assert {name.split("/")[0] for name in outcomes} == ALL_BACKENDS
    reference = next(iter(outcomes.values()))
    assert 0 < reference.report["completed"] <= reference.report["tuples"]


def test_remote_rolling_restart_mid_run_conformance(tmp_path):
    """The CI matrix point's acceptance scenario: a replicated cluster
    rolled member by member *while* a batch clean runs against it —
    bit-identical to the single backend, zero wrong answers."""
    case = generate_case(1707, scenario="uk", n=20)
    replicas = max(2, REMOTE_REPLICAS)
    with case_cluster(
        case, tmp_path, shards=SHARDS, replicas=replicas, processes=REMOTE_PROCESSES
    ) as cluster:
        run_failover_conformance(
            case,
            cluster,
            disrupt=lambda c: c.rolling_restart(pause=0.02),
            delay=0.03,
        )


def test_kit_rejects_unknown_paths_and_reference(tmp_path):
    case = generate_case(1404, scenario="uk", n=4)
    factories = store_factories(case, tmp_path)
    with pytest.raises(ValueError, match="unknown conformance paths"):
        run_conformance(case, factories, paths=("monitor", "websocket"))
    with pytest.raises(ValueError, match="not registered"):
        run_conformance(case, factories, reference="remote")


def test_kit_catches_a_divergent_backend(tmp_path):
    """The kit must *fail* when a backend lies — a conformance suite
    that cannot catch a wrong value proves nothing."""
    from repro.master.store import MasterMatch, SingleRelationStore

    class LyingStore(SingleRelationStore):
        def probe(self, rule, values, *, use_index=True):
            match = super().probe(rule, values, use_index=use_index)
            if match.values:  # corrupt the correction value
                return MasterMatch(match.positions, ("wrong",) + match.values[1:])
            return match

    case = generate_case(1505, scenario="uk", n=8)
    factories = store_factories(case, tmp_path)
    factories["lying"] = lambda: LyingStore(
        type(case.master)(case.master.schema, case.master.tuples())
    )
    with pytest.raises(AssertionError):
        run_conformance(case, factories, paths=("monitor",))
