"""Integration tests: full pipelines across modules, mirroring the demo."""


from repro import CerFix, OracleUser, Relation, RuleSet, SuggestionStrategy, parse_rules
from repro.audit.stats import attribute_stats, overall_stats
from repro.baselines.cfd_repair import GreedyCFDRepair
from repro.baselines.quality import evaluate_repair
from repro.monitor.user import CautiousUser, SelectiveUser
from repro.relational.csvio import read_csv, write_csv
from repro.scenarios import hospital, uk_customers as uk


class TestFig3EndToEnd:
    """The complete Fig. 3 demonstration, step by step."""

    def test_walkthrough(self, paper_engine):
        session = paper_engine.session(uk.fig3_tuple(), "fig3")
        truth = uk.fig3_truth()

        # Fig. 3(a): initial suggestion highlights AC, phn, type, item.
        s1 = session.suggestion()
        assert s1.attrs == ("AC", "phn", "type", "item")

        # The user enters 201 / 075568485 / mobile / DVD.
        r1 = session.validate({a: truth[a] for a in s1.attrs})

        # Fig. 3(b): FN, LN and city now validated by CerFix.
        assert {"FN", "LN", "city"} <= set(r1.newly_validated)
        assert session.current_values()["FN"] == "Mark"  # 'M.' normalised

        # Fig. 3(b): CerFix suggests validating zip.
        s2 = session.suggestion()
        assert s2.attrs == ("zip",)

        # Fig. 3(c): after two rounds, everything is green.
        session.validate({"zip": truth["zip"]})
        assert session.is_complete
        assert session.round_no == 2
        assert session.fixed_values() == truth

        # Data auditing: the FN cell traces to phi4 and master tuple 2.
        events = [e for e in session.audit.by_tuple("fig3") if e.attr == "FN"]
        assert events[0].rule_id == "phi4"
        assert events[0].master_positions == (1,)

    def test_walkthrough_with_region_strategy(self, paper_engine):
        paper_engine.precompute_regions(k=3)
        session = paper_engine.session(
            uk.fig3_tuple(), "fig3r", strategy=SuggestionStrategy.REGION
        )
        assert session.run(OracleUser(uk.fig3_truth()))
        # the region strategy asks for the whole region up front: one round
        assert session.round_no == 1

    def test_walkthrough_with_semantic_strategy(self, paper_engine):
        session = paper_engine.session(
            uk.fig3_tuple(), "fig3s", strategy=SuggestionStrategy.SEMANTIC
        )
        assert session.run(OracleUser(uk.fig3_truth()))
        assert session.round_no == 1


class TestExample1EndToEnd:
    """Example 1/2: constraint repair vs certain fixes, side by side."""

    def test_cfd_detects_but_misrepairs(self):
        dirty = Relation(uk.INPUT_SCHEMA, [uk.example1_tuple()])
        truth = Relation(uk.INPUT_SCHEMA, [uk.example1_truth()])
        repaired, _ = GreedyCFDRepair(uk.paper_cfds()).repair(dirty)
        quality = evaluate_repair(dirty, repaired, truth)
        assert quality.new_errors == 1  # city Edi -> Ldn: the paper's point
        assert quality.errors_fixed == 0

    def test_cerfix_fixes_ac_from_zip(self, paper_master):
        engine = CerFix(uk.paper_ruleset(extended=True), paper_master)
        session = engine.session(uk.example1_tuple(), "ex1")
        session.assure(["zip", "phn", "type", "item"])
        assert session.is_complete
        fixed = session.fixed_values()
        assert fixed["AC"] == "131"      # corrected
        assert fixed["city"] == "Edi"    # untouched (was correct)
        assert fixed["FN"] == "Robert"   # normalised from 'Bob' via phi4


class TestCSVPipeline:
    """generate -> CSV -> load -> stream -> audit -> quality."""

    def test_full_pipeline(self, tmp_path, uk_master_100):
        workload = uk.generate_workload(uk_master_100, 40, rate=0.3, seed=21)
        master_csv = tmp_path / "master.csv"
        dirty_csv = tmp_path / "dirty.csv"
        truth_csv = tmp_path / "truth.csv"
        write_csv(uk_master_100, master_csv)
        write_csv(workload.dirty, dirty_csv)
        write_csv(workload.clean, truth_csv)

        master = read_csv(master_csv, schema=uk.MASTER_SCHEMA)
        dirty = read_csv(dirty_csv, schema=uk.INPUT_SCHEMA)
        truth = read_csv(truth_csv, schema=uk.INPUT_SCHEMA)

        engine = CerFix(uk.paper_ruleset(), master)
        report = engine.stream(dirty, truth)
        assert report.completed == 40

        # reconstruct the fixed relation from sessions and compare to truth
        fixed = Relation(uk.INPUT_SCHEMA)
        for i, row in enumerate(dirty.rows()):
            values = row.to_dict()
            for event in engine.audit.by_tuple(f"t{i}"):
                values[event.attr] = event.new
            fixed.append(values)
        quality = evaluate_repair(dirty, fixed, truth)
        assert quality.new_errors == 0
        assert quality.recall == 1.0
        assert quality.precision == 1.0

    def test_audit_stats_shape(self, uk_master_100):
        workload = uk.generate_workload(uk_master_100, 30, rate=0.2, seed=31)
        engine = CerFix(uk.paper_ruleset(), uk_master_100)
        engine.stream(workload.dirty, workload.clean)
        stats = attribute_stats(engine.audit, attrs=uk.INPUT_SCHEMA.names)
        by_attr = {s.attr: s for s in stats}
        # mandatory attrs are always user-validated
        for attr in ("AC", "phn", "type", "item"):
            assert by_attr[attr].pct_user == 100.0
        # str and city are always machine-fixed (phi2/phi6 and phi3/phi7/phi9
        # cover both phone types); FN/LN/zip are machine-fixed only on the
        # type=2 / type=1 paths respectively, so they are mixed.
        for attr in ("str", "city"):
            assert by_attr[attr].pct_auto == 100.0
        for attr in ("FN", "LN", "zip"):
            assert 0.0 < by_attr[attr].pct_auto < 100.0
        overall = overall_stats(engine.audit)
        assert overall.tuples == 30
        assert 0.4 < overall.user_share < 0.8


class TestRuleFileWorkflow:
    """Author rules as text, parse, validate, run — the rule-manager path."""

    RULES = """
    # reduced UK rule file
    phi4: (phn~digits~Mphn) -> FN := master.FN if (type=2)
    phi5: (phn~digits~Mphn) -> LN := master.LN if (type=2)
    phi9: (AC=AC) -> city := master.city if (AC!=0800)
    """

    def test_parse_validate_run(self, paper_master):
        rules = parse_rules(self.RULES)
        ruleset = RuleSet(rules, uk.INPUT_SCHEMA, uk.MASTER_SCHEMA)
        engine = CerFix(ruleset, paper_master)
        assert engine.check_consistency(samples=10).is_consistent
        result = engine.chase_once(uk.fig3_tuple(), ["AC", "phn", "type"])
        assert result.values["FN"] == "Mark"
        assert result.values["city"] == "Dur"


class TestDifferentUsers:
    def test_cautious_user_more_rounds_same_fix(self, paper_engine):
        fast = paper_engine.session(uk.fig3_tuple(), "fast")
        fast.run(OracleUser(uk.fig3_truth()))
        slow = paper_engine.session(uk.fig3_tuple(), "slow")
        slow.run(CautiousUser(uk.fig3_truth(), max_per_round=1), max_rounds=12)
        assert fast.is_complete and slow.is_complete
        assert slow.round_no > fast.round_no
        assert slow.fixed_values() == fast.fixed_values()

    def test_selective_user_alternative_path(self, paper_engine):
        """Paper step (2): the user validates attributes other than the
        suggested ones; CerFix reacts the same way."""
        user = SelectiveUser(
            uk.fig3_truth(),
            known={"zip", "type", "phn", "AC", "item"},
        )
        session = paper_engine.session(uk.fig3_tuple(), "sel")
        assert session.run(user, max_rounds=12)
        assert session.fixed_values() == uk.fig3_truth()


class TestHospitalEndToEnd:
    def test_one_round_sessions(self, hospital_ruleset, hospital_master):
        engine = CerFix(hospital_ruleset, hospital_master)
        workload = hospital.generate_workload(hospital_master, 15, rate=0.3, seed=9)
        report = engine.stream(workload.dirty, workload.clean)
        assert report.completed == 15
        assert report.mean_rounds == 1.0  # one suggestion covers the key set

    def test_vocabulary_errors_fixed_by_derived_rules(self, hospital_ruleset, hospital_master):
        engine = CerFix(hospital_ruleset, hospital_master)
        clean = hospital.clean_inputs_from_master(hospital_master, 1, seed=13)
        t = clean.row(0).to_dict()
        t["measure_name"] = "GARBAGE"
        t["state_name"] = "garbage"
        session = engine.fix(t, OracleUser(clean.row(0).to_dict()), "h1")
        assert session.is_complete
        assert session.fixed_values() == clean.row(0).to_dict()
        sources = {e.attr: e.rule_id for e in engine.audit.by_tuple("h1")
                   if e.source == "rule"}
        assert sources["measure_name"].startswith("cfd_mname")
        assert sources["state_name"].startswith("cfd_state")
