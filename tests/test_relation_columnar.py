"""Property-based parity: the columnar Relation vs a naive row store.

The columnar representation (per-column interning dictionaries + id
arrays, see :mod:`repro.relational.relation`) is an optimisation, not a
semantics change: every public operation must behave exactly as if rows
were stored as plain tuples. This suite drives random mutation
sequences against both representations and checks full observational
equivalence — including the type-aware interning corner (``1`` /
``1.0`` / ``True`` compare equal but must decode back to exactly what
was stored), index/scan lookup parity, and the pickle round trip.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema

ATTRS = ("a", "b", "c")

# Small pools force collisions: interning, index buckets and the
# 1/1.0/True type-confusion corner all get exercised constantly.
values = st.one_of(
    st.sampled_from([0, 1, 2, True, False, 1.0, 0.0, None]),
    st.sampled_from(["", "x", "EH8 4AH", "eh8 4ah", "020", 20, "Ldn"]),
    st.integers(min_value=-3, max_value=3),
)
rows = st.tuples(values, values, values)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("append"), rows),
        st.tuples(st.just("extend"), st.lists(rows, max_size=5)),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=999),  # position seed
            st.sampled_from(ATTRS),
            values,
        ),
        st.tuples(
            st.just("delete"),
            st.lists(st.integers(min_value=0, max_value=999), max_size=4),
        ),
    ),
    max_size=12,
)


def _apply(ops) -> tuple[Relation, list[tuple]]:
    """Run one operation sequence against both representations."""
    relation = Relation(Schema("r", ATTRS))
    reference: list[tuple] = []
    for op in ops:
        if op[0] == "append":
            relation.append(op[1])
            reference.append(op[1])
        elif op[0] == "extend":
            relation.extend(op[1])
            reference.extend(op[1])
        elif op[0] == "update":
            _, seed, attr, value = op
            if not reference:
                continue
            pos = seed % len(reference)
            relation.update_cell(pos, attr, value)
            i = ATTRS.index(attr)
            reference[pos] = reference[pos][:i] + (value,) + reference[pos][i + 1 :]
        else:  # delete
            if not reference:
                continue
            drop = sorted({seed % len(reference) for seed in op[1]})
            relation.delete_rows(drop)
            reference = [t for i, t in enumerate(reference) if i not in drop]
    return relation, reference


def _same_value(x, y) -> bool:
    """Equality that refuses 1 == 1.0 == True: decoding must return the
    stored object, not an equal impostor from another row."""
    return x.__class__ is y.__class__ and x == y


def _same_tuples(xs, ys) -> bool:
    return len(xs) == len(ys) and all(
        len(x) == len(y) and all(_same_value(a, b) for a, b in zip(x, y))
        for x, y in zip(xs, ys)
    )


@settings(max_examples=60, deadline=None)
@given(operations)
def test_mutation_sequence_matches_row_store(ops):
    relation, reference = _apply(ops)
    assert len(relation) == len(reference)
    assert _same_tuples(relation.tuples(), reference)
    assert _same_tuples([r.values for r in relation.rows()], reference)
    for i in range(len(reference)):
        assert _same_tuples([relation.row(i).values], [reference[i]])
    for pos, name in enumerate(ATTRS):
        column = [t[pos] for t in reference]
        assert _same_tuples([tuple(relation.column(name))], [tuple(column)])
        assert relation.active_domain(name) == set(column)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_predicate_mask_matches_per_row_evaluation(ops):
    relation, reference = _apply(ops)
    predicate = lambda v: isinstance(v, str) or v == 1  # noqa: E731
    for pos, name in enumerate(ATTRS):
        expected = [bool(predicate(t[pos])) for t in reference]
        assert relation.predicate_mask(name, predicate) == expected
    # a type-aware predicate must see the stored object, not a
    # hash-equal stand-in from another row
    is_bool = lambda v: isinstance(v, bool)  # noqa: E731
    expected = [isinstance(t[0], bool) for t in reference]
    assert relation.predicate_mask("a", is_bool) == expected


@settings(max_examples=60, deadline=None)
@given(operations)
def test_project_and_select_match_row_store(ops):
    relation, reference = _apply(ops)
    projected = relation.project(("c", "a"))
    assert _same_tuples(projected.tuples(), [(t[2], t[0]) for t in reference])
    # projections snapshot the rows: growing the base leaves them alone
    relation.append((1, 2, 3))
    assert _same_tuples(projected.tuples(), [(t[2], t[0]) for t in reference])
    reference.append((1, 2, 3))
    predicate = lambda v: isinstance(v, int) and not isinstance(v, bool)  # noqa: E731
    selected = relation.select(lambda r: predicate(r["b"]))
    assert _same_tuples(selected.tuples(), [t for t in reference if predicate(t[1])])


@settings(max_examples=60, deadline=None)
@given(operations, rows)
def test_lookup_matches_scan_lookup(ops, probe):
    relation, reference = _apply(ops)
    for attrs, key in ((("a",), (probe[0],)), (("a", "c"), (probe[0], probe[2]))):
        indexed = relation.lookup(attrs, key)
        scanned = relation.scan_lookup(attrs, key)
        assert _same_tuples(
            [r.values for r in indexed], [r.values for r in scanned]
        )
    # mutation invalidates the index; the next lookup sees the new row
    relation.append(probe)
    reference.append(probe)
    hits = relation.lookup(ATTRS, probe)
    assert any(_same_tuples([r.values], [probe]) for r in hits)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_pickle_round_trip_preserves_rows_and_mutability(ops):
    relation, reference = _apply(ops)
    clone = pickle.loads(pickle.dumps(relation))
    assert _same_tuples(clone.tuples(), reference)
    # the clone keeps working: interning, indexes and mutation all live
    clone.append(("EH8 4AH", 1, True))
    assert len(clone) == len(reference) + 1
    assert _same_tuples([clone.row(len(reference)).values], [("EH8 4AH", 1, True)])
    assert clone.lookup(("a",), ("EH8 4AH",))
    assert _same_tuples(relation.tuples(), reference)  # original untouched


def test_unhashable_values_are_stored_uninterned():
    relation = Relation(Schema("r", ATTRS))
    relation.append(([1, 2], "x", 0))
    relation.append(([1, 2], "x", 0))
    assert relation.tuples() == [([1, 2], "x", 0), ([1, 2], "x", 0)]
    assert relation.column("a") == [[1, 2], [1, 2]]
    mask = relation.predicate_mask("a", lambda v: isinstance(v, list))
    assert mask == [True, True]


def test_delete_rejects_out_of_range_positions():
    relation = Relation(Schema("r", ATTRS), [(1, 2, 3)])
    with pytest.raises(RelationError):
        relation.delete_rows([5])
    with pytest.raises(RelationError):
        relation.update_cell(7, "a", 0)
