"""Property-based tests (hypothesis) for the core invariants.

These encode the theory the system rests on:

* the chase is monotone, idempotent and — for consistent rule sets —
  order-independent (Church–Rosser);
* certain fixes never disagree with ground truth ("no new errors");
* tableau condensation preserves the matched set exactly;
* the rule parser round-trips;
* error injection preserves ground truth bookkeeping;
* edit distance is a metric.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.baselines.cfd_repair import _edit_distance
from repro.core.certainty import fresh, value_partition
from repro.core.chase import chase
from repro.core.pattern import Eq, NotIn, PatternTuple
from repro.core.region_finder import condense_tableau
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.datagen.inject import ErrorInjector
from repro.datagen.noise import typo_replace
from repro.master.manager import MasterDataManager
from repro.monitor.user import OracleUser
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.rules.parser import parse_rule
from repro.scenarios import uk_customers as uk

# ---------------------------------------------------------------------------
# Shared strategies: a small synthetic key->value world, guaranteed consistent
# (one master relation with a key column determining everything).
# ---------------------------------------------------------------------------

INPUT = Schema("t", ["k", "a", "b", "c"])
MASTER = Schema("m", ["mk", "ma", "mb"])

keys = st.sampled_from(["k1", "k2", "k3", "nope"])
cells = st.sampled_from(["v1", "v2", "x", ""])


@st.composite
def master_relations(draw):
    """Master data where mk is a key (no ambiguity by construction)."""
    n = draw(st.integers(min_value=1, max_value=4))
    rows = []
    for i in range(n):
        rows.append((f"k{i + 1}", draw(cells), draw(cells)))
    return Relation(MASTER, rows)


@st.composite
def consistent_rulesets(draw):
    """Rules keyed on k only — same source relation, hence consistent."""
    rules = [
        EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma")),
        EditingRule("kb", (MatchPair("k", "mk"),), "b", MasterColumn("mb")),
    ]
    if draw(st.booleans()):
        rules.append(
            EditingRule("ab", (MatchPair("a", "ma"),), "b", MasterColumn("mb"))
        )
    if draw(st.booleans()):
        rules.append(
            EditingRule("cc", (), "c", Constant("C"), PatternTuple({"k": Eq("k1")}))
        )
    return RuleSet(rules, INPUT, MASTER)


@st.composite
def tuples_and_validated(draw):
    values = {
        "k": draw(keys),
        "a": draw(cells),
        "b": draw(cells),
        "c": draw(cells),
    }
    validated = frozenset(
        a for a in INPUT.names if draw(st.booleans())
    )
    return values, validated


class TestChaseProperties:
    @given(master_relations(), consistent_rulesets(), tuples_and_validated())
    @settings(max_examples=80, deadline=None)
    def test_validated_set_monotone(self, master_rel, ruleset, tv):
        values, validated = tv
        result = chase(values, validated, ruleset, MasterDataManager(master_rel))
        assert result.validated >= validated

    @given(master_relations(), consistent_rulesets(), tuples_and_validated())
    @settings(max_examples=80, deadline=None)
    def test_validated_values_never_overwritten(self, master_rel, ruleset, tv):
        values, validated = tv
        result = chase(values, validated, ruleset, MasterDataManager(master_rel))
        for attr in validated:
            # (no self-normalising rules in this ruleset family)
            assert result.values[attr] == values[attr]

    @given(master_relations(), consistent_rulesets(), tuples_and_validated())
    @settings(max_examples=80, deadline=None)
    def test_idempotent(self, master_rel, ruleset, tv):
        values, validated = tv
        manager = MasterDataManager(master_rel)
        once = chase(values, validated, ruleset, manager)
        twice = chase(once.values, once.validated, ruleset, manager)
        assert twice.values == once.values
        assert twice.validated == once.validated
        assert twice.steps == ()

    @given(master_relations(), consistent_rulesets(), tuples_and_validated(),
           st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_church_rosser_when_conflict_free(self, master_rel, ruleset, tv, rnd):
        values, validated = tv
        manager = MasterDataManager(master_rel)
        base = chase(values, validated, ruleset, manager)
        if base.conflicts:
            return  # detected-inconsistent inputs are allowed to diverge
        order = [r.rule_id for r in ruleset]
        rnd.shuffle(order)
        other = chase(values, validated, ruleset, manager, rule_order=order)
        assert other.values == base.values
        assert other.validated == base.validated

    @given(master_relations(), consistent_rulesets(), tuples_and_validated())
    @settings(max_examples=60, deadline=None)
    def test_steps_only_touch_unvalidated(self, master_rel, ruleset, tv):
        values, validated = tv
        result = chase(values, validated, ruleset, MasterDataManager(master_rel))
        fixed = [s.attr for s in result.steps if not s.normalized]
        assert len(fixed) == len(set(fixed))  # each attr fixed at most once
        assert not (set(fixed) & validated)


class TestCertainFixCorrectness:
    """The headline invariant: with a correct user and correct master data,
    CerFix never writes a wrong value (paper §1: fixes "guaranteed correct";
    no new errors are introduced)."""

    @given(st.integers(min_value=0, max_value=2 ** 31), st.floats(0.0, 0.6))
    @settings(max_examples=12, deadline=None)
    def test_fixed_tuples_equal_ground_truth(self, seed, rate):
        master = uk.generate_master(25, seed=seed % 1000)
        workload = uk.generate_workload(master, 8, rate=rate, seed=seed % 997)
        from repro import CerFix

        engine = CerFix(uk.paper_ruleset(), master)
        for i, (dirty, clean) in enumerate(
            zip(workload.dirty.rows(), workload.clean.rows())
        ):
            session = engine.fix(dirty.to_dict(), OracleUser(clean.to_dict()), f"t{i}")
            assert session.is_complete
            assert session.fixed_values() == clean.to_dict()
            # every machine change landed on the truth
            for event in engine.audit.by_tuple(f"t{i}"):
                if event.source in ("rule", "normalize"):
                    assert event.new == clean.to_dict()[event.attr]


class TestCondensationProperties:
    @st.composite
    def safe_sets(draw):
        attrs = ("x", "y")
        universe = {
            "x": ["a", "b", "c", fresh("x")],
            "y": ["1", "2", fresh("y")],
        }
        all_combos = [
            {"x": vx, "y": vy}
            for vx in universe["x"]
            for vy in universe["y"]
        ]
        picked = draw(st.lists(st.sampled_from(range(len(all_combos))),
                               unique=True, max_size=len(all_combos)))
        return attrs, [all_combos[i] for i in picked], universe

    @given(safe_sets())
    @settings(max_examples=120, deadline=None)
    def test_condense_matches_exactly_the_safe_set(self, case):
        attrs, safe, universe = case
        tableau = condense_tableau(attrs, safe, universe)
        safe_keys = {tuple(c[a] for a in attrs) for c in safe}
        for values in itertools.product(*(universe[a] for a in attrs)):
            combo = dict(zip(attrs, values))
            matched = any(p.matches(combo) for p in tableau)
            assert matched == (values in safe_keys)

    @given(safe_sets())
    @settings(max_examples=60, deadline=None)
    def test_condense_never_bigger_than_input(self, case):
        attrs, safe, universe = case
        tableau = condense_tableau(attrs, safe, universe)
        assert len(tableau) <= max(len(safe), 1)


class TestParserProperties:
    rule_ids = st.from_regex(r"[A-Za-z][A-Za-z0-9_.]{0,8}", fullmatch=True)
    attr_names = st.sampled_from(["FN", "LN", "AC", "phn", "zipc", "city"])
    ops = st.sampled_from(["exact", "digits", "alnum", "casefold"])
    values = st.from_regex(r"[A-Za-z0-9 ]{1,10}", fullmatch=True).map(str.strip).filter(bool)

    @st.composite
    def rules(draw):
        rid = draw(TestParserProperties.rule_ids)
        n = draw(st.integers(1, 3))
        attrs = draw(st.lists(TestParserProperties.attr_names, min_size=n,
                              max_size=n, unique=True))
        match = tuple(
            MatchPair(a, f"m_{a}", draw(TestParserProperties.ops)) for a in attrs
        )
        target = draw(st.sampled_from(["out1", "out2"]))
        if draw(st.booleans()):
            source = MasterColumn("m_src")
        else:
            source = Constant(draw(TestParserProperties.values))
        conds = {}
        for attr in draw(st.lists(TestParserProperties.attr_names, max_size=2,
                                  unique=True)):
            if draw(st.booleans()):
                conds[attr] = Eq(draw(TestParserProperties.values))
            else:
                conds[attr] = NotIn(
                    draw(st.lists(TestParserProperties.values, min_size=1,
                                  max_size=2, unique=True))
                )
        return EditingRule(rid, match, target, source, PatternTuple(conds))

    @given(rules())
    @settings(max_examples=150, deadline=None)
    def test_render_parse_roundtrip(self, rule):
        parsed = parse_rule(rule.render())
        assert parsed.rule_id == rule.rule_id
        assert parsed.match == rule.match
        assert parsed.target == rule.target
        assert parsed.source == rule.source
        assert parsed.pattern == rule.pattern


class TestInjectorProperties:
    schema = Schema("p", ["n", "v"])

    @given(st.integers(0, 10_000), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_ground_truth_bookkeeping(self, seed, rate):
        clean = Relation(self.schema, [(f"name{i}", f"07{i:04d}55") for i in range(20)])
        injector = ErrorInjector(
            {"n": [("typo_replace", typo_replace)]}, rate=rate, seed=seed
        )
        report = injector.inject(clean)
        assert len(report.dirty) == len(report.clean) == 20
        corrupted = report.error_positions()
        for pos in range(20):
            for attr in self.schema.names:
                d = report.dirty.row(pos)[attr]
                c = report.clean.row(pos)[attr]
                if (pos, attr) in corrupted:
                    assert d != c
                else:
                    assert d == c


class TestEditDistanceProperties:
    words = st.text(alphabet="abcdef", max_size=8)

    @given(words, words)
    @settings(max_examples=150, deadline=None)
    def test_symmetry(self, a, b):
        assert _edit_distance(a, b) == _edit_distance(b, a)

    @given(words)
    @settings(max_examples=60, deadline=None)
    def test_identity(self, a):
        assert _edit_distance(a, a) == 0

    @given(words, words, words)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert _edit_distance(a, c) <= _edit_distance(a, b) + _edit_distance(b, c)

    @given(words, words)
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_longer(self, a, b):
        assert _edit_distance(a, b) <= max(len(a), len(b))


class TestPartitionProperties:
    @given(master_relations())
    @settings(max_examples=40, deadline=None)
    def test_partition_contains_all_master_key_values(self, master_rel):
        ruleset = RuleSet(
            [EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma"))],
            INPUT, MASTER,
        )
        part = value_partition(ruleset, MasterDataManager(master_rel))
        assert set(part["k"]) == set(master_rel.active_domain("mk"))
