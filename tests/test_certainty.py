"""Unit tests for the certainty analysis (finite decision procedure)."""

import pytest

from repro.core.certainty import (
    CertaintyMode,
    FreshValue,
    candidate_combos,
    fresh,
    guaranteed_validated,
    is_certain_region,
    value_partition,
)
from repro.core.pattern import EMPTY_PATTERN, Eq, Neq, PatternTuple
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.errors import BudgetExceededError
from repro.master.manager import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.scenarios import uk_customers as uk

INPUT = Schema("t", ["k", "a", "b"])
MASTER = Schema("m", ["mk", "ma", "mb"])


@pytest.fixture()
def master():
    return MasterDataManager(Relation(MASTER, [("k1", "A1", "B1"), ("k2", "A2", "B2")]))


@pytest.fixture()
def ruleset():
    return RuleSet(
        [
            EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma")),
            EditingRule("kb", (MatchPair("k", "mk"),), "b", MasterColumn("mb")),
        ],
        INPUT,
        MASTER,
    )


class TestFreshValue:
    def test_identity_semantics(self):
        assert fresh("a") == fresh("a")
        assert fresh("a") != fresh("b")
        assert fresh("a") != "anything"

    def test_hashable(self):
        assert len({fresh("a"), fresh("a"), fresh("b")}) == 2

    def test_survives_normalizers(self):
        from repro.relational.normalize import normalize_value

        f = fresh("a")
        assert normalize_value(f, "digits") is f
        assert normalize_value(f, "alnum") is f

    def test_repr(self):
        assert "a" in repr(fresh("a"))


class TestValuePartition:
    def test_master_values_flow_through_correspondence(self, ruleset, master):
        part = value_partition(ruleset, master)
        assert set(part["k"]) == {"k1", "k2"}

    def test_non_corresponded_attr_empty(self, ruleset, master):
        part = value_partition(ruleset, master)
        assert part["a"] == ()
        assert part["b"] == ()

    def test_pattern_constants_included(self, master):
        ruleset = RuleSet(
            [EditingRule("r", (MatchPair("k", "mk"),), "a", MasterColumn("ma"),
                         PatternTuple({"b": Neq("STOP")}))],
            INPUT, MASTER,
        )
        part = value_partition(ruleset, master)
        assert "STOP" in part["b"]

    def test_extra_patterns_included(self, ruleset, master):
        part = value_partition(ruleset, master, extra_patterns=[PatternTuple({"a": Eq("X")})])
        assert "X" in part["a"]

    def test_paper_partition_has_toll_free(self, paper_ruleset, paper_manager):
        part = value_partition(paper_ruleset, paper_manager)
        assert "0800" in part["AC"]
        assert "131" in part["AC"] and "201" in part["AC"]


class TestCandidateCombos:
    def test_strict_includes_fresh_first(self, ruleset, master):
        combos = list(candidate_combos(("k",), EMPTY_PATTERN, ruleset, master))
        assert isinstance(combos[0]["k"], FreshValue)
        assert {c["k"] for c in combos} == {fresh("k"), "k1", "k2"}

    def test_strict_pattern_filters(self, ruleset, master):
        combos = list(
            candidate_combos(("k",), PatternTuple({"k": Eq("k1")}), ruleset, master)
        )
        assert [c["k"] for c in combos] == ["k1"]

    def test_strict_free_attr_is_fresh_only(self, ruleset, master):
        combos = list(candidate_combos(("a",), EMPTY_PATTERN, ruleset, master))
        assert combos == [{"a": fresh("a")}]

    def test_strict_product(self, ruleset, master):
        combos = list(candidate_combos(("k", "a"), EMPTY_PATTERN, ruleset, master))
        assert len(combos) == 3  # {fresh,k1,k2} x {fresh}

    def test_budget_enforced(self, paper_ruleset, paper_manager):
        with pytest.raises(BudgetExceededError):
            list(
                candidate_combos(
                    tuple(uk.INPUT_SCHEMA.names), EMPTY_PATTERN,
                    paper_ruleset, paper_manager, max_combos=10,
                )
            )

    def test_anchored_per_master_tuple(self, ruleset, master):
        combos = list(
            candidate_combos(("k",), EMPTY_PATTERN, ruleset, master,
                             mode=CertaintyMode.ANCHORED)
        )
        assert {c["k"] for c in combos} == {"k1", "k2"}

    def test_anchored_free_attr_gets_fresh(self, ruleset, master):
        combos = list(
            candidate_combos(("a",), EMPTY_PATTERN, ruleset, master,
                             mode=CertaintyMode.ANCHORED)
        )
        assert combos == [{"a": fresh("a")}]

    def test_scenario_mode_projects_and_dedupes(self, ruleset, master):
        universe = [{"k": "k1", "a": "A1", "b": "B1"}, {"k": "k1", "a": "A1", "b": "B1"}]
        combos = list(
            candidate_combos(("k", "a"), EMPTY_PATTERN, ruleset, master,
                             mode=CertaintyMode.SCENARIO, scenario=lambda: iter(universe))
        )
        assert combos == [{"k": "k1", "a": "A1"}]

    def test_scenario_requires_generator(self, ruleset, master):
        with pytest.raises(ValueError):
            list(candidate_combos(("k",), EMPTY_PATTERN, ruleset, master,
                                  mode=CertaintyMode.SCENARIO))


class TestCertainRegions:
    def test_key_region_certain_strict_needs_coverage(self, ruleset, master):
        # wildcard tableau is NOT certain under STRICT: fresh k matches no master
        report = is_certain_region(("k",), None, ruleset, master)
        assert not report.certain
        assert report.failure == "incomplete"
        assert isinstance(report.counterexample["k"], FreshValue)

    def test_key_region_certain_with_pinned_tableau(self, ruleset, master):
        tableau = [PatternTuple({"k": Eq("k1")}), PatternTuple({"k": Eq("k2")})]
        report = is_certain_region(("k",), tableau, ruleset, master)
        assert report.certain
        assert report.combos_checked == 2

    def test_key_region_certain_anchored(self, ruleset, master):
        report = is_certain_region(("k",), None, ruleset, master,
                                   mode=CertaintyMode.ANCHORED)
        assert report.certain

    def test_pinned_non_master_value_not_certain_anchored(self, ruleset, master):
        # ANCHORED includes tableau constants: a region pinned to a value
        # with no master coverage is (correctly) rejected, not vacuous.
        tableau = [PatternTuple({"k": Eq("not-in-master")})]
        report = is_certain_region(("k",), tableau, ruleset, master,
                                   mode=CertaintyMode.ANCHORED)
        assert not report.certain
        assert report.failure == "incomplete"

    def test_vacuous_region_flagged(self, ruleset, master):
        report = is_certain_region(
            ("k",), None, ruleset, master,
            mode=CertaintyMode.SCENARIO, scenario=lambda: iter(()),
        )
        assert report.certain and report.vacuous
        assert "vacuously" in report.describe()

    def test_guaranteed_intersection(self, ruleset, master):
        # validating only 'a' guarantees nothing new (no rule reads a alone)
        report = guaranteed_validated(("a",), (EMPTY_PATTERN,), ruleset, master)
        assert report.guaranteed == frozenset({"a"})

    def test_report_describe(self, ruleset, master):
        ok = is_certain_region(("k",), None, ruleset, master, mode=CertaintyMode.ANCHORED)
        assert "certain" in ok.describe()

    def test_paper_region_scenario_mode(self, paper_ruleset, paper_manager, paper_master):
        scenario = uk.scenario_tuples(paper_master)
        # mandatory + zip + FN + LN covers both phone types
        report = is_certain_region(
            ("AC", "phn", "type", "item", "zip", "FN", "LN"), None,
            paper_ruleset, paper_manager,
            mode=CertaintyMode.SCENARIO, scenario=scenario,
        )
        assert report.certain and not report.vacuous

    def test_paper_mandatory_core_not_certain(self, paper_ruleset, paper_manager, paper_master):
        scenario = uk.scenario_tuples(paper_master)
        report = is_certain_region(
            ("AC", "phn", "type", "item"), None,
            paper_ruleset, paper_manager,
            mode=CertaintyMode.SCENARIO, scenario=scenario,
        )
        assert not report.certain
