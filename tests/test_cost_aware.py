"""Tests for cost-aware suggestions and the FD→CFD bridge."""

import pytest

from repro.core.chase import chase
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.discovery.fd import FD, discover_fds, fds_to_cfds
from repro.master.manager import MasterDataManager
from repro.monitor.session import MonitorSession
from repro.monitor.suggest import SuggestionStrategy, compute_suggestion
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.rules.derive import editing_rules_from_cfds
from repro.scenarios import uk_customers as uk

INPUT = Schema("t", ["k", "j", "a", "b"])
MASTER = Schema("m", ["mk", "mj", "ma", "mb"])


@pytest.fixture()
def world():
    """Two interchangeable keys: validating either k or j unlocks the
    rest (k fixes j and vice versa, k fixes a and b) — so the monitor
    has a genuine choice and costs can steer it. No attribute is
    mandatory: every attribute is some rule's target."""
    master = MasterDataManager(
        Relation(MASTER, [("k1", "j1", "A1", "B1"), ("k2", "j2", "A2", "B2")])
    )
    ruleset = RuleSet(
        [
            EditingRule("kj", (MatchPair("k", "mk"),), "j", MasterColumn("mj")),
            EditingRule("jk", (MatchPair("j", "mj"),), "k", MasterColumn("mk")),
            EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma")),
            EditingRule("kb", (MatchPair("k", "mk"),), "b", MasterColumn("mb")),
        ],
        INPUT,
        MASTER,
    )
    return master, ruleset


class TestCostAwareSuggestions:
    def test_world_has_no_mandatory_attrs(self, world):
        from repro.core.inference import mandatory_attributes

        _, ruleset = world
        assert mandatory_attributes(ruleset) == frozenset()

    def test_without_costs_prefers_smallest(self, world):
        master, ruleset = world
        # either {k} or {j} alone suffices (j unlocks k, k unlocks the rest)
        s = compute_suggestion({"k": "k1", "j": "j1", "a": "?", "b": "?"},
                               frozenset(), ruleset, master)
        assert len(s.attrs) == 1

    def test_costs_steer_to_cheap_attr(self, world):
        master, ruleset = world
        values = {"k": "k1", "j": "j1", "a": "?", "b": "?"}
        cheap_j = compute_suggestion(values, frozenset(), ruleset, master,
                                     costs={"k": 10.0, "j": 1.0})
        assert cheap_j.attrs == ("j",)
        cheap_k = compute_suggestion(values, frozenset(), ruleset, master,
                                     costs={"k": 1.0, "j": 10.0})
        assert cheap_k.attrs == ("k",)

    def test_total_cost_minimised_not_cardinality(self, world):
        master, ruleset = world
        # {k} costs 5; {j} costs 2 — both feasible; search must not pick
        # any two-attribute set (cost >= 7) nor the expensive single.
        s = compute_suggestion({"k": "k1", "j": "j1", "a": "?", "b": "?"},
                               frozenset(), ruleset, master,
                               costs={"k": 5.0, "j": 2.0, "a": 9.0, "b": 9.0})
        assert s.attrs == ("j",)

    def test_paper_scenario_costs_affect_round2(self, paper_ruleset, paper_manager):
        """With zip expensive, round 2 falls back to... zip is the only
        option for type=2 — cost cannot change feasibility, only order."""
        session = MonitorSession(
            paper_ruleset, paper_manager, uk.fig3_tuple(), "t",
            costs={"zip": 100.0},
        )
        truth = uk.fig3_truth()
        session.validate({a: truth[a] for a in ("AC", "phn", "type", "item")})
        s = session.suggestion()
        assert s.attrs == ("zip",)  # still the unique feasible choice

    def test_region_strategy_uses_costs(self, world):
        from repro.core.certainty import CertaintyMode
        from repro.core.region import RankedRegion, Region

        master, ruleset = world
        regions = [
            RankedRegion(Region(("k",)), CertaintyMode.ANCHORED),
            RankedRegion(Region(("j",)), CertaintyMode.ANCHORED),
        ]
        s = compute_suggestion(
            {"k": "k1", "j": "j1", "a": "?", "b": "?"}, frozenset(),
            ruleset, master,
            strategy=SuggestionStrategy.REGION, regions=regions,
            costs={"k": 10.0, "j": 1.0},
        )
        assert s.attrs == ("j",)


class TestFDsToCFDs:
    def test_bridge_shape(self):
        cfds = fds_to_cfds([FD(("zip",), "city", 10, 1.0)])
        assert len(cfds) == 1
        assert cfds[0].lhs == ("zip",)
        assert not cfds[0].tableau[0].is_constant

    def test_discovered_fd_to_master_rule_roundtrip(self):
        """discover FDs on a master-copy sample -> CFDs -> rules -> chase."""
        schema = Schema("addr", ["zip", "city", "street"])
        master_rel = Relation(
            schema,
            [("Z1", "Springfield", "1 Elm"), ("Z2", "Shelbyville", "2 Oak"),
             ("Z1", "Springfield", "3 Ash")],
        )
        fds = discover_fds(master_rel, max_lhs=1, targets=["city"])
        assert any(fd.lhs == ("zip",) for fd in fds)
        rules = editing_rules_from_cfds(
            fds_to_cfds([fd for fd in fds if fd.lhs == ("zip",)])
        )
        ruleset = RuleSet(rules, schema, schema)
        manager = MasterDataManager(master_rel)
        result = chase({"zip": "Z2", "city": "WRONG", "street": "?"},
                       ["zip"], ruleset, manager)
        assert result.values["city"] == "Shelbyville"
