"""Unit tests for the textual rule syntax."""

import pytest

from repro.core.pattern import Eq, NotIn, PatternTuple
from repro.core.rule import Constant, MasterColumn
from repro.errors import ParseError
from repro.rules.parser import parse_condition, parse_pattern, parse_rule, parse_rules
from repro.scenarios import uk_customers as uk


class TestParseCondition:
    def test_eq(self):
        assert parse_condition("type=2") == ("type", Eq("2"))

    def test_neq(self):
        assert parse_condition("AC!=0800") == ("AC", NotIn(["0800"]))

    def test_notin_multi(self):
        assert parse_condition("AC!=0800|0845") == ("AC", NotIn(["0800", "0845"]))

    def test_quoted_value(self):
        assert parse_condition("city='New York'") == ("city", Eq("New York"))

    def test_quoted_value_with_comma(self):
        assert parse_condition("x='a, b'") == ("x", Eq("a, b"))

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_condition("no-operator-here")


class TestParsePattern:
    def test_empty(self):
        assert parse_pattern("") == PatternTuple()

    def test_multiple_conditions(self):
        p = parse_pattern("type=2, AC!=0800")
        assert p.condition("type") == Eq("2")
        assert p.condition("AC") == NotIn(["0800"])

    def test_repeated_attr_merges(self):
        p = parse_pattern("AC!=0800, AC!=0845")
        assert p.condition("AC") == NotIn(["0800", "0845"])

    def test_contradiction_raises(self):
        with pytest.raises(ParseError, match="contradictory"):
            parse_pattern("type=1, type=2")


class TestParseRule:
    def test_master_sourced(self):
        r = parse_rule("p9: (AC=AC) -> city := master.city if (AC!=0800)")
        assert r.rule_id == "p9"
        assert r.lhs_attrs == ("AC",)
        assert r.target == "city"
        assert r.source == MasterColumn("city")
        assert r.pattern.condition("AC") == NotIn(["0800"])

    def test_operator(self):
        r = parse_rule("p4: (phn~digits~=Mphn) -> FN := master.FN if (type=2)")
        assert r.match[0].op == "digits"
        assert r.match[0].m_attr == "Mphn"

    def test_multi_match(self):
        r = parse_rule("p6: (AC=AC, phn~digits~=Hphn) -> str := master.str if (type=1)")
        assert r.lhs_attrs == ("AC", "phn")
        assert r.ops == ("exact", "digits")

    def test_constant_source(self):
        r = parse_rule("c1: () -> city := const 'Ldn' if (AC=020)")
        assert r.source == Constant("Ldn")
        assert r.match == ()

    def test_constant_unquoted(self):
        r = parse_rule("c1: () -> city := const Ldn if (AC=020)")
        assert r.source == Constant("Ldn")

    def test_no_pattern(self):
        r = parse_rule("p1: (zip~alnum~=zip) -> zip := master.zip")
        assert len(r.pattern) == 0

    def test_bad_grammar_raises(self):
        with pytest.raises(ParseError, match="grammar"):
            parse_rule("this is not a rule")

    def test_bad_match_raises(self):
        with pytest.raises(ParseError, match="match clause"):
            parse_rule("r: (zip ~ zip) -> a := master.a")

    def test_roundtrip_paper_rules(self):
        for rule in uk.paper_rules():
            parsed = parse_rule(rule.render())
            assert parsed.rule_id == rule.rule_id
            assert parsed.match == rule.match
            assert parsed.target == rule.target
            assert parsed.source == rule.source
            assert parsed.pattern == rule.pattern

    def test_roundtrip_constant_rule(self):
        from repro.core.rule import EditingRule

        rule = EditingRule("c", (), "city", Constant("Ldn"), PatternTuple({"AC": Eq("020")}))
        assert parse_rule(rule.render()).source == Constant("Ldn")


class TestParseRules:
    def test_lines_comments_blanks(self):
        text = """
        # the paper's phi9
        p9: (AC=AC) -> city := master.city if (AC!=0800)

        p1: (zip~alnum~=zip) -> zip := master.zip  # trailing comment
        """
        rules = parse_rules(text)
        assert [r.rule_id for r in rules] == ["p9", "p1"]

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_rules("p1: (a=a) -> b := master.b\nBROKEN LINE")

    def test_list_input(self):
        rules = parse_rules(["p1: (a=a) -> b := master.b"])
        assert len(rules) == 1
