"""Unit tests for the chase — the core certain-fix engine."""

import pytest

from repro.core.chase import AppStatus, applicable, chase
from repro.core.pattern import Eq, PatternTuple
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.errors import ConflictError, SchemaError
from repro.master.manager import MasterDataManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.scenarios import uk_customers as uk

INPUT = Schema("t", ["k", "a", "b", "c"])
MASTER = Schema("m", ["mk", "ma", "mb"])


@pytest.fixture()
def master():
    return MasterDataManager(
        Relation(MASTER, [("k1", "A1", "B1"), ("k2", "A2", "B2"), ("dup", "X", "B3"), ("dup", "Y", "B3")])
    )


def rs(*rules):
    return RuleSet(rules, INPUT, MASTER)


R_KA = EditingRule("ka", (MatchPair("k", "mk"),), "a", MasterColumn("ma"))
R_KB = EditingRule("kb", (MatchPair("k", "mk"),), "b", MasterColumn("mb"))
R_AB = EditingRule("ab", (MatchPair("a", "ma"),), "b", MasterColumn("mb"))
R_CONST = EditingRule("const_c", (), "c", Constant("C!"), PatternTuple({"k": Eq("k1")}))


class TestApplicable:
    def test_not_ready(self, master):
        app = applicable(R_KA, {"k": "k1", "a": "?", "b": "?", "c": "?"}, frozenset(), master)
        assert app.status is AppStatus.NOT_READY
        assert app.missing == ("k",)

    def test_ready(self, master):
        app = applicable(R_KA, {"k": "k1", "a": "?", "b": "?", "c": "?"}, frozenset({"k"}), master)
        assert app.is_ready
        assert app.value == "A1"
        assert app.master_positions == (0,)

    def test_no_match(self, master):
        app = applicable(R_KA, {"k": "nope", "a": "?", "b": "?", "c": "?"}, frozenset({"k"}), master)
        assert app.status is AppStatus.NO_MATCH

    def test_ambiguous(self, master):
        app = applicable(R_KA, {"k": "dup", "a": "?", "b": "?", "c": "?"}, frozenset({"k"}), master)
        assert app.status is AppStatus.AMBIGUOUS
        assert set(app.candidate_values) == {"X", "Y"}

    def test_ambiguous_same_value_is_ready(self, master):
        # both 'dup' rows carry mb == B3: the uniqueness gate is on values
        app = applicable(R_KB, {"k": "dup", "a": "?", "b": "?", "c": "?"}, frozenset({"k"}), master)
        assert app.is_ready and app.value == "B3"

    def test_pattern_miss(self, master):
        rule = EditingRule("r", (MatchPair("k", "mk"),), "a", MasterColumn("ma"),
                           PatternTuple({"c": Eq("go")}))
        app = applicable(rule, {"k": "k1", "a": "?", "b": "?", "c": "stop"},
                         frozenset({"k", "c"}), master)
        assert app.status is AppStatus.PATTERN_MISS

    def test_pattern_attr_must_be_validated(self, master):
        rule = EditingRule("r", (MatchPair("k", "mk"),), "a", MasterColumn("ma"),
                           PatternTuple({"c": Eq("go")}))
        app = applicable(rule, {"k": "k1", "a": "?", "b": "?", "c": "go"},
                         frozenset({"k"}), master)
        assert app.status is AppStatus.NOT_READY
        assert app.missing == ("c",)

    def test_constant_rule_ready(self, master):
        app = applicable(R_CONST, {"k": "k1", "a": "?", "b": "?", "c": "?"},
                         frozenset({"k"}), master)
        assert app.is_ready and app.value == "C!"


class TestChaseBasics:
    def test_single_fix(self, master):
        result = chase({"k": "k1", "a": "wrong", "b": "?", "c": "?"}, ["k"], rs(R_KA), master)
        assert result.values["a"] == "A1"
        assert result.validated == frozenset({"k", "a"})
        assert len(result.steps) == 1

    def test_transitive_fixes(self, master):
        # k -> a (ka), then a -> b (ab): two sweeps of derivation
        result = chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, ["k"], rs(R_KA, R_AB), master)
        assert result.values["a"] == "A1"
        assert result.values["b"] == "B1"
        assert result.validated >= {"k", "a", "b"}

    def test_transitive_order_independent(self, master):
        ruleset = rs(R_KA, R_AB)
        r1 = chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, ["k"], ruleset, master,
                   rule_order=["ka", "ab"])
        r2 = chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, ["k"], ruleset, master,
                   rule_order=["ab", "ka"])
        assert r1.values == r2.values
        assert r1.validated == r2.validated

    def test_nothing_validated_nothing_happens(self, master):
        result = chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, [], rs(R_KA), master)
        assert result.steps == ()
        assert result.validated == frozenset()

    def test_constant_rule_with_pattern(self, master):
        result = chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, ["k"], rs(R_CONST), master)
        assert result.values["c"] == "C!"

    def test_ambiguity_recorded_not_applied(self, master):
        result = chase({"k": "dup", "a": "?", "b": "?", "c": "?"}, ["k"], rs(R_KA), master)
        assert result.values["a"] == "?"
        assert "a" not in result.validated
        assert len(result.ambiguities) == 1
        assert result.ambiguities[0].rule_id == "ka"

    def test_input_not_mutated(self, master):
        values = {"k": "k1", "a": "wrong", "b": "?", "c": "?"}
        chase(values, ["k"], rs(R_KA), master)
        assert values["a"] == "wrong"

    def test_unknown_validated_attr_raises(self, master):
        with pytest.raises(SchemaError):
            chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, ["zz"], rs(R_KA), master)

    def test_is_complete(self, master):
        result = chase(
            {"k": "k1", "a": "?", "b": "?", "c": "?"}, ["k", "c"], rs(R_KA, R_KB), master
        )
        assert result.is_complete
        assert result.unvalidated == frozenset()

    def test_incomplete_reports_unvalidated(self, master):
        result = chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, ["k"], rs(R_KA), master)
        assert not result.is_complete
        assert result.unvalidated == frozenset({"b", "c"})

    def test_fix_step_provenance(self, master):
        result = chase({"k": "k2", "a": "?", "b": "?", "c": "?"}, ["k"], rs(R_KA), master)
        step = result.steps[0]
        assert step.rule_id == "ka"
        assert step.master_positions == (1,)
        assert step.old == "?" and step.new == "A2"
        assert "fixed by rule ka" in step.describe()

    def test_already_correct_value_still_validates(self, master):
        result = chase({"k": "k1", "a": "A1", "b": "?", "c": "?"}, ["k"], rs(R_KA), master)
        assert "a" in result.validated
        assert result.steps[0].old == result.steps[0].new == "A1"


class TestConflicts:
    def test_rule_vs_user_validation(self, master):
        # user validated a='USER', rule ka prescribes 'A1' -> conflict
        result = chase({"k": "k1", "a": "USER", "b": "?", "c": "?"}, ["k", "a"], rs(R_KA), master)
        assert len(result.conflicts) == 1
        w = result.conflicts[0]
        assert w.attr == "a" and w.existing == "USER" and w.prescribed == "A1"
        assert result.values["a"] == "USER"  # validated value never overwritten

    def test_strict_raises(self, master):
        with pytest.raises(ConflictError):
            chase({"k": "k1", "a": "USER", "b": "?", "c": "?"}, ["k", "a"],
                  rs(R_KA), master, strict=True)

    def test_rule_vs_rule(self, master):
        # two rules writing b from different sources disagree
        other = EditingRule("cb", (MatchPair("c", "mk"),), "b", MasterColumn("ma"))
        result = chase({"k": "k1", "a": "?", "b": "?", "c": "k2"}, ["k", "c"],
                       rs(R_KB, other), master)
        assert len(result.conflicts) == 1
        # first rule in order wins; the conflict is reported against the second
        assert result.values["b"] == "B1"
        assert result.conflicts[0].rule_id == "cb"

    def test_agreeing_rules_no_conflict(self, master):
        other = EditingRule("kb2", (MatchPair("k", "mk"),), "b", MasterColumn("mb"))
        result = chase({"k": "k1", "a": "?", "b": "?", "c": "?"}, ["k"],
                       rs(R_KB, other), master)
        assert result.conflicts == ()
        assert result.values["b"] == "B1"

    def test_conflict_witness_describe(self, master):
        result = chase({"k": "k1", "a": "USER", "b": "?", "c": "?"}, ["k", "a"], rs(R_KA), master)
        assert "conflict on a" in result.conflicts[0].describe()


class TestNormalization:
    def test_self_normalizing_rewrites_validated_value(self):
        master = MasterDataManager(Relation(Schema("m", ["mz"]), [("EH8 4AH",)]))
        schema = Schema("t", ["z"])
        rule = EditingRule("norm", (MatchPair("z", "mz", "alnum"),), "z", MasterColumn("mz"))
        ruleset = RuleSet([rule], schema, master.schema)
        result = chase({"z": "eh8 4ah"}, ["z"], ruleset, master)
        assert result.values["z"] == "EH8 4AH"
        assert result.steps[0].normalized
        assert result.conflicts == ()

    def test_normalization_fires_once(self):
        master = MasterDataManager(Relation(Schema("m", ["mz"]), [("EH8 4AH",)]))
        schema = Schema("t", ["z"])
        rule = EditingRule("norm", (MatchPair("z", "mz", "alnum"),), "z", MasterColumn("mz"))
        ruleset = RuleSet([rule], schema, master.schema)
        result = chase({"z": "eh8 4ah"}, ["z"], ruleset, master)
        assert len([s for s in result.steps if s.normalized]) == 1

    def test_canonical_value_no_step(self):
        master = MasterDataManager(Relation(Schema("m", ["mz"]), [("EH8 4AH",)]))
        schema = Schema("t", ["z"])
        rule = EditingRule("norm", (MatchPair("z", "mz", "alnum"),), "z", MasterColumn("mz"))
        ruleset = RuleSet([rule], schema, master.schema)
        result = chase({"z": "EH8 4AH"}, ["z"], ruleset, master)
        assert result.steps == ()


class TestPaperScenario:
    """The chase against the paper's exact rules and master data."""

    def test_example2_zip_fixes_ac(self, paper_master):
        ruleset = uk.paper_ruleset(extended=True)
        master = MasterDataManager(paper_master)
        result = chase(uk.example1_tuple(), ["zip"], ruleset, master)
        assert result.values["AC"] == "131"  # the paper's certain fix

    def test_fig3_round1(self, paper_ruleset, paper_manager):
        t = dict(uk.fig3_tuple())
        result = chase(t, ["AC", "phn", "type", "item"], paper_ruleset, paper_manager)
        assert result.values["FN"] == "Mark"   # 'M.' normalised via phi4
        assert result.values["LN"] == "Smith"
        assert result.values["city"] == "Dur"  # phi9
        assert "zip" not in result.validated   # needs round 2

    def test_fig3_round2_completes(self, paper_ruleset, paper_manager):
        t = dict(uk.fig3_tuple())
        r1 = chase(t, ["AC", "phn", "type", "item"], paper_ruleset, paper_manager)
        t2 = dict(r1.values)
        t2["zip"] = uk.fig3_truth()["zip"]
        r2 = chase(t2, r1.validated | {"zip"}, paper_ruleset, paper_manager)
        assert r2.is_complete
        assert r2.values == uk.fig3_truth()

    def test_home_phone_path(self, paper_ruleset, paper_manager):
        # type=1 goes through phi6/phi7/phi8 instead
        t = {
            "FN": "Robert", "LN": "Brady", "AC": "131", "phn": "6884563",
            "type": "1", "str": "?", "city": "?", "zip": "?", "item": "CD",
        }
        result = chase(t, ["AC", "phn", "type", "FN", "LN", "item"], paper_ruleset, paper_manager)
        assert result.is_complete
        assert result.values["str"] == "501 Elm St"
        assert result.values["zip"] == "EH8 4AH"
        assert result.values["city"] == "Edi"

    def test_toll_free_ac_blocks_phi9(self, paper_ruleset, paper_manager):
        t = {
            "FN": "?", "LN": "?", "AC": "0800", "phn": "?", "type": "2",
            "str": "?", "city": "?", "zip": "?", "item": "?",
        }
        result = chase(t, ["AC"], paper_ruleset, paper_manager)
        assert "city" not in result.validated

    def test_use_index_false_same_result(self, paper_ruleset, paper_manager):
        t = dict(uk.fig3_tuple())
        v = ["AC", "phn", "type", "item"]
        with_index = chase(t, v, paper_ruleset, paper_manager, use_index=True)
        without = chase(t, v, paper_ruleset, paper_manager, use_index=False)
        assert with_index.values == without.values
        assert with_index.validated == without.validated

    def test_sweeps_bounded(self, paper_ruleset, paper_manager):
        t = dict(uk.fig3_tuple())
        result = chase(t, ["AC", "phn", "type", "item"], paper_ruleset, paper_manager)
        assert result.sweeps <= len(uk.INPUT_SCHEMA) + len(paper_ruleset) + 2
