"""Tests for the async entry service (repro.service).

Covers the ISSUE 4 satellite checklist: concurrent-session correctness
(bit-identical to the serial monitor), probe coalescing under
contention, the 429 backpressure path, the metrics-endpoint schema —
plus the shared routing table, the suggestion memo, the instance
document's ``service`` section and the CLI flags.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.master.conformance import (
    generate_case,
    normalize_audit,
    normalize_outcome,
    run_monitor_path,
    run_service_path,
    store_factories,
)
from repro import CerFix
from repro.config import InstanceConfig
from repro.errors import ValidationError
from repro.explorer.cli import build_parser
from repro.explorer.web import CerFixWebApp
from repro.master.store import SingleRelationStore
from repro.relational.relation import Relation
from repro.scenarios import uk_customers as uk
from repro.service.app import classify_route
from repro.service.batcher import CoalescingMasterDataManager, ProbeBatcher, ProbeKeyer
from repro.service.cache import LRUMemo, MemoView, SharedProbeCache
from repro.service.limits import AdmissionController
from repro.service.loadgen import run_load
from repro.service.metrics import LatencyWindow, ServiceMetrics


def _request(url: str, method: str = "GET", body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@pytest.fixture()
def uk_workload():
    master = uk.generate_master(25, seed=11)
    wl = uk.generate_workload(master, 48, rate=0.2, seed=12)
    return master, wl


@pytest.fixture()
def server(uk_workload):
    master, _ = uk_workload
    engine = CerFix(uk.paper_ruleset(), master)
    srv = engine.serve_async(port=0)
    yield srv
    srv.close()


# ---------------------------------------------------------------------------
# Concurrent-session correctness: same fixes as the serial monitor
# ---------------------------------------------------------------------------


def test_concurrent_sessions_match_serial_monitor(uk_workload):
    """48 sessions at concurrency 16 produce, per tuple, the exact fixed
    values and audit events of the serial stream path."""
    master, wl = uk_workload
    serial_engine = CerFix(uk.paper_ruleset(), master)
    serial_engine.stream(wl.dirty, wl.clean)
    serial_audit = normalize_audit([e.to_json() for e in serial_engine.audit])

    engine = CerFix(uk.paper_ruleset(), master)
    server = engine.serve_async(port=0)
    try:
        rows = [r.to_dict() for r in wl.dirty.rows()]
        truth = [r.to_dict() for r in wl.clean.rows()]
        report = run_load(server.url, rows, truth, concurrency=16)
    finally:
        server.close()

    assert report.dropped == 0 and not report.errors
    names = wl.dirty.schema.names
    serial_rows = []
    for i, row in enumerate(wl.dirty.rows()):
        values = row.to_dict()
        for e in serial_engine.audit.by_tuple(f"t{i}"):
            values[e.attr] = e.new
        serial_rows.append(tuple(str(values[n]) for n in names))
    assert report.values_in_order(names) == serial_rows
    assert normalize_audit([e.to_json() for e in engine.audit]) == serial_audit


@pytest.mark.parametrize("backend", ["single", "sharded", "sqlite"])
def test_service_parity_across_backends(backend, tmp_path):
    """The ISSUE 4 differential guarantee, per store backend: concurrent
    service output is bit-identical to the serial monitor path."""
    case = generate_case(1001, scenario="uk", n=20)
    factories = store_factories(case, tmp_path)
    serial = normalize_outcome(run_monitor_path(case, factories[backend]()))
    service = run_service_path(case, factories[backend](), concurrency=8)
    assert service.fixed_rows == serial.fixed_rows
    assert service.audit_events == serial.audit_events
    assert service.regions == serial.regions
    assert service.report["completed"] == serial.report["completed"]


def test_duplicate_session_id_conflicts_under_concurrency(server):
    values = {k: str(v) for k, v in uk.fig3_tuple().items()}
    s1, _, _ = _request(f"{server.url}/api/sessions", "POST",
                        {"tuple_id": "dup", "values": values})
    s2, body, _ = _request(f"{server.url}/api/sessions", "POST",
                           {"tuple_id": "dup", "values": values})
    assert (s1, s2) == (201, 409)
    assert "already exists" in body["error"]
    status, body, _ = _request(f"{server.url}/api/sessions/dup", "DELETE")
    assert status == 200 and body["deleted"] == "dup"
    status, _, _ = _request(f"{server.url}/api/sessions/dup", "GET")
    assert status == 404


# ---------------------------------------------------------------------------
# Probe coalescing under contention
# ---------------------------------------------------------------------------


class _SlowCountingStore(SingleRelationStore):
    """A store whose probes are slow enough that concurrent misses pile
    up inside one batch window."""

    def __init__(self, relation, delay=0.005):
        super().__init__(relation)
        self.delay = delay
        self.probe_calls = 0
        self.batch_calls = 0

    def probe(self, rule, values, *, use_index=True):
        self.probe_calls += 1
        time.sleep(self.delay)
        return super().probe(rule, values, use_index=use_index)

    def probe_many(self, requests, *, use_index=True):
        self.batch_calls += 1
        return super().probe_many(requests, use_index=use_index)


def _loop_in_thread():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    return loop, thread


def test_probe_coalescing_collapses_identical_keys():
    """8 threads missing on the same key cost exactly one store probe;
    the other 7 attach to the in-flight future."""
    ruleset = uk.paper_ruleset()
    master = uk.paper_master()
    store = _SlowCountingStore(Relation(master.schema, master.tuples()))
    store.prebuild(ruleset)
    cache = SharedProbeCache(128)
    metrics = ServiceMetrics()
    batcher = ProbeBatcher(store, cache, window=0.02, max_batch=64, metrics=metrics)
    keyer = ProbeKeyer(ruleset)
    manager = CoalescingMasterDataManager(store, cache, batcher, keyer)

    loop, _thread = _loop_in_thread()
    batcher.bind_loop(loop)
    try:
        rule = next(r for r in ruleset if not r.is_constant)
        values = uk.fig3_truth()
        barrier = threading.Barrier(8)
        results = []

        def probe_once():
            barrier.wait()
            results.append(manager.match(rule, values))

        threads = [threading.Thread(target=probe_once) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        loop.call_soon_threadsafe(loop.stop)

    assert len(results) == 8
    assert all(r == results[0] for r in results)
    assert store.probe_calls == 1  # one store hit served all eight
    assert metrics.coalesced_probes == 7
    assert metrics.store_probes == 1
    # ... and the next call is a pure cache hit
    assert manager.match(rule, values) == results[0]
    assert cache.stats.hits >= 1


def test_coalescing_happens_under_real_service_contention(uk_workload):
    """Duplicate-heavy concurrent traffic exercises coalescing/batching
    through the full HTTP path."""
    master, wl = uk_workload
    engine = CerFix(uk.paper_ruleset(), master)
    # executor dispatch (sessions off-loop) is what makes misses
    # concurrent; a wide batch window makes them pile up deterministically
    server = engine.serve_async(port=0, batch_window_ms=5.0, dispatch="executor")
    try:
        rows = [r.to_dict() for r in wl.dirty.rows()] * 2  # duplicates
        truth = [r.to_dict() for r in wl.clean.rows()] * 2
        report = run_load(server.url, rows, truth, concurrency=24)
        service = server.service
        assert report.dropped == 0 and not report.errors
        stats = service.cache.stats
        assert stats.hits > 0 and stats.hit_rate > 0.3
        assert service.metrics.probe_batches > 0
        assert service.metrics.batched_misses == service.metrics.store_probes
    finally:
        server.close()


# ---------------------------------------------------------------------------
# Backpressure: the 429 path
# ---------------------------------------------------------------------------


def test_session_capacity_429_with_retry_after(uk_workload):
    master, _ = uk_workload
    engine = CerFix(uk.paper_ruleset(), master)
    server = engine.serve_async(port=0, max_sessions=2)
    try:
        values = {k: str(v) for k, v in uk.fig3_tuple().items()}
        for i in range(2):
            status, _, _ = _request(f"{server.url}/api/sessions", "POST",
                                    {"tuple_id": f"cap{i}", "values": values})
            assert status == 201
        status, body, headers = _request(f"{server.url}/api/sessions", "POST",
                                         {"tuple_id": "cap2", "values": values})
        assert status == 429
        assert "capacity" in body["error"]
        assert int(headers["Retry-After"]) >= 1
        assert body["retry_after"] == int(headers["Retry-After"])
        # deleting an active session frees a slot
        _request(f"{server.url}/api/sessions/cap0", "DELETE")
        status, _, _ = _request(f"{server.url}/api/sessions", "POST",
                                {"tuple_id": "cap2", "values": values})
        assert status == 201
        assert server.service.metrics.to_json()["requests"]["rejected_429"] == 1
    finally:
        server.close()


def test_backpressure_retries_drop_nothing(uk_workload):
    """An overloaded service (tiny limits, aggressive concurrency) sheds
    load with 429s, yet every session completes after retries."""
    master, wl = uk_workload
    engine = CerFix(uk.paper_ruleset(), master)
    server = engine.serve_async(port=0, max_sessions=4, max_session_pending=2)
    try:
        rows = [r.to_dict() for r in wl.dirty.rows()]
        truth = [r.to_dict() for r in wl.clean.rows()]
        report = run_load(server.url, rows, truth, concurrency=24)
        assert report.dropped == 0 and not report.errors
        assert report.retries_429 > 0  # backpressure actually fired
        metrics = server.service.metrics.to_json()
        assert metrics["requests"]["rejected_429"] == report.retries_429
        assert metrics["sessions"]["completed"] == len(rows)
    finally:
        server.close()


def test_admission_controller_bounds():
    ctl = AdmissionController(max_sessions=2, max_inflight=2, max_session_pending=1)
    assert ctl.enter_request().admitted and ctl.enter_request().admitted
    rejected = ctl.enter_request()
    assert not rejected.admitted and rejected.retry_after >= 1
    ctl.exit_request()
    assert ctl.enter_request().admitted
    assert ctl.enter_session_op("s").admitted
    assert not ctl.enter_session_op("s").admitted
    ctl.exit_session_op("s")
    assert ctl.enter_session_op("s").admitted
    # session slots are reservations: check-and-claim is atomic
    assert ctl.reserve_session().admitted and ctl.reserve_session().admitted
    third = ctl.reserve_session()
    assert not third.admitted and "capacity" in third.reason
    ctl.release_session()
    assert ctl.reserve_session().admitted
    assert ctl.active_sessions == 2
    with pytest.raises(ValueError):
        AdmissionController(max_sessions=0)


# ---------------------------------------------------------------------------
# Metrics endpoint schema
# ---------------------------------------------------------------------------


def test_metrics_endpoint_schema(server, uk_workload):
    _, wl = uk_workload
    rows = [r.to_dict() for r in wl.dirty.rows()][:8]
    truth = [r.to_dict() for r in wl.clean.rows()][:8]
    report = run_load(server.url, rows, truth, concurrency=4)
    assert report.dropped == 0
    status, metrics, _ = _request(f"{server.url}/api/metrics")
    assert status == 200
    assert set(metrics) >= {
        "requests", "sessions", "probes", "latency_ms",
        "probe_cache", "suggestion_memo", "limits",
    }
    assert metrics["requests"]["total"] >= report.requests
    assert metrics["requests"]["in_flight"] == 1  # the metrics request itself
    assert metrics["sessions"]["opened"] == 8
    assert metrics["sessions"]["completed"] == 8
    assert metrics["sessions"]["active"] == 0
    for key in ("hits", "misses", "hit_rate", "evictions", "size", "maxsize"):
        assert key in metrics["probe_cache"]
    for key in ("hits", "misses", "hit_rate", "size", "maxsize"):
        assert key in metrics["suggestion_memo"]
    for cls in ("open", "validate", "read", "other"):
        window = metrics["latency_ms"][cls]
        assert set(window) == {"count", "p50_ms", "p95_ms", "p99_ms", "mean_ms"}
    opened = metrics["latency_ms"]["open"]["count"]
    assert opened == 8
    assert metrics["limits"]["max_sessions"] == 256


def test_sync_webapp_shares_routing_table(uk_workload):
    """The sync explorer and the async service answer identically from
    the one RoutingCore, including the /api/metrics schema."""
    master, _ = uk_workload
    engine = CerFix(uk.paper_ruleset(), master)
    app = CerFixWebApp(engine)
    status, rules = app.handle("GET", "/api/rules", None)
    assert status == 200 and len(rules) == len(engine.ruleset)
    # session routes flow through the same table
    values = {k: str(v) for k, v in uk.fig3_tuple().items()}
    status, state = app.handle("POST", "/api/sessions", {"tuple_id": "x", "values": values})
    assert status == 201 and app.sessions["x"].tuple_id == "x"
    status, payload = app.handle("DELETE", "/api/sessions/x", None)
    assert status == 200 and "x" not in app.sessions


def test_sync_webapp_metrics_schema(uk_workload):
    """The serial explorer serves /api/metrics with the async schema:
    request/session counters and latency windows are live; the shared
    probe-cache / suggestion-memo / admission sections report empty."""
    master, _ = uk_workload
    engine = CerFix(uk.paper_ruleset(), master)
    app = CerFixWebApp(engine)
    values = {k: str(v) for k, v in uk.fig3_tuple().items()}
    status, _ = app.handle("POST", "/api/sessions", {"tuple_id": "m", "values": values})
    assert status == 201
    status, _ = app.handle("DELETE", "/api/sessions/m", None)
    assert status == 200
    status, metrics = app.handle("GET", "/api/metrics", None)
    assert status == 200
    assert set(metrics) >= {
        "requests", "sessions", "probes", "latency_ms",
        "probe_cache", "suggestion_memo", "limits", "dispatch",
    }
    assert metrics["dispatch"] == "serial"
    assert metrics["requests"]["total"] == 3  # open, delete, metrics
    assert metrics["sessions"]["opened"] == 1
    # dropping an unfinished session counts as an eviction
    assert metrics["sessions"]["evicted"] + metrics["sessions"]["completed"] == 1
    assert metrics["sessions"]["active"] == 0
    for key in ("hits", "misses", "hit_rate", "evictions", "size", "maxsize"):
        assert key in metrics["probe_cache"]
    for key in ("hits", "misses", "hit_rate", "size", "maxsize"):
        assert key in metrics["suggestion_memo"]
    for cls in ("open", "validate", "read", "other"):
        assert set(metrics["latency_ms"][cls]) == {
            "count", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
        }
    assert metrics["latency_ms"]["open"]["count"] == 1
    assert metrics["limits"]["max_sessions"] is None


# ---------------------------------------------------------------------------
# Shared caches and the suggestion memo
# ---------------------------------------------------------------------------


def test_shared_probe_cache_stats_are_race_free():
    cache = SharedProbeCache(64)
    sentinel = object()
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        for i in range(500):
            key = ("k", i % 16)
            if cache.get(key) is None:
                cache.put(key, sentinel)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = cache.stats
    assert stats.hits + stats.misses == 8 * 500  # no lost increments


def test_suggestion_memo_preserves_suggestions():
    """A memoised session suggests exactly what an unmemoised one does,
    and the second identical session hits the memo."""
    ruleset = uk.paper_ruleset()
    master = uk.paper_master()
    memo = LRUMemo(64)
    truth = uk.fig3_truth()

    def drive(suggestion_memo):
        engine = CerFix(ruleset, master)
        session = engine.session(uk.fig3_tuple(), "t", suggestion_memo=suggestion_memo)
        seen = []
        while not session.is_complete:
            suggestion = session.suggestion()
            if suggestion is None:
                break
            seen.append(tuple(suggestion.attrs))
            session.validate({a: truth[a] for a in suggestion.attrs})
        return seen, session.current_values()

    plain = drive(None)
    first = drive(memo)
    assert memo.stats.misses > 0
    second = drive(memo)
    assert plain == first == second
    assert memo.stats.hits >= len(second[0])


def test_memo_view_scopes_epochs():
    memo = LRUMemo(16)
    old, new = MemoView(memo, 0), MemoView(memo, 1)
    old.put("k", "old-value")
    assert old.get("k") == "old-value"
    assert new.get("k") is None  # epoch bump retires the entry
    new.put("k", "new-value")
    assert old.get("k") == "old-value"  # sessions on the old epoch unaffected


def test_regions_recompute_scopes_new_sessions(server):
    """Sessions opened after a regions recompute capture the new regions
    AND memoise under them — the memo token IS the captured tuple, so
    the two can never disagree (old sessions keep their own key space)."""
    service = server.service
    values = {k: str(v) for k, v in uk.fig3_tuple().items()}
    _request(f"{server.url}/api/sessions", "POST", {"tuple_id": "r1", "values": values})
    first = service.core.sessions["r1"]
    status, _, _ = _request(f"{server.url}/api/regions?k=1")
    assert status == 200
    _request(f"{server.url}/api/sessions", "POST", {"tuple_id": "r2", "values": values})
    second = service.core.sessions["r2"]
    assert second.regions == tuple(service.engine.regions)
    assert first.regions != second.regions  # r1 predates the recompute
    assert second._suggestion_memo._token == second.regions


# ---------------------------------------------------------------------------
# Config + CLI surface
# ---------------------------------------------------------------------------


def test_instance_service_section_validates():
    base = {
        "name": "x",
        "input_schema": {"name": "i", "attributes": [{"name": "a"}]},
        "master_schema": {"name": "m", "attributes": [{"name": "a"}]},
    }
    config = InstanceConfig.from_json(
        {**base, "service": {"max_sessions": 8, "batch_window_ms": 0.5}}
    )
    assert config.service == {"max_sessions": 8, "batch_window_ms": 0.5}
    assert config.to_json()["service"] == config.service
    with pytest.raises(ValidationError, match="unknown service option"):
        InstanceConfig.from_json({**base, "service": {"bogus": 1}})
    with pytest.raises(ValidationError, match="must be >= 1"):
        InstanceConfig.from_json({**base, "service": {"max_sessions": 0}})
    with pytest.raises(ValidationError, match="must be int"):
        InstanceConfig.from_json({**base, "service": {"cache_size": "lots"}})


def test_cli_serve_async_flags_parse():
    args = build_parser().parse_args(
        ["serve", "--async", "--max-sessions", "32", "--cache-size", "1024"]
    )
    assert args.use_async and args.max_sessions == 32 and args.cache_size == 1024
    args = build_parser().parse_args(["serve"])
    assert not args.use_async and args.max_sessions is None


def test_classify_route():
    assert classify_route("POST", ["api", "sessions"]) == ("open", None)
    assert classify_route("POST", ["api", "sessions", "s1", "validate"]) == ("validate", "s1")
    assert classify_route("GET", ["api", "sessions", "s1"]) == ("read", "s1")
    assert classify_route("DELETE", ["api", "sessions", "s1"]) == ("read", "s1")
    assert classify_route("GET", ["api", "rules"]) == ("other", None)
    assert classify_route("GET", []) == ("other", None)


def test_latency_window_percentiles():
    window = LatencyWindow(maxlen=10)
    assert window.to_json()["count"] == 0
    for ms in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
        window.record(ms / 1000)
    snap = window.to_json()
    assert snap["count"] == 10
    assert snap["p50_ms"] == pytest.approx(6.0, abs=1.01)
    assert snap["p99_ms"] == pytest.approx(10.0, abs=0.01)


def test_default_session_ids_survive_deletes(uk_workload):
    """The sync explorer's auto ids must not collide after DELETE
    shrinks the sessions dict (len()-based ids would repeat forever)."""
    master, _ = uk_workload
    app = CerFixWebApp(CerFix(uk.paper_ruleset(), master))
    values = {k: str(v) for k, v in uk.fig3_tuple().items()}
    open_body = {"values": values}
    assert app.handle("POST", "/api/sessions", open_body)[1]["tuple_id"] == "web0"
    assert app.handle("POST", "/api/sessions", open_body)[1]["tuple_id"] == "web1"
    assert app.handle("DELETE", "/api/sessions/web0", None)[0] == 200
    status, state = app.handle("POST", "/api/sessions", open_body)
    assert status == 201 and state["tuple_id"] == "web2"
    assert set(app.sessions) == {"web1", "web2"}


def test_completed_sessions_are_retained_boundedly(uk_workload):
    """Completed sessions stay readable up to completed_retention, then
    the oldest are evicted — memory stays bounded under sustained
    traffic, and the evicted fix survives in the audit log."""
    master, wl = uk_workload
    engine = CerFix(uk.paper_ruleset(), master)
    server = engine.serve_async(port=0, completed_retention=4)
    try:
        rows = [r.to_dict() for r in wl.dirty.rows()][:12]
        truth = [r.to_dict() for r in wl.clean.rows()][:12]
        report = run_load(server.url, rows, truth, concurrency=2)
        assert report.dropped == 0
        sessions = server.service.core.sessions
        assert len(sessions) <= 4
        # the oldest finished sessions are gone from the read surface...
        status, _, _ = _request(f"{server.url}/api/sessions/t0", "GET")
        assert status == 404
        # ...but their provenance is still in the audit log
        status, events, _ = _request(f"{server.url}/api/audit/t0", "GET")
        assert status == 200 and events
        assert len(server.service._session_locks) <= 4
    finally:
        server.close()


def test_unknown_session_ids_leave_no_lock_behind(server):
    for i in range(5):
        status, _, _ = _request(f"{server.url}/api/sessions/ghost{i}", "GET")
        assert status == 404
    assert not any(k.startswith("ghost") for k in server.service._session_locks)


def test_http_bad_requests(server):
    import http.client

    conn = http.client.HTTPConnection(server.host, server.port)
    conn.request("POST", "/api/sessions", body=b"{not json", headers={"Content-Type": "application/json"})
    resp = conn.getresponse()
    assert resp.status == 400
    assert b"not valid JSON" in resp.read()
    # keep-alive survives the bad body: the same connection still works
    conn.request("GET", "/api/rules")
    resp = conn.getresponse()
    assert resp.status == 200
    conn.close()
    # a malformed Content-Length answers 400, not a dropped socket
    conn = http.client.HTTPConnection(server.host, server.port)
    conn.request("GET", "/api/rules", headers={"Content-Length": "abc"})
    resp = conn.getresponse()
    assert resp.status == 400
    assert b"Content-Length" in resp.read()
    conn.close()
    status, payload, _ = _request(f"{server.url}/api/nope")
    assert status == 404 and "no route" in payload["error"]
