"""Unified telemetry layer: metrics registry, trace spans, propagation.

Pins the observability contracts the rest of the system leans on:

* the :class:`MetricsRegistry` instrument semantics and the
  ``cerfix.metrics.v1`` dump schema every surface re-exports;
* span-tree integrity — one connected trace across the batch
  pipeline's thread *and* process executors, and across a real
  ``cerfix shard-server`` subprocess via the ``X-Cerfix-Trace``
  header;
* tracing is observation only: a traced clean produces bit-identical
  fixes, reports and (trace-stamp-stripped) audit streams;
* per-store remote stats survive pickle rebuilds without leaking
  between independent stores.
"""

from __future__ import annotations

import gc
import json
import os
import pickle

import pytest

from repro import CerFix
from repro.master.conformance import (
    case_cluster,
    generate_case,
    run_batch_path,
    store_factories,
)
from repro.master.remote import RemoteMasterStore
from repro.master.shardserver import ShardCluster
from repro.obs import trace
from repro.obs.metrics import (
    BUCKET_BOUNDS_MS,
    MetricsRegistry,
    bucket_percentile,
    get_registry,
)
from repro.scenarios import uk_customers as uk


@pytest.fixture(autouse=True)
def _tracing_off():
    """No test may leak an enabled exporter into the next."""
    yield
    trace.disable()


@pytest.fixture(scope="module")
def world():
    master = uk.generate_master(30, seed=21)
    ruleset = uk.paper_ruleset()
    workload = uk.generate_workload(master, 30, rate=0.25, seed=22)
    return master, ruleset, workload


def _read_spans(path) -> list[dict]:
    with open(path, encoding="utf-8") as f:
        return [json.loads(line) for line in f if line.strip()]


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        assert reg.counter_value("c") == 5
        assert reg.counter_value("never-touched") == 0

    def test_gauge_set_and_default(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 7)
        assert reg.gauge_value("g") == 7
        assert reg.gauge_value("missing", 42) == 42
        reg.set_gauge("g", None)  # unset again
        assert reg.gauge_value("g", -1) == -1

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for seconds in (0.001, 0.002, 0.002, 0.5):
            h.observe(seconds)
        summary = h.to_json()
        assert summary["count"] == 4
        assert summary["max_ms"] == pytest.approx(500.0)
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert sum(summary["buckets"].values()) == 4

    def test_histogram_overflow_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(BUCKET_BOUNDS_MS[-1] / 1000 * 10)  # past the last bound
        assert h.to_json()["buckets"] == {"+inf": 1}

    def test_dump_schema(self):
        reg = MetricsRegistry()
        reg.inc("a.count")
        reg.set_gauge("a.level", 3)
        reg.observe("a.seconds", 0.01)
        dump = reg.dump()
        assert dump["schema"] == "cerfix.metrics.v1"
        assert dump["counters"] == {"a.count": 1}
        assert dump["gauges"] == {"a.level": 3}
        assert set(dump["histograms"]) == {"a.seconds"}
        assert dump["sources"] == {}
        json.dumps(dump)  # the whole snapshot must be JSON-able

    def test_source_weakly_held(self):
        class Owner:
            def stats(self):
                return {"alive": True}

        reg = MetricsRegistry()
        owner = Owner()
        reg.register_source("owner", owner.stats)
        assert reg.dump()["sources"] == {"owner": {"alive": True}}
        del owner
        gc.collect()
        assert reg.dump()["sources"] == {}  # dead ref pruned, not an error

    def test_source_last_registration_wins(self):
        reg = MetricsRegistry()
        reg.register_source("s", lambda: {"v": 1})
        reg.register_source("s", lambda: {"v": 2})
        assert reg.dump()["sources"]["s"] == {"v": 2}

    def test_source_exception_reported_not_raised(self):
        def bad():
            raise RuntimeError("backing store gone")

        reg = MetricsRegistry()
        reg.register_source("bad", bad)
        assert "backing store gone" in reg.dump()["sources"]["bad"]["error"]

    def test_global_registry_is_process_wide(self):
        assert get_registry() is get_registry()


class TestPercentileEdgeCases:
    """Regressions: zero- and single-observation percentiles."""

    def test_zero_observations_answer_zero(self):
        reg = MetricsRegistry()
        summary = reg.histogram("empty").to_json()
        assert summary["count"] == 0
        assert summary["p50_ms"] == summary["p95_ms"] == summary["p99_ms"] == 0.0
        assert summary["mean_ms"] == 0.0 and summary["max_ms"] == 0.0

    def test_single_observation_every_quantile_agrees(self):
        reg = MetricsRegistry()
        h = reg.histogram("one")
        h.observe(0.003)
        summary = h.to_json()
        assert summary["count"] == 1
        assert summary["p50_ms"] == summary["p95_ms"] == summary["p99_ms"]
        assert 0 < summary["p50_ms"] <= summary["max_ms"] * 1.0001

    def test_single_zero_observation(self):
        reg = MetricsRegistry()
        h = reg.histogram("zero")
        h.observe(0.0)
        summary = h.to_json()
        # clamped to the observed max: a 0ms observation answers 0ms,
        # not the first bucket's upper bound
        assert summary["p50_ms"] == summary["p99_ms"] == 0.0

    def test_bucket_percentile_never_exceeds_max(self):
        for q in (0.5, 0.95, 0.99):
            assert bucket_percentile([0, 1], 1, 0.07, q) == pytest.approx(0.07)
        assert bucket_percentile([], 0, 0.0, 0.99) == 0.0

    def test_overflow_bucket_quantile_is_observed_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("over")
        h.observe(BUCKET_BOUNDS_MS[-1] / 1000 * 10)
        summary = h.to_json()
        assert summary["p99_ms"] == summary["max_ms"]


class TestCallableGauges:
    def test_register_gauge_evaluated_at_dump(self):
        reg = MetricsRegistry()
        calls = []

        def level():
            calls.append(1)
            return 42.0

        reg.register_gauge("lazy", level)
        assert calls == []
        assert reg.dump()["gauges"]["lazy"] == 42.0
        assert len(calls) == 1

    def test_gauge_fn_errors_and_none_skipped(self):
        reg = MetricsRegistry()
        reg.register_gauge("broken", lambda: 1 / 0)
        reg.register_gauge("absent", lambda: None)
        assert reg.dump()["gauges"] == {}

    def test_last_registration_wins(self):
        reg = MetricsRegistry()
        reg.register_gauge("g", lambda: 1.0)
        reg.register_gauge("g", lambda: 2.0)
        assert reg.dump()["gauges"]["g"] == 2.0


class TestSnapshotHistory:
    def test_ring_is_bounded(self):
        reg = MetricsRegistry(history=3)
        for i in range(5):
            reg.record_snapshot(ts=float(i))
        assert [s["ts"] for s in reg.history()] == [2.0, 3.0, 4.0]

    def test_rates_need_two_snapshots(self):
        reg = MetricsRegistry()
        reg.record_snapshot(ts=0.0)
        assert reg.rates() == {"window_s": 0.0, "counters_per_s": {}, "histograms": {}}

    def test_counter_delta_rates(self):
        reg = MetricsRegistry()
        reg.inc("a", 10)
        reg.record_snapshot(ts=100.0)
        reg.inc("a", 30)
        reg.inc("b", 4)  # born inside the window: delta from 0
        reg.record_snapshot(ts=102.0)
        rates = reg.rates()
        assert rates["window_s"] == 2.0
        assert rates["counters_per_s"] == {"a": 15.0, "b": 2.0}

    def test_histogram_window_percentiles_are_delta(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for _ in range(100):
            h.observe(5.0)  # ancient slow history
        reg.record_snapshot(ts=0.0)
        for _ in range(100):
            h.observe(0.001)  # the window itself is fast
        reg.record_snapshot(ts=10.0)
        windowed = reg.rates()["histograms"]["lat"]
        assert windowed["count_per_s"] == 10.0
        assert windowed["p99_ms"] < 100.0  # lifetime p99 would be ~5000ms
        assert reg.histogram("lat").to_json()["p99_ms"] >= 5000.0

    def test_window_selects_oldest_inside(self):
        reg = MetricsRegistry()
        reg.inc("a", 1)
        reg.record_snapshot(ts=0.0)
        reg.inc("a", 1)
        reg.record_snapshot(ts=8.0)
        reg.inc("a", 2)
        reg.record_snapshot(ts=10.0)
        assert reg.rates(window_s=3.0)["counters_per_s"] == {"a": 1.0}
        assert reg.rates()["counters_per_s"] == {"a": 0.3}


# ---------------------------------------------------------------------------
# Trace primitives and propagation encodings
# ---------------------------------------------------------------------------


class TestTracePrimitives:
    def test_disabled_span_is_the_noop_singleton(self):
        assert trace.span("anything", attr=1) is trace.NOOP
        assert trace.current_ids() == (None, None)
        assert trace.carrier() is None
        assert trace.header_value() is None

    def test_header_roundtrip(self, tmp_path):
        trace.configure(tmp_path / "t.jsonl")
        with trace.span("root") as root:
            value = trace.header_value()
            car = trace.parse_header(value)
            assert car is not None
            assert (car.trace_id, car.span_id) == (root.trace_id, root.span_id)
            assert car.sampled is True

    @pytest.mark.parametrize(
        "value", [None, "", "a-b", "a-b-2", "--1", "a-b-1-c", "  "]
    )
    def test_parse_header_rejects_garbage(self, value):
        assert trace.parse_header(value) is None

    def test_carrier_is_picklable(self, tmp_path):
        trace.configure(tmp_path / "t.jsonl")
        with trace.span("root"):
            car = trace.carrier()
        clone = pickle.loads(pickle.dumps(car))
        assert clone == car

    def test_configure_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("CERFIX_TRACE", trace.env_value(str(path), 0.5))
        assert trace.configure_from_env() is True
        assert trace.enabled()
        assert trace.export_path() == str(path)

    def test_activate_none_is_noop(self):
        with trace.activate(None):
            assert trace.current_ids() == (None, None)

    def test_nested_spans_share_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        trace.disable()
        names = {s["name"] for s in _read_spans(path)}
        assert names == {"outer", "inner"}


class TestTraceRotation:
    def test_export_rotates_at_cap(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path, max_mb=200 / (1024 * 1024))  # ~1 record per file
        for i in range(20):
            with trace.span("work", i=i):
                pass
        trace.disable()
        rotated = path.with_name(path.name + ".1")
        assert rotated.exists()
        # the cap bounds BOTH files: live restarted small, one .1 kept
        assert path.stat().st_size <= 400
        assert rotated.stat().st_size <= 400
        # rotated-out records still parse (cerfix trace reads them)
        assert all(s["name"] == "work" for s in _read_spans(rotated))

    def test_max_mb_env_honoured(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("CERFIX_TRACE_MAX_MB", str(200 / (1024 * 1024)))
        monkeypatch.setenv("CERFIX_TRACE", str(path))
        trace.configure_from_env()
        for i in range(20):
            with trace.span("work", i=i):
                pass
        trace.disable()
        assert path.with_name(path.name + ".1").exists()

    def test_zero_cap_disables_rotation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path, max_mb=0)
        for i in range(20):
            with trace.span("work", i=i):
                pass
        trace.disable()
        assert not path.with_name(path.name + ".1").exists()
        assert len(_read_spans(path)) == 20


class TestSlowlog:
    def test_only_slow_spans_logged(self, tmp_path):
        import time as _time

        path = tmp_path / "slow.jsonl"
        trace.configure_slowlog(path, threshold_ms=5.0)
        with trace.span("fast"):
            pass
        with trace.span("slow"):
            _time.sleep(0.02)
        trace.disable()
        records = _read_spans(path)
        assert [r["name"] for r in records] == ["slow"]
        assert records[0]["slow_ms"] == 5.0
        assert records[0]["dur_ms"] >= 5.0

    def test_slowlog_ignores_sampling(self, tmp_path):
        import time as _time

        # sample=0: nothing exports to the trace file, but a slow span
        # must still reach the slowlog — it is exactly the span you
        # cannot afford to have sampled out.
        trace.configure(tmp_path / "t.jsonl", sample=0.0)
        slow_path = tmp_path / "slow.jsonl"
        trace.configure_slowlog(slow_path, threshold_ms=5.0)
        with trace.span("slow-unsampled"):
            _time.sleep(0.02)
        trace.disable()
        assert [r["name"] for r in _read_spans(slow_path)] == ["slow-unsampled"]
        # the sink opens lazily, so the sampled-out trace file was never created
        assert not (tmp_path / "t.jsonl").exists()

    def test_slowlog_env_roundtrip(self, tmp_path, monkeypatch):
        path = tmp_path / "slow.jsonl"
        monkeypatch.setenv("CERFIX_SLOW_SPAN", trace.slow_env_value(str(path), 25.0))
        assert trace.configure_from_env() is True
        assert trace.slowlog_path() == str(path)

    def test_slowlog_readable_by_tracecli(self, tmp_path, capsys):
        import time as _time

        from repro.obs import tracecli

        path = tmp_path / "slow.jsonl"
        trace.configure_slowlog(path, threshold_ms=5.0)
        with trace.span("slow-stage"):
            _time.sleep(0.02)
        trace.disable()
        spans = tracecli.load_spans(path)
        assert [s.name for s in spans] == ["slow-stage"]


# ---------------------------------------------------------------------------
# Span-tree integrity across executors
# ---------------------------------------------------------------------------


class TestSpanTree:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_batch_clean_yields_one_connected_trace(self, world, tmp_path, backend):
        master, ruleset, wl = world
        path = tmp_path / f"{backend}.jsonl"
        trace.configure(path)
        try:
            engine = CerFix(ruleset, master)
            result = engine.clean_relation(
                wl.dirty, wl.clean, workers=2, backend=backend
            )
        finally:
            trace.disable()
        assert result.report.completed == 30

        spans = _read_spans(path)
        assert {s["trace"] for s in spans} == {spans[0]["trace"]}
        roots = [s for s in spans if s["parent"] is None]
        assert [s["name"] for s in roots] == ["clean-run"]
        ids = {s["span"] for s in spans}
        orphans = [s for s in spans if s["parent"] is not None and s["parent"] not in ids]
        assert orphans == []
        names = {s["name"] for s in spans}
        assert {"clean-run", "plan", "shard", "group-chase"} <= names
        if backend == "process":
            assert len({s["pid"] for s in spans}) >= 2  # workers exported too

    def test_shard_server_subprocess_joins_the_trace(self, tmp_path, monkeypatch):
        case = generate_case(3, master_size=20, n=8)
        path = tmp_path / "remote.jsonl"
        # Spawned servers inherit the exporter through the environment —
        # exactly what `cerfix clean --trace` arranges for its children.
        monkeypatch.setenv("CERFIX_TRACE", trace.env_value(str(path), 1.0))
        with case_cluster(case, tmp_path, processes=True) as cluster:
            factories = store_factories(case, tmp_path, remote_urls=cluster.urls)
            trace.configure(path)
            try:
                store = factories["remote"]()
                try:
                    run_batch_path(case, store)
                finally:
                    store.close()
            finally:
                trace.disable()

        spans = _read_spans(path)
        roots = [s for s in spans if s["parent"] is None and s["name"] == "clean-run"]
        assert len(roots) == 1
        trace_id = roots[0]["trace"]
        # Handshake/fetch RPCs before the clean root their own traces;
        # the clean itself must produce server spans JOINED to its trace.
        server_spans = [
            s for s in spans if s["name"] == "shard-server" and s["trace"] == trace_id
        ]
        assert server_spans, "no shard-server span joined the clean-run trace"
        for s in server_spans:
            assert s["parent"] is not None  # joined via X-Cerfix-Trace
            assert s["pid"] != os.getpid()  # exported by the subprocess
        rpc_parents = {
            s["span"]
            for s in spans
            if s["name"] == "shard-rpc" and s["trace"] == trace_id
        }
        assert all(s["parent"] in rpc_parents for s in server_spans)


# ---------------------------------------------------------------------------
# Tracing is observation only
# ---------------------------------------------------------------------------


def _strip_stamps(events: list[dict]) -> list[dict]:
    return [
        {k: v for k, v in e.items() if k not in ("trace_id", "span_id")}
        for e in events
    ]


class TestTracingIsPure:
    def test_traced_clean_is_bit_identical(self, tmp_path):
        case = generate_case(11, master_size=20, n=12)
        factories = store_factories(case, tmp_path)

        plain = run_batch_path(case, factories["single"]())
        trace.configure(tmp_path / "t.jsonl")
        try:
            traced = run_batch_path(case, factories["single"]())
        finally:
            trace.disable()

        assert traced.fixed_rows == plain.fixed_rows
        assert traced.report == plain.report
        assert _strip_stamps(traced.audit_events) == _strip_stamps(plain.audit_events)
        # ... and the traced run's provenance actually points somewhere.
        stamped = [e for e in traced.audit_events if e.get("trace_id")]
        assert stamped
        assert {e["trace_id"] for e in stamped} == {stamped[0]["trace_id"]}

    def test_audit_stamps_omitted_when_disabled(self, tmp_path):
        case = generate_case(11, master_size=20, n=12)
        outcome = run_batch_path(case, store_factories(case, tmp_path)["single"]())
        assert all("trace_id" not in e for e in outcome.audit_events)


# ---------------------------------------------------------------------------
# Remote per-store stats: rebuild continuity without cross-store leaks
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster(world):
    master, ruleset, _ = world
    cluster = ShardCluster.in_process(ruleset, master, 3)
    yield cluster
    cluster.close()


def _total_round_trips(store: RemoteMasterStore) -> int:
    return sum(s["round_trips"] for s in store.stats()["per_shard"])


class TestRemoteStats:
    def test_rebuild_resumes_counters(self, cluster):
        store = RemoteMasterStore(cluster.urls)
        try:
            before = _total_round_trips(store)
            assert before > 0  # the handshake alone costs round trips
            clone = pickle.loads(pickle.dumps(store))
            try:
                # The clone's own handshake adds to the SAME counters —
                # a fork-safe reconnect does not zero the history.
                assert _total_round_trips(clone) > before
            finally:
                clone.close()
        finally:
            store.close()

    def test_independent_stores_are_isolated(self, cluster):
        a = RemoteMasterStore(cluster.urls)
        b = RemoteMasterStore(cluster.urls)
        try:
            b_before = _total_round_trips(b)
            assert a.relation is not None  # lazy shard fetch — RPCs on a only
            assert _total_round_trips(b) == b_before
        finally:
            a.close()
            b.close()

    def test_registry_dump_labels_shards_by_url(self, cluster):
        store = RemoteMasterStore(cluster.urls)
        try:
            source = get_registry().dump()["sources"]["remote_store"]
            urls = [s["url"] for s in source["per_shard"]]
            assert urls == list(cluster.urls)
        finally:
            store.close()
