"""Unit tests for CSV / JSON-lines I/O."""

import pytest

from repro.errors import RelationError
from repro.relational.csvio import read_csv, read_jsonl, write_csv, write_jsonl
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


@pytest.fixture()
def schema():
    return Schema("r", [Attribute("a", "int"), Attribute("b", "str")])


@pytest.fixture()
def rel(schema):
    return Relation(schema, [(1, "x"), (2, "EH8 4AH")])


class TestCSV:
    def test_roundtrip(self, rel, tmp_path):
        path = tmp_path / "r.csv"
        write_csv(rel, path)
        back = read_csv(path, schema=rel.schema)
        assert back.tuples() == rel.tuples()

    def test_schema_inferred_from_header(self, rel, tmp_path):
        path = tmp_path / "r.csv"
        write_csv(rel, path)
        back = read_csv(path)
        assert back.schema.names == ("a", "b")
        # inferred schemas are all-string
        assert back.row(0)["a"] == "1"

    def test_int_dtype_parsed(self, rel, tmp_path):
        path = tmp_path / "r.csv"
        write_csv(rel, path)
        back = read_csv(path, schema=rel.schema)
        assert back.row(0)["a"] == 1

    def test_dirty_int_kept_as_string(self, schema, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b\nnot_an_int,x\n", encoding="utf-8")
        back = read_csv(path, schema=schema)
        assert back.row(0)["a"] == "not_an_int"

    def test_column_order_free_with_schema(self, schema, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("b,a\nx,1\n", encoding="utf-8")
        back = read_csv(path, schema=schema)
        assert back.row(0).to_dict() == {"a": 1, "b": "x"}

    def test_extra_columns_ignored(self, schema, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b,zz\n1,x,ignored\n", encoding="utf-8")
        assert read_csv(path, schema=schema).row(0)["b"] == "x"

    def test_missing_column_raises(self, schema, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a\n1\n", encoding="utf-8")
        with pytest.raises(RelationError, match="missing"):
            read_csv(path, schema=schema)

    def test_empty_file_raises(self, schema, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(RelationError, match="empty"):
            read_csv(path, schema=schema)

    def test_short_row_raises(self, schema, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b\n1\n", encoding="utf-8")
        with pytest.raises(RelationError, match="fields"):
            read_csv(path, schema=schema)

    def test_values_with_commas_roundtrip(self, schema, tmp_path):
        rel = Relation(schema, [(1, "a, b, c")])
        path = tmp_path / "r.csv"
        write_csv(rel, path)
        assert read_csv(path, schema=schema).row(0)["b"] == "a, b, c"


class TestJSONL:
    def test_roundtrip(self, rel, tmp_path):
        path = tmp_path / "r.jsonl"
        write_jsonl(rel, path)
        back = read_jsonl(path, rel.schema)
        assert back.tuples() == rel.tuples()

    def test_blank_lines_skipped(self, schema, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"a": 1, "b": "x"}\n\n', encoding="utf-8")
        assert len(read_jsonl(path, schema)) == 1

    def test_bad_json_raises(self, schema, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text("{nope}\n", encoding="utf-8")
        with pytest.raises(RelationError, match="bad JSON"):
            read_jsonl(path, schema)

    def test_missing_attr_raises(self, schema, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"a": 1}\n', encoding="utf-8")
        with pytest.raises(RelationError):
            read_jsonl(path, schema)
