"""Bootstrapping a CerFix instance from data alone.

The demo assumes experts write editing rules (or that CFD/MD discovery
"algorithms are already in place"). This example runs the *whole*
bootstrap pipeline on a fresh domain:

1. generate trusted sample data (here: the hospital scenario's clean
   records plus matched provider pairs);
2. **discover** constant CFDs (vocabularies) and MDs (key
   correspondences) from the sample;
3. **derive** editing rules from the discovered constraints;
4. check consistency, save the whole thing as an **instance directory**
   (the demo's initialisation artefact);
5. reload the instance and clean a dirty stream with it.

Run with::

    python examples/bootstrap_from_data.py
"""

import tempfile

from repro import (
    CerFix,
    CertaintyMode,
    InstanceConfig,
    RuleSet,
    discover_constant_cfds,
    discover_mds,
    load_instance,
    save_instance,
)
from repro.rules.derive import editing_rules_from_cfds, editing_rules_from_md
from repro.scenarios import hospital


def main() -> None:
    # 1. trusted samples -----------------------------------------------------
    master = hospital.generate_master(50, seed=1)
    sample = hospital.clean_inputs_from_master(master, 300, seed=2)
    print(f"sample: {len(sample)} clean measure records, {len(master)} providers")

    # 2a. discover vocabularies as constant CFDs. Restricting the LHS to
    # the code attributes is the guard against overfitting: a key-like
    # LHS (provider_id) would memorise per-entity accidents, which the
    # consistency check would then reject.
    cfds = discover_constant_cfds(
        sample,
        max_lhs=1,
        min_support=3,
        lhs_candidates=["measure_code", "state", "county"],
        targets=["measure_name", "condition", "category", "state_name", "county_code"],
    )
    print(f"discovered {len(cfds)} constant CFDs, e.g.:")
    for cfd in cfds[:2]:
        print(f"  {cfd.render()[:100]}…")

    # 2b. discover MDs from matched pairs; one MD per key-like clause
    # (provider id, phone, zip, address) is emitted — pick the provider key.
    by_id = {r["provider_id"]: r for r in master.rows()}
    pairs = [(t.to_dict(), by_id[t["provider_id"]]) for t in sample.rows()][:120]
    mds = discover_mds(pairs, md_id="provider")
    print(f"\ndiscovered {len(mds)} MDs: {[m.md_id for m in mds]}")
    md = next(m for m in mds if m.md_id == "provider_provider_id")
    print(f"using: {md.render()[:110]}…")

    # 3. derive editing rules -------------------------------------------------
    rules = editing_rules_from_cfds(cfds) + editing_rules_from_md(md)
    ruleset = RuleSet(rules, hospital.INPUT_SCHEMA, hospital.MASTER_SCHEMA)
    print(f"\nderived {len(ruleset)} editing rules "
          f"({sum(1 for r in ruleset if r.is_constant)} constant-sourced)")

    # 4. consistency check + save the instance -----------------------------------
    engine = CerFix(ruleset, master, mode=CertaintyMode.ANCHORED)
    report = engine.check_consistency(samples=10)
    print(f"consistency: {report.is_consistent} "
          f"({len(report.ambiguities)} ambiguity warnings)")

    with tempfile.TemporaryDirectory() as tmp:
        config = InstanceConfig(
            "hospital-bootstrapped",
            hospital.INPUT_SCHEMA,
            hospital.MASTER_SCHEMA,
            mode=CertaintyMode.ANCHORED,
        )
        path = save_instance(tmp, config, master, ruleset)
        print(f"instance saved to {path}")

        # 5. reload and clean a dirty stream -------------------------------------
        engine2, config2 = load_instance(tmp)
        workload = hospital.generate_workload(master, 100, rate=0.25, seed=3)
        stream = engine2.stream(workload.dirty, workload.clean)
        print(f"\nreloaded instance {config2.name!r}: "
              f"{stream.completed}/{stream.tuples} certain fixes, "
              f"user {stream.user_share:.0%} / auto {stream.auto_share:.0%}")

        # every fix equals the ground truth
        mismatches = 0
        for i in range(len(workload.dirty)):
            values = workload.dirty.row(i).to_dict()
            for event in engine2.audit.by_tuple(f"t{i}"):
                values[event.attr] = event.new
            if values != workload.clean.row(i).to_dict():
                mismatches += 1
        print(f"fixes differing from ground truth: {mismatches}")


if __name__ == "__main__":
    main()
