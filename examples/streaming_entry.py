"""Point-of-entry monitoring with different user models.

CerFix "finds certain fixes for tuples at the point of data entry". This
example streams generated UK-customer transactions through the monitor
under three user models — the ideal oracle, a cautious user who
validates one attribute per round, and a selective user who ignores
suggestions and only answers about attributes they know — and shows that
the *fixes are identical* (certainty does not depend on user behaviour,
only the number of rounds does).

Run with::

    python examples/streaming_entry.py
"""

from repro import CerFix
from repro.explorer.render import format_table
from repro.monitor.user import CautiousUser, OracleUser, SelectiveUser
from repro.scenarios import uk_customers as uk


def run_stream(name, engine, workload, user_factory):
    report = engine.stream(workload.dirty, workload.clean, user_factory=user_factory)
    return (
        name,
        f"{report.completed}/{report.tuples}",
        f"{report.mean_rounds:.2f}",
        f"{report.user_share:.0%}",
        f"{report.auto_share:.0%}",
        f"{report.throughput:.0f}",
    )


def main() -> None:
    master = uk.generate_master(150, seed=10)
    workload = uk.generate_workload(master, 300, rate=0.25, seed=11)
    print(f"master: {len(master)} persons; stream: {len(workload.dirty)} dirty tuples "
          f"({workload.error_cells} corrupted cells)")

    rows = []
    engines = {}
    for name, factory in (
        ("oracle", lambda tid, truth: OracleUser(truth)),
        ("cautious (1/round)", lambda tid, truth: CautiousUser(truth, max_per_round=1)),
        ("selective", lambda tid, truth: SelectiveUser(
            truth, known={"AC", "phn", "type", "item", "zip", "FN", "LN"})),
    ):
        engine = CerFix(uk.paper_ruleset(), master)
        engines[name] = engine
        rows.append(run_stream(name, engine, workload, factory))

    print()
    print(format_table(
        ("user model", "certain fixes", "mean rounds", "user %", "auto %", "tuples/s"),
        rows,
        title="the same certain fixes, different interaction costs",
    ))

    # Certainty is user-independent: compare the fixed values cell by cell.
    def fixed_values(engine, i):
        values = workload.dirty.row(i).to_dict()
        for event in engine.audit.by_tuple(f"t{i}"):
            values[event.attr] = event.new
        return values

    mismatches = 0
    for i in range(len(workload.dirty)):
        baseline = fixed_values(engines["oracle"], i)
        for name in ("cautious (1/round)", "selective"):
            if fixed_values(engines[name], i) != baseline:
                mismatches += 1
    print(f"\ncross-model fix mismatches: {mismatches} (certain fixes are unique)")

    truth_tuples = workload.clean.tuples()
    oracle_fixed = [tuple(fixed_values(engines["oracle"], i)[a] for a in uk.INPUT_SCHEMA.names)
                    for i in range(len(workload.dirty))]
    print(f"fixes equal to ground truth: {sum(f == t for f, t in zip(oracle_fixed, truth_tuples))}"
          f"/{len(truth_tuples)}")


if __name__ == "__main__":
    main()
