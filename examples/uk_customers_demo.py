"""The paper's demonstration, end to end (Fig. 2, Fig. 3, Fig. 4).

Walks through everything the VLDB 2011 demo shows:

1. rule management — the nine editing rules ϕ1–ϕ9 and the automatic
   consistency check (Fig. 2);
2. the region finder's top-k certain regions (initial suggestions);
3. the data monitor fixing the Fig. 3 tuple in two rounds, with the
   'M.' → 'Mark' normalisation;
4. Example 1/2 — the zip-validated certain fix of the wrong area code,
   vs the CFD heuristic that wrongly rewrites the city;
5. data auditing (Fig. 4).

Run with::

    python examples/uk_customers_demo.py
"""

from repro import CerFix, CertaintyMode, Relation
from repro.audit.stats import tuple_trace
from repro.baselines.cfd_repair import GreedyCFDRepair
from repro.baselines.quality import evaluate_repair
from repro.explorer.render import format_table, highlight
from repro.scenarios import uk_customers as uk


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    master = uk.paper_master()
    engine = CerFix(
        uk.paper_ruleset(),
        master,
        mode=CertaintyMode.SCENARIO,
        scenario=uk.scenario_tuples(master),
    )

    # -- Fig. 2: rule management -------------------------------------------
    banner("Fig. 2 — editing rules and the automatic consistency check")
    print(format_table(
        ("id", "rule"),
        [(r.rule_id, r.render()) for r in engine.ruleset],
        max_width=70,
    ))
    report = engine.check_consistency()
    print()
    print(report.describe())

    # -- Region finder -------------------------------------------------------
    banner("Region finder — top-3 certain regions (initial suggestions)")
    for i, ranked in enumerate(engine.precompute_regions(k=3), start=1):
        print(f"  {i}. {ranked.render()}")

    # -- Fig. 3: the data monitor ---------------------------------------------
    banner("Fig. 3 — data monitor: certain fix in two rounds")
    truth = uk.fig3_truth()
    session = engine.session(uk.fig3_tuple(), "fig3")
    print("input:", highlight(session.current_values(), set(), set()))
    round_no = 0
    while not session.is_complete:
        suggestion = session.suggestion()
        round_no += 1
        print(f"\nround {round_no}: suggest {set(suggestion.attrs)} — {suggestion.rationale}")
        session.validate({a: truth[a] for a in suggestion.attrs})
        print(
            "state:",
            highlight(session.current_values(), set(), set(session.validated)),
        )
    print(f"\ncertain fix after {session.round_no} rounds ✓")

    # -- Example 1 / Example 2 -----------------------------------------------
    banner("Example 1 — constraint repair vs certain fixes")
    dirty = Relation(uk.INPUT_SCHEMA, [uk.example1_tuple()])
    truth_rel = Relation(uk.INPUT_SCHEMA, [uk.example1_truth()])
    print("dirty tuple:", uk.example1_tuple())
    repaired, changes = GreedyCFDRepair(uk.paper_cfds()).repair(dirty)
    print(f"CFD heuristic changes: {[(c.attr, c.old, '->', c.new) for c in changes]}")
    print("  quality:", evaluate_repair(dirty, repaired, truth_rel).describe())

    ext = CerFix(uk.paper_ruleset(extended=True), master)
    session2 = ext.session(uk.example1_tuple(), "ex1")
    session2.assure(["zip", "phn", "type", "item"])  # Example 2: zip is correct
    fixed = Relation(uk.INPUT_SCHEMA, [session2.fixed_values()])
    print(f"CerFix fix: AC -> {session2.fixed_values()['AC']}, "
          f"city stays {session2.fixed_values()['city']}")
    print("  quality:", evaluate_repair(dirty, fixed, truth_rel).describe())

    # -- Fig. 4: auditing -------------------------------------------------------
    banner("Fig. 4 — data auditing: per-cell provenance")
    for line in tuple_trace(engine.audit, "fig3"):
        print("  " + line)


if __name__ == "__main__":
    main()
