"""Deriving editing rules from CFDs and MDs.

"Editing rules can be either explicitly specified by the users, or
derived from integrity constraints, e.g., cfds and matching dependencies
[6] for which discovery algorithms are already in place." (paper §2)

This example derives rules both ways and shows they behave like their
sources: the constant CFD ψ (AC → city) becomes per-region constant
rules; an MD matching mobile phones becomes the paper's ϕ4/ϕ5.

Run with::

    python examples/derive_rules_from_cfds.py
"""

from repro import CerFix, RuleSet
from repro.explorer.render import format_table
from repro.rules.derive import editing_rules_from_cfds, editing_rules_from_md
from repro.rules.md import MatchingDependency, MDMatch
from repro.scenarios import uk_customers as uk


def main() -> None:
    master = uk.paper_master()

    # -- from constant CFDs ----------------------------------------------------
    cfds = uk.paper_cfds()
    cfd_rules = editing_rules_from_cfds(cfds)
    print(f"derived {len(cfd_rules)} constant rules from {cfds[0].cfd_id}:")
    print(format_table(
        ("id", "rule"),
        [(r.rule_id, r.render()) for r in cfd_rules[:5]] + [("...", "...")],
        max_width=64,
    ))

    # -- from an MD --------------------------------------------------------------
    md = MatchingDependency(
        "md_mobile",
        (MDMatch("phn", "Mphn", "digits"),),
        (("FN", "FN"), ("LN", "LN")),
    )
    md_rules = editing_rules_from_md(md)
    print(f"\nderived {len(md_rules)} rules from MD: {md.render()}")
    for r in md_rules:
        print("  " + r.render())

    # -- run them ------------------------------------------------------------------
    # A rule set mixing both derivations; note the MD rules need type
    # gating to be safe (the paper's phi4/phi5 add tp: type=2) — without
    # it they would fire on home-phone tuples too. We add the gate here.
    from repro.core.pattern import Eq, PatternTuple
    from dataclasses import replace

    gated = [replace(r, pattern=PatternTuple({"type": Eq("2")})) for r in md_rules]
    ruleset = RuleSet(cfd_rules + gated, uk.INPUT_SCHEMA, uk.MASTER_SCHEMA)
    engine = CerFix(ruleset, master)
    print(f"\nconsistency of the derived rule set: "
          f"{engine.check_consistency(samples=10).is_consistent}")

    t = uk.fig3_tuple()
    result = engine.chase_once(t, ["AC", "phn", "type"])
    print("\nchasing the Fig. 3 tuple with derived rules only:")
    for step in result.steps:
        print("  " + step.describe())
    assert result.values["FN"] == "Mark"
    assert result.values["city"] == "Dur"


if __name__ == "__main__":
    main()
