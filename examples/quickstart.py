"""Quickstart: certain fixes in ~40 lines.

Build a tiny master relation and two editing rules, then fix one dirty
tuple interactively. Run with::

    python examples/quickstart.py
"""

from repro import (
    CerFix,
    EditingRule,
    MasterColumn,
    MatchPair,
    Relation,
    RuleSet,
    Schema,
)

# 1. Schemas: input tuples (employee records being typed in) and master
#    data (the HR registry). They need not match.
input_schema = Schema("employee", ["emp_id", "name", "dept", "office"])
master_schema = Schema("registry", ["id", "full_name", "department", "room"])

# 2. Master data — assumed correct and complete.
master = Relation(
    master_schema,
    [
        ("E01", "Ada Lovelace", "Research", "B-201"),
        ("E02", "Grace Hopper", "Systems", "A-105"),
        ("E03", "Edsger Dijkstra", "Theory", "C-310"),
    ],
)

# 3. Editing rules: if the (validated) emp_id matches the registry,
#    the name / dept / office can be fixed with certainty.
rules = RuleSet(
    [
        EditingRule("r_name", (MatchPair("emp_id", "id"),), "name", MasterColumn("full_name")),
        EditingRule("r_dept", (MatchPair("emp_id", "id"),), "dept", MasterColumn("department")),
        EditingRule("r_office", (MatchPair("emp_id", "id"),), "office", MasterColumn("room")),
    ],
    input_schema,
    master_schema,
)

# 4. The engine bundles rule engine + master data manager + monitor + audit.
engine = CerFix(rules, master)
print(engine)
print("rules consistent:", engine.check_consistency().is_consistent)

# 5. A dirty tuple arrives at the point of data entry.
dirty = {"emp_id": "E02", "name": "G. Hoper", "dept": "Sysems", "office": "?"}
session = engine.session(dirty, "t1")

# The monitor suggests what to validate (emp_id is no rule's target, so
# the user must vouch for it).
suggestion = session.suggestion()
print("suggested:", suggestion.render())

# The user confirms the id is correct; every other attribute is then
# fixed automatically — and the fixes are *certain*.
session.assure(["emp_id"])
print("certain fix:", session.fixed_values())

# 6. The audit trail shows where each value came from.
for line in (e.describe() for e in session.audit.by_tuple("t1")):
    print("  ", line)
