"""Critical-data cleaning: hospital measure records (the 20%/80% regime).

The paper motivates certain fixes with critical data — "e.g., medical
data, in which a seemingly minor error may mean life or death". This
example runs the HOSP-shaped scenario: a 19-attribute measure record
schema, a provider registry as master data, and a rule set that is
mostly *derived from constant CFDs* (the measure-code and geography
vocabularies), reproducing the paper's headline that users validate
~20% of cells while CerFix fixes the other ~80%.

Run with::

    python examples/hospital_records.py
"""

from repro import CerFix
from repro.audit.stats import attribute_stats, overall_stats
from repro.explorer.render import format_table
from repro.scenarios import hospital


def main() -> None:
    master = hospital.generate_master(60, seed=1)
    ruleset = hospital.hospital_ruleset()
    engine = CerFix(ruleset, master)

    print(f"provider registry: {len(master)} hospitals")
    print(f"editing rules: {len(ruleset)} "
          f"({sum(1 for r in ruleset if r.is_constant)} derived from constant CFDs)")
    report = engine.check_consistency(samples=10)
    print(f"rules consistent: {report.is_consistent}")

    # One record, narrated -----------------------------------------------------
    workload = hospital.generate_workload(master, 200, rate=0.25, seed=2)
    dirty = workload.dirty.row(0).to_dict()
    truth = workload.clean.row(0).to_dict()
    wrong = sorted(a for a in dirty if dirty[a] != truth[a])
    print(f"\nfirst record has {len(wrong)} corrupted cells: {wrong}")

    session = engine.session(dirty, "h0")
    suggestion = session.suggestion()
    print(f"monitor suggests validating {set(suggestion.attrs)}")
    session.validate({a: truth[a] for a in suggestion.attrs})
    assert session.is_complete
    assert session.fixed_values() == truth
    print(f"certain fix in {session.round_no} round; "
          f"{sum(1 for s in session.provenance.values() if s == 'rule')} cells fixed by CerFix")

    # The stream + the 20/80 claim ---------------------------------------------
    stream = engine.stream(workload.dirty, workload.clean)
    print(f"\nstream: {stream.completed}/{stream.tuples} certain fixes, "
          f"mean rounds {stream.mean_rounds:.2f}")
    print(f"user validated {stream.user_share:.0%} of cells; "
          f"CerFix fixed {stream.auto_share:.0%}  (paper: 20% / 80%)")

    # Fig. 4-style per-attribute report ------------------------------------------
    stats = attribute_stats(engine.audit, attrs=hospital.INPUT_SCHEMA.names)
    print()
    print(format_table(
        ("attribute", "by user", "by CerFix", "% auto"),
        [(s.attr, s.user_validations, s.rule_fixes, f"{s.pct_auto:.0f}%") for s in stats],
        title="per-attribute provenance",
    ))
    overall = overall_stats(engine.audit)
    print(f"\noverall: {overall.user_share:.0%} user / {overall.auto_share:.0%} CerFix "
          f"over {overall.validated_cells} cells in {overall.tuples} tuples")


if __name__ == "__main__":
    main()
