"""Master stores: pluggable backends behind the master data manager.

Every certain fix rests on one query shape — *probe the master relation
for an editing rule's match key and demand a unique correction value* —
and everything above the probe (chase, monitor, batch executor) is
agnostic to how the master tuples are stored. :class:`MasterStore` pins
that seam down as an interface with three backends:

``single``  :class:`SingleRelationStore`
    The original design: one in-memory :class:`Relation` with lazy
    :class:`~repro.relational.index.HashIndex` es. Right for master data
    that fits comfortably in one process.

``sharded``  :class:`ShardedMasterStore`
    The master relation's probe structures hash-partitioned by match
    key across N shards. Because every probe keys on one rule's match
    columns, the normalised key routes the probe to exactly one shard;
    all master rows carrying that key live in the same shard, so a
    routed lookup returns exactly what a global index would — same
    global positions, same order. Partitions build lazily per index
    spec and per shard, so pickled copies (process-pool workers) carry
    only the raw tuples and rebuild just the shards their probes route
    to.

``sqlite``  :class:`SqliteMasterStore`
    An in-memory store whose content is snapshotted into a SQLite file.
    Batch runs survive process restarts with the master data itself,
    not just the shard outcomes in the checkpoint journal: a resumed
    run can reload the exact snapshot the journal fingerprint was
    computed against.

``remote``  :class:`~repro.master.remote.RemoteMasterStore`
    The sharded store's routing pointed at N shard-server *processes*
    (possibly on other hosts) speaking HTTP/JSON — see
    :mod:`repro.master.remote` and :mod:`repro.master.shardserver`.
    Probes cross the network; coalescing/batching through
    :meth:`MasterStore.probe_many` amortises real round trips.

The contract every backend obeys (the differential parity suite in
``tests/test_store_parity.py`` enforces it): given the same master
content, :meth:`MasterStore.probe` returns **bit-identical**
:class:`MasterMatch` results — same global row positions, in the same
order, same distinct-value order. Backends may only change speed and
residency, never output.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import MasterDataError
from repro.core.rule import EditingRule
from repro.core.ruleset import RuleSet
from repro.relational.index import HashIndex
from repro.relational.relation import Relation, _rebuild_relation
from repro.relational.schema import Schema, schema_from_json, schema_to_json

#: Backend names accepted wherever a store is selected by string
#: (CerFix, BatchCleaner, ``cerfix clean --store``, instance documents).
STORE_BACKENDS = ("single", "sharded", "sqlite", "remote")


@dataclass(frozen=True)
class MasterMatch:
    """The outcome of probing the master data for one rule.

    ``positions`` are the matching master row positions (always *global*
    positions in the canonical relation, whatever the backend);
    ``values`` the distinct correction values they carry for the rule's
    source column. The fix is certain only when ``len(values) == 1``
    (uniqueness gate); ``len(values) > 1`` is an ambiguity the
    consistency checker can also surface statically.
    """

    positions: tuple[int, ...]
    values: tuple[Any, ...]

    @property
    def is_empty(self) -> bool:
        return not self.positions

    @property
    def is_unique(self) -> bool:
        return len(self.values) == 1

    @property
    def value(self) -> Any:
        if not self.is_unique:
            raise MasterDataError(f"no unique correction value: {self.values!r}")
        return self.values[0]


def require_scalar_cells(values: Iterable[Any], context: str) -> None:
    """Reject cell values that do not round-trip JSON losslessly.

    Shared by every store that serialises master content (the sqlite
    snapshot, the shard-server wire protocol): anything but a JSON
    scalar must fail loudly at the boundary rather than come back
    silently altered.
    """
    for v in values:
        if v is not None and not isinstance(v, (str, int, float, bool)):
            raise MasterDataError(
                f"cannot serialise cell value {v!r} ({context}): "
                f"only JSON scalar values round-trip losslessly"
            )


def _relation_digest(relation: Relation) -> str:
    digest = hashlib.sha256()
    digest.update(repr(tuple(relation.schema.names)).encode("utf-8"))
    for t in relation.tuples():
        digest.update(repr(t).encode("utf-8"))
    return digest.hexdigest()


def _distinct_in_position_order(
    relation: Relation, source_col: int, positions: Sequence[int]
) -> tuple[Any, ...]:
    """Distinct correction values in first-occurrence (position) order —
    the order every backend must reproduce for bit-identical matches."""
    raw = relation.raw_tuples()
    distinct: list[Any] = []
    for pos in positions:
        v = raw[pos][source_col]
        if v not in distinct:
            distinct.append(v)
    return tuple(distinct)


def _scan_positions(relation: Relation, rule: EditingRule, key: tuple) -> list[int]:
    """Index-free probe over the canonical relation (the E6 ablation);
    shared by every backend so the scan path cannot diverge."""
    probe = HashIndex(rule.m_attrs, rule.ops)
    target = probe.key_of(key)
    positions = [relation.schema.position(a) for a in rule.m_attrs]
    out = []
    for i, t in enumerate(relation.raw_tuples()):
        if probe.key_of(tuple(t[p] for p in positions)) == target:
            out.append(i)
    return out


class MasterStore:
    """Abstract master-data backend.

    Concrete stores keep the canonical relation reachable as
    :attr:`relation` (diagnostics, certainty analysis and master updates
    read whole columns), and serve the one probe shape through
    :meth:`probe`. ``rule.source`` is always a
    :class:`~repro.core.rule.MasterColumn` here — constant rules never
    reach a store (the manager short-circuits them).
    """

    backend = "abstract"

    #: True for backends whose probes perform blocking I/O (network
    #: round trips). The service's probe micro-batcher moves such
    #: :meth:`probe_many` calls off the event loop onto an executor.
    io_bound = False

    #: The canonical master relation, in global position order.
    relation: Relation

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def __len__(self) -> int:
        return len(self.relation)

    # -- probing (must be overridden or routed) ---------------------------

    def probe(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        raise NotImplementedError

    def probe_many(
        self,
        requests: Sequence[tuple[EditingRule, Mapping[str, Any]]],
        *,
        use_index: bool = True,
    ) -> list[MasterMatch]:
        """Answer a batch of probes in one call (request order preserved).

        The entry service's micro-batcher funnels concurrent cache
        misses through this method so a store crosses the manager/store
        boundary once per batch instead of once per probe. The default
        implementation loops over :meth:`probe`; backends with cheaper
        grouped access (e.g. per-shard routing, one SQL round trip) can
        override it — results must stay bit-identical to per-probe calls.
        """
        return [self.probe(rule, values, use_index=use_index) for rule, values in requests]

    def _match_at(self, rule: EditingRule, positions: tuple[int, ...]) -> MasterMatch:
        """Assemble the :class:`MasterMatch` for already-found positions —
        the one place the distinct-value ordering is defined, so backends
        cannot diverge on it."""
        col = self.schema.position(rule.source.name)  # type: ignore[union-attr]
        return MasterMatch(
            positions=positions,
            values=_distinct_in_position_order(self.relation, col, positions),
        )

    def _scan_probe(self, rule: EditingRule, key: tuple) -> MasterMatch:
        return self._match_at(rule, tuple(_scan_positions(self.relation, rule, key)))

    def _ambiguities(
        self, rule: EditingRule, duplicate_keys: Mapping[tuple, Sequence[int]]
    ) -> dict[tuple, tuple[Any, ...]]:
        """Filter duplicate keys down to those whose rows disagree on the
        correction value (shared ambiguity rendering for all backends)."""
        col = self.schema.position(rule.source.name)  # type: ignore[union-attr]
        raw = self.relation.raw_tuples()
        out: dict[tuple, tuple[Any, ...]] = {}
        for key, positions in duplicate_keys.items():
            values = {raw[p][col] for p in positions}
            if len(values) > 1:
                out[key] = tuple(sorted(map(str, values)))
        return out

    # -- index lifecycle ---------------------------------------------------

    def prebuild(self, ruleset: RuleSet) -> None:
        """Eagerly build every probe structure the rule set will touch.

        Required before multi-threaded probing (lazy builds are not
        synchronised across stores' internals beyond their own locks);
        optional otherwise.
        """
        raise NotImplementedError

    def prepare_worker(self, ruleset: RuleSet) -> None:
        """Backend hook for a freshly unpickled process-pool worker.

        Default: same as :meth:`prebuild` (a worker probes from one
        thread, but the single store's indexes were stripped by pickling
        and eager rebuild moves the cost out of the first fix). Stores
        that can rebuild selectively override this to stay lazy.
        """
        self.prebuild(ruleset)

    # -- diagnostics -------------------------------------------------------

    def ambiguous_keys(self, rule: EditingRule) -> dict[tuple, tuple[Any, ...]]:
        """Keys of ``rule``'s master index whose matches disagree on the
        correction value (the static ambiguity diagnostic)."""
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        """Backend-shaped residency/probe statistics (for reports/UIs)."""
        return {"backend": self.backend, "tuples": len(self)}

    # -- maintenance -------------------------------------------------------

    def apply_update(
        self,
        add: Iterable[Mapping[str, Any]] = (),
        remove: Iterable[int] = (),
    ) -> tuple[int, int]:
        """Apply master-data changes; returns ``(added, removed)``.

        Mutating through the store (not the raw relation) lets backends
        keep derived structures and persistence in sync.
        """
        removed = sorted(set(remove))
        if removed:
            self.relation.delete_rows(removed)
        added = [dict(r) for r in add]
        if added:
            self.relation.extend(added)
        return len(added), len(removed)

    def content_digest(self) -> str:
        """SHA-256 over schema + tuples: identifies master *content*.

        Backend-independent by design — a checkpoint journal written
        against one backend stays resumable under another as long as the
        master tuples are the same.
        """
        return _relation_digest(self.relation)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.relation!r})"


class SingleRelationStore(MasterStore):
    """The original backend: one relation, lazy global hash indexes.

    Probe results are memoised per ``(rule, raw key)``: master data is
    static between updates, so a repeated probe (the monitor stream
    re-entering the same population, a chase re-testing a rule each
    sweep) is a dict hit instead of normalise + index lookup + distinct-
    value assembly. The memo is validated against the relation's
    mutation version on every probe, so any write — through the store or
    directly to the relation — invalidates it."""

    backend = "single"

    _MEMO_MAX = 65536

    def __init__(self, relation: Relation):
        self.relation = relation
        self._probe_memo: dict = {}
        self._memo_version = relation._version

    def __getstate__(self) -> dict:
        # The memo is a derived cache; shipping it to process-pool
        # workers would dwarf the relation itself.
        return {"relation": self.relation}

    def __setstate__(self, state: dict) -> None:
        self.relation = state["relation"]
        self._probe_memo = {}
        self._memo_version = self.relation._version

    def probe(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        key = tuple(values[a] for a in rule.lhs_attrs)
        memo = self._probe_memo
        if self._memo_version != self.relation._version:
            memo.clear()
            self._memo_version = self.relation._version
        # Two-level memo: the outer dict is keyed by id(rule) — hashing
        # the rule dataclass itself costs more than the probe it saves —
        # with the rule kept alive in the entry so the id cannot be
        # recycled while the entry exists.
        entry = memo.get(id(rule))
        if entry is None or entry[0] is not rule:
            inner: dict = {}
            memo[id(rule)] = (rule, inner)
        else:
            inner = entry[1]
        try:
            hit = inner.get((key, use_index))
        except TypeError:  # unhashable cell value: probe uncached
            hit = None
            key_hashable = False
        else:
            key_hashable = True
        if hit is not None:
            return hit
        if not use_index:
            match = self._scan_probe(rule, key)
        else:
            index = self.relation.index_on(rule.m_attrs, rule.ops)
            match = self._match_at(rule, tuple(index.lookup(key)))
        if key_hashable:
            if len(inner) >= self._MEMO_MAX:
                inner.clear()
            inner[(key, use_index)] = match
        return match

    def prebuild(self, ruleset: RuleSet) -> None:
        for attrs, ops in ruleset.index_specs():
            self.relation.index_on(attrs, ops)

    def ambiguous_keys(self, rule: EditingRule) -> dict[tuple, tuple[Any, ...]]:
        index = self.relation.index_on(rule.m_attrs, rule.ops)
        return self._ambiguities(rule, index.duplicate_keys())


def shard_of(key: tuple, n_shards: int) -> int:
    """Deterministic shard routing for one normalised match key.

    Uses a content hash (not Python's randomised ``hash()``) so routing
    agrees across processes and interpreter runs — process-pool workers
    and journal resumes must route a key to the same shard the parent
    would.
    """
    if n_shards == 1:
        return 0
    h = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(h, "big") % n_shards


class _SpecPartition:
    """One index spec's rows, hash-partitioned by normalised key.

    The partitioning pass is one O(|master|) sweep that deals each row's
    normalised key into its shard bucket; per-shard lookup dicts then
    build lazily on first probe of that shard, so a process-pool worker
    whose probes route to two shards never pays for the other N-2.
    Within a bucket, rows keep global position order — that is what
    makes a routed lookup byte-identical to a global index lookup.
    """

    __slots__ = ("attrs", "ops", "n_shards", "_normalizer", "_buckets", "_indexes")

    def __init__(self, relation: Relation, attrs: tuple[str, ...], ops: tuple[str, ...], n_shards: int):
        self.attrs = attrs
        self.ops = ops
        self.n_shards = n_shards
        self._normalizer = HashIndex(attrs, ops)  # key normalisation only
        #: per shard: list of (normalised key, global position), in order
        self._buckets: list[list[tuple[tuple, int]]] = [[] for _ in range(n_shards)]
        #: per shard: key -> [global positions], built lazily from the bucket
        self._indexes: list[dict[tuple, list[int]] | None] = [None] * n_shards
        cols = [relation.schema.position(a) for a in attrs]
        for pos, t in enumerate(relation.raw_tuples()):
            key = self._normalizer.key_of(tuple(t[c] for c in cols))
            self._buckets[shard_of(key, n_shards)].append((key, pos))

    def key_of(self, raw: Sequence[Any]) -> tuple:
        return self._normalizer.key_of(raw)

    def index_for(self, shard_id: int) -> dict[tuple, list[int]]:
        index = self._indexes[shard_id]
        if index is None:
            index = {}
            for key, pos in self._buckets[shard_id]:
                index.setdefault(key, []).append(pos)
            self._indexes[shard_id] = index
        return index

    def build_all(self) -> None:
        for shard_id in range(self.n_shards):
            self.index_for(shard_id)

    def built_shards(self) -> int:
        return sum(1 for i in self._indexes if i is not None)

    def rows_by_shard(self) -> list[int]:
        return [len(b) for b in self._buckets]

    def duplicate_keys(self) -> dict[tuple, list[int]]:
        out: dict[tuple, list[int]] = {}
        for shard_id in range(self.n_shards):
            for key, positions in self.index_for(shard_id).items():
                if len(positions) > 1:
                    out[key] = positions
        return out


class ShardedMasterStore(MasterStore):
    """Master probe structures hash-partitioned by match key.

    ``shards`` fixes the partition count. Each rule's index spec
    ``(match attrs, match ops)`` gets its own partition of the relation:
    the same row generally lands in different shards under different
    specs, because each spec routes by *its* match key — exactly the
    property that lets a probe touch one shard and still see every row
    carrying its key.

    Probing is bit-identical to :class:`SingleRelationStore` (the parity
    suite pins this): positions come back in global order because shard
    buckets preserve it, and a key's rows can never straddle shards.

    Pickling ships only ``(schema, tuples, shards)`` — partitions and
    per-shard lookup dicts are derived caches that rebuild lazily, so a
    process-pool worker materialises only the shards its probes route
    to.
    """

    backend = "sharded"

    def __init__(self, relation: Relation, shards: int = 4):
        if shards < 1:
            raise MasterDataError(f"shard count must be >= 1, got {shards}")
        self.relation = relation
        self.shards = shards
        self._partitions: dict[tuple, _SpecPartition] = {}
        self._probes_by_shard = [0] * shards
        self._lock = threading.Lock()

    def __reduce__(self):
        return (_rebuild_sharded, (self.schema, self.relation.tuples(), self.shards))

    def _partition(self, attrs: tuple[str, ...], ops: tuple[str, ...]) -> _SpecPartition:
        spec = (attrs, ops)
        part = self._partitions.get(spec)
        if part is None:
            with self._lock:
                part = self._partitions.get(spec)
                if part is None:
                    part = _SpecPartition(self.relation, attrs, ops, self.shards)
                    self._partitions[spec] = part
        return part

    def probe(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        if not use_index:
            return self._scan_probe(rule, tuple(values[a] for a in rule.lhs_attrs))
        match = self.probe_routed(rule, values)[1]
        assert match is not None  # no expect_shard -> always probed
        return match

    def route(self, rule: EditingRule, values: Mapping[str, Any]) -> int:
        """The shard id ``rule``'s probe against ``values`` routes to.

        The client side of the remote store and the shard server both
        compute routing through this method (or :meth:`probe_routed`),
        so a request can never be *served* by a shard the client would
        not have *sent* it to — disagreement surfaces as a loud
        misroute, never a wrong answer.
        """
        part = self._partition(rule.m_attrs, rule.ops)
        key = tuple(values[a] for a in rule.lhs_attrs)
        return shard_of(part.key_of(key), self.shards)

    def probe_routed(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
        expect_shard: int | None = None,
    ) -> tuple[int, MasterMatch | None]:
        """Route and probe with one key normalisation: ``(shard, match)``.

        The shard server's hot path — it must both verify the routing
        and answer the probe, and normalising the key twice (once in
        :meth:`route`, again in :meth:`probe`) would double the
        per-probe normaliser work. With ``expect_shard`` set, a key
        routing elsewhere returns ``(shard, None)`` *without* probing:
        a misrouted request must not lazily build (and retain) another
        shard's index on this server, nor touch index structures from
        handler threads that are only ever supposed to read them.
        """
        key = tuple(values[a] for a in rule.lhs_attrs)
        if not use_index:
            # The scan ablation must not build the spec partition (an
            # O(|master|) sweep whose buckets it would never read) just
            # to learn the shard id — a throwaway normaliser is enough.
            normalised = HashIndex(rule.m_attrs, rule.ops).key_of(key)
            shard_id = shard_of(normalised, self.shards)
            if expect_shard is not None and shard_id != expect_shard:
                return shard_id, None
            return shard_id, self._scan_probe(rule, key)
        part = self._partition(rule.m_attrs, rule.ops)
        normalised = part.key_of(key)
        shard_id = shard_of(normalised, self.shards)
        if expect_shard is not None and shard_id != expect_shard:
            return shard_id, None
        # Unlocked bump: the counter is a diagnostic, and a GIL-atomic
        # list-element increment is accurate enough — taking the store
        # lock here would serialise every probe of every thread worker.
        self._probes_by_shard[shard_id] += 1
        return shard_id, self._match_at(
            rule, tuple(part.index_for(shard_id).get(normalised, ()))
        )

    def prebuild(self, ruleset: RuleSet) -> None:
        """Partition and build every shard of every spec — required
        before multi-threaded probing (the thread executor backend)."""
        for attrs, ops in ruleset.index_specs():
            self._partition(attrs, ops).build_all()

    def build_shard(self, ruleset: RuleSet, shard_id: int) -> int:
        """Partition every spec but build only ``shard_id``'s lookup
        dicts (what a shard server warms at startup: it will only ever
        be asked for keys routing to its own shard). Returns the number
        of per-spec shard indexes built."""
        if not 0 <= shard_id < self.shards:
            raise MasterDataError(
                f"shard id {shard_id} out of range for {self.shards} shards"
            )
        built = 0
        for attrs, ops in ruleset.index_specs():
            self._partition(attrs, ops).index_for(shard_id)
            built += 1
        return built

    def prepare_worker(self, ruleset: RuleSet) -> None:
        """Stay lazy: a worker probes single-threaded, and building
        nothing up front is what keeps unrouted shards unbuilt."""

    def ambiguous_keys(self, rule: EditingRule) -> dict[tuple, tuple[Any, ...]]:
        part = self._partition(rule.m_attrs, rule.ops)
        return self._ambiguities(rule, part.duplicate_keys())

    def apply_update(self, add=(), remove=()) -> tuple[int, int]:
        counts = super().apply_update(add, remove)
        self._partitions.clear()  # derived caches: rebuild against new content
        return counts

    def stats(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "tuples": len(self),
            "shards": self.shards,
            "specs_partitioned": len(self._partitions),
            "shard_indexes_built": sum(p.built_shards() for p in self._partitions.values()),
            "probes_by_shard": list(self._probes_by_shard),
        }

    def __repr__(self) -> str:
        return f"ShardedMasterStore({self.relation!r}, shards={self.shards})"


def _rebuild_sharded(schema: Schema, tuples: list[tuple], shards: int) -> "ShardedMasterStore":
    return ShardedMasterStore(_rebuild_relation(schema, tuples), shards)


# -- sqlite snapshots ---------------------------------------------------------


class SqliteMasterStore(MasterStore):
    """An in-memory store persisted as a SQLite snapshot.

    Probing runs against the in-memory relation (SQL cannot apply the
    match-operator normalisers, and the probe path must stay
    bit-identical to the other backends); SQLite supplies durability:
    the snapshot — schema, rows in position order, and the content
    digest — survives process restarts, so a journal-resumed batch run
    can reload exactly the master data its checkpoints were computed
    against.

    ``SqliteMasterStore(path, relation=rel)`` writes (or refreshes) the
    snapshot; ``SqliteMasterStore(path)`` loads it. Updates through
    :meth:`apply_update` write through to the file.

    Cell values must be JSON scalars (str/int/float/bool/None) — the
    only values that round-trip the snapshot losslessly. Anything else
    is rejected loudly at save time rather than silently altered, and
    a load re-verifies the recorded content digest, so a snapshot can
    never resurrect master data that differs from what was saved.
    """

    backend = "sqlite"

    def __init__(self, path: str | Path, relation: Relation | None = None):
        self.path = Path(path)
        self._digest: str | None = None
        if relation is not None:
            self.relation = relation
            self.save()
        else:
            self.relation = self._load()
        self._inner = SingleRelationStore(self.relation)

    def __reduce__(self):
        # Ship content, not the file handle: a process-pool worker on the
        # same host could re-read the file, but shipping the tuples keeps
        # the probe path identical on hosts where the path is absent.
        return (
            _rebuild_sqlite,
            (str(self.path), self.schema, self.relation.tuples()),
        )

    # -- persistence -------------------------------------------------------

    def _encode_row(self, pos: int, row: tuple) -> str:
        require_scalar_cells(row, f"master row {pos}")
        return json.dumps(list(row))

    def save(self) -> None:
        """Write the current relation as the snapshot (atomic replace)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # No connection outlives the call: the store must stay picklable
        # and must never hold the file open across a worker fork.
        digest = self.content_digest()
        # Encode (and validate) every row before touching the file, so a
        # rejected value cannot leave a half-written snapshot behind.
        payload = [
            (pos, self._encode_row(pos, t))
            for pos, t in enumerate(self.relation.tuples())
        ]
        conn = sqlite3.connect(self.path)
        try:
            with conn:  # one transaction: the old snapshot or the new one
                conn.execute("DROP TABLE IF EXISTS cerfix_meta")
                conn.execute("DROP TABLE IF EXISTS cerfix_master")
                conn.execute("CREATE TABLE cerfix_meta (key TEXT PRIMARY KEY, value TEXT)")
                conn.execute("CREATE TABLE cerfix_master (pos INTEGER PRIMARY KEY, row TEXT)")
                conn.execute(
                    "INSERT INTO cerfix_meta VALUES ('schema', ?)",
                    (json.dumps(schema_to_json(self.schema)),),
                )
                conn.execute("INSERT INTO cerfix_meta VALUES ('digest', ?)", (digest,))
                conn.executemany("INSERT INTO cerfix_master VALUES (?, ?)", payload)
        finally:
            conn.close()
        self._digest = digest

    def _load(self) -> Relation:
        if not self.path.exists():
            raise MasterDataError(f"no master snapshot at {self.path}")
        conn = sqlite3.connect(self.path)
        try:
            (schema_json,) = conn.execute(
                "SELECT value FROM cerfix_meta WHERE key = 'schema'"
            ).fetchone()
            stored = conn.execute(
                "SELECT value FROM cerfix_meta WHERE key = 'digest'"
            ).fetchone()
            rows = conn.execute("SELECT row FROM cerfix_master ORDER BY pos").fetchall()
        except (sqlite3.Error, TypeError) as exc:
            raise MasterDataError(f"cannot read master snapshot {self.path}: {exc}") from None
        finally:
            conn.close()
        try:
            schema = schema_from_json(json.loads(schema_json))
            relation = Relation(schema, [tuple(json.loads(r)) for (r,) in rows])
        except (ValueError, KeyError, TypeError) as exc:
            # Truncated/hand-edited snapshots must fail as loudly as a
            # missing one, through the error type the CLI prettifies.
            raise MasterDataError(
                f"cannot read master snapshot {self.path}: corrupt payload ({exc})"
            ) from None
        # Verify the recorded digest against the reloaded content: a
        # snapshot must never resurrect master data that differs from
        # what was saved (the journal fingerprint depends on it).
        digest = _relation_digest(relation)
        if stored is None or stored[0] != digest:
            raise MasterDataError(
                f"master snapshot {self.path} failed its content-digest check "
                f"(recorded {stored[0] if stored else None!r}, reloaded {digest!r})"
            )
        self._digest = digest
        return relation

    def stored_digest(self) -> str | None:
        """The content digest recorded in the snapshot file, if any."""
        if not self.path.exists():
            return None
        conn = sqlite3.connect(self.path)
        try:
            row = conn.execute(
                "SELECT value FROM cerfix_meta WHERE key = 'digest'"
            ).fetchone()
        except sqlite3.Error:
            return None
        finally:
            conn.close()
        return row[0] if row else None

    # -- delegation to the in-memory probe path ---------------------------

    def probe(self, rule, values, *, use_index: bool = True) -> MasterMatch:
        return self._inner.probe(rule, values, use_index=use_index)

    def prebuild(self, ruleset: RuleSet) -> None:
        self._inner.prebuild(ruleset)

    def ambiguous_keys(self, rule: EditingRule) -> dict[tuple, tuple[Any, ...]]:
        return self._inner.ambiguous_keys(rule)

    def apply_update(self, add=(), remove=()) -> tuple[int, int]:
        # Validate the incoming cells *before* mutating: a rejected value
        # must not leave the in-memory relation diverged from the snapshot
        # (save() would raise after the relation already grew).
        added = [dict(r) for r in add]
        for r in added:
            require_scalar_cells(r.values(), "master update")
        counts = super().apply_update(added, remove)
        self.save()  # write-through: the snapshot tracks the live relation
        return counts

    def stats(self) -> dict[str, Any]:
        # The cached digest tracks save()/load() exactly, so the status
        # path never touches the file (it can be polled by a UI).
        if self._digest is None:
            self._digest = self.content_digest()
        return {
            "backend": self.backend,
            "tuples": len(self),
            "path": str(self.path),
            "persisted_digest": self._digest,
        }

    def __repr__(self) -> str:
        return f"SqliteMasterStore({str(self.path)!r}, {self.relation!r})"


def _rebuild_sqlite(path: str, schema: Schema, tuples: list[tuple]) -> "SqliteMasterStore":
    store = SqliteMasterStore.__new__(SqliteMasterStore)
    store.path = Path(path)
    store._digest = None  # recomputed lazily; content shipped verbatim
    store.relation = _rebuild_relation(schema, tuples)
    store._inner = SingleRelationStore(store.relation)
    return store


def make_store(
    relation: Relation | None,
    backend: str = "single",
    *,
    shards: int = 4,
    path: str | Path | None = None,
    urls: Sequence[Any] | None = None,
) -> MasterStore:
    """Build a master store over ``relation`` for a backend name.

    The string form is what configuration surfaces speak (``CerFix``'s
    ``store=`` argument, ``cerfix clean --store``, the instance
    document's ``store`` section). The ``remote`` backend takes shard
    server ``urls`` instead of a relation — one entry per shard, each
    either a url string or a list of replica urls (client-side
    failover; see :class:`~repro.master.remote.RemoteMasterStore`); the
    master content lives on the servers. When a ``relation`` is also
    given, its content digest is verified against what the cluster
    serves (a cluster serving *different* master data must fail loudly,
    never probe wrongly).
    """
    from repro.obs.metrics import get_registry

    if backend == "remote":
        from repro.master.remote import RemoteMasterStore

        if not urls:
            raise MasterDataError(
                "the remote master store needs shard server urls "
                "(store_urls=[...] / --shard-urls)"
            )
        store = RemoteMasterStore(urls)
        if relation is not None:
            local = _relation_digest(relation)
            if local != store.content_digest():
                store.close()
                raise MasterDataError(
                    f"remote shard cluster serves different master content "
                    f"(local digest {local[:12]}…, remote "
                    f"{store.content_digest()[:12]}…); repoint the urls or "
                    f"restart the shard servers on the right master data"
                )
        get_registry().register_source("store", store.stats)
        return store
    if relation is None:
        raise MasterDataError(f"master store backend {backend!r} needs a master relation")
    if backend == "single":
        store = SingleRelationStore(relation)
    elif backend == "sharded":
        store = ShardedMasterStore(relation, shards=shards)
    elif backend == "sqlite":
        if path is None:
            raise MasterDataError("the sqlite master store needs a snapshot path")
        store = SqliteMasterStore(path, relation)
    else:
        raise MasterDataError(
            f"unknown master store backend {backend!r} (expected one of {STORE_BACKENDS})"
        )
    # Every configuration-surface store rides along in the registry dump
    # (held weakly, last-wins on the name — see MetricsRegistry).
    get_registry().register_source("store", store.stats)
    return store


def resolve_master(
    master: Any,
    store: str | None,
    *,
    shards: int = 4,
    path: str | Path | None = None,
    urls: Sequence[str] | None = None,
) -> Any:
    """Apply a ``store=`` backend selection to a ``master`` argument.

    The shared front door for every constructor that accepts both a
    master (relation / store / manager) and a ``store`` backend name
    (:class:`repro.engine.CerFix`, ``repro.batch.pipeline.BatchCleaner``)
    — one place defines when the selection applies and how it fails.
    ``store="remote"`` additionally accepts ``master=None`` (the master
    content lives on the shard servers).
    """
    if store is None:
        return master
    if master is not None and not isinstance(master, Relation):
        raise MasterDataError(
            "store= selects a backend for a bare master relation; "
            "got an already-wrapped master"
        )
    return make_store(master, store, shards=shards, path=path, urls=urls)
