"""The store-conformance kit: prove master-store backends byte-equivalent.

Every :mod:`repro.master.store` backend must produce bit-identical
fixes, certain regions and audit events through every cleaning path —
the interactive monitor/stream path, the batch pipeline (serial,
threaded, multi-process), randomly interleaved monitor sessions, and
the async entry service. This module is that contract as *reusable
machinery*: a new backend (the remote shard cluster was the first
customer) registers a factory and runs the same suite the built-in
backends pass, instead of growing its own ad-hoc parity tests.

The pieces:

* :func:`generate_case` builds randomized workloads — master relation,
  rule set (randomly thinned), dirty tuples and ground truth — through
  :mod:`repro.datagen`'s error injector (via the scenario generators),
  so every seed is a different mix of typos, case mangling, blanks and
  digit noise;
* :func:`store_factories` instantiates every backend over identical
  master content (fresh relation copies, so no probe structure is
  accidentally shared); pass ``remote_urls`` to register the ``remote``
  backend against a running shard cluster;
* :func:`write_case_instance` / :func:`case_cluster` turn a case into
  an instance directory and a running shard-server cluster (in-process
  threads, or real subprocesses — what the CI ``remote-store`` leg
  boots);
* :func:`run_monitor_path` / :func:`run_batch_path` /
  :func:`run_interleaved_monitor_path` / :func:`run_service_path` drive
  one backend through one cleaning path and capture a
  :class:`PathOutcome` — the repaired rows, the *full* serialized audit
  trail, the rendered certain regions, and the scheduling-independent
  report scalars;
* :func:`assert_parity` compares outcomes field by field with readable
  failure diffs;
* :func:`run_conformance` is the whole kit in one call: every
  registered backend through every requested path, asserted against
  the reference backend.

Timing and cache-locality numbers are deliberately excluded from the
comparison (:func:`normalize_report`): scheduling may move cache hits
between shards, but it must never move a value in a repaired cell.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro import CerFix, CertaintyMode
from repro.core.ruleset import RuleSet
from repro.master.store import (
    MasterStore,
    ShardedMasterStore,
    SingleRelationStore,
    SqliteMasterStore,
)
from repro.monitor.user import CautiousUser, OracleUser, SelectiveUser
from repro.relational.relation import Relation
from repro.scenarios import hospital, uk_customers as uk


@dataclass(frozen=True)
class DifferentialCase:
    """One randomized workload every backend is driven through."""

    name: str
    ruleset: RuleSet
    master: Relation
    dirty: Relation
    truth: Relation | None
    validated: tuple[str, ...] = ()


def generate_case(
    seed: int,
    *,
    scenario: str = "uk",
    master_size: int = 20,
    n: int = 40,
    rate: float = 0.25,
    with_truth: bool = True,
    max_dropped_rules: int = 2,
) -> DifferentialCase:
    """A randomized differential case.

    ``seed`` drives everything: the master population, the injected
    errors (datagen's noise operators) and which rules are randomly
    dropped from the scenario rule set — so two backends disagreeing on
    a seed is a reproducible counterexample.
    """
    rng = random.Random(seed)
    mod = uk if scenario == "uk" else hospital
    master = mod.generate_master(master_size, seed=seed)
    wl = mod.generate_workload(master, n, rate=rate, seed=seed + 1)
    if scenario == "uk":
        ruleset = uk.paper_ruleset(extended=rng.random() < 0.5)
    else:
        ruleset = hospital.hospital_ruleset()
    drop = rng.sample(
        [r.rule_id for r in ruleset], k=rng.randint(0, max_dropped_rules)
    )
    if drop and len(drop) < len(ruleset):
        ruleset = ruleset.remove(*drop)
    validated: tuple[str, ...] = ()
    if not with_truth:
        # rule-only repair: trust the attributes most rules read
        candidates = sorted({a for r in ruleset for a in r.lhs_attrs})
        if candidates:
            validated = (rng.choice(candidates),)
    return DifferentialCase(
        name=f"{scenario}-s{seed}{'' if with_truth else '-ruleonly'}",
        ruleset=ruleset,
        master=master,
        dirty=wl.dirty,
        truth=wl.clean if with_truth else None,
        validated=validated,
    )


def store_factories(
    case: DifferentialCase,
    tmp_path: Path,
    *,
    shards: int = 3,
    remote_urls: Sequence[Any] | None = None,
) -> dict[str, Callable[[], MasterStore]]:
    """One factory per backend, each over a fresh copy of the master.

    Fresh :class:`Relation` copies guarantee no index or partition is
    shared between backends — each backend builds its own probe
    structures from the same content. ``remote_urls`` (a running shard
    cluster over the *same* master content — see :func:`case_cluster`)
    additionally registers the ``remote`` backend; its factory verifies
    the cluster's content digest against the case's master, so a kit
    run can never silently compare against the wrong remote data.
    """

    def copy() -> Relation:
        return Relation(case.master.schema, case.master.tuples())

    factories: dict[str, Callable[[], MasterStore]] = {
        "single": lambda: SingleRelationStore(copy()),
        "sharded": lambda: ShardedMasterStore(copy(), shards=shards),
        "sqlite": lambda: SqliteMasterStore(tmp_path / f"{case.name}.db", copy()),
    }
    if remote_urls is not None:
        from repro.master.store import make_store

        urls = list(remote_urls)
        factories["remote"] = lambda: make_store(copy(), "remote", urls=urls)
    return factories


def write_case_instance(case: DifferentialCase, directory: Path) -> Path:
    """Materialise a case as an instance directory shard servers can load.

    Returns the ``instance.json`` path. The round trip (CSV master +
    rendered rules) is lossless for scenario-generated cases — the
    parity assertions would catch any drift.
    """
    from repro.config import InstanceConfig, save_instance

    config = InstanceConfig(
        case.name,
        case.ruleset.input_schema,
        case.ruleset.master_schema,
        mode=CertaintyMode.ANCHORED,
    )
    return save_instance(directory, config, case.master, case.ruleset)


@contextlib.contextmanager
def case_cluster(
    case: DifferentialCase,
    tmp_path: Path,
    *,
    shards: int = 3,
    replicas: int = 1,
    processes: bool = False,
) -> Iterator[Any]:
    """A running shard cluster serving ``case``'s master content.

    ``processes=False`` boots in-process thread servers (fast — the
    default for unit tests); ``processes=True`` writes the case to an
    instance directory and spawns real ``cerfix shard-server``
    subprocesses (what the CI ``remote-store`` leg runs).
    ``replicas > 1`` boots that many members per shard — the cluster's
    ``urls`` become one replica list per shard, ready to hand to
    :class:`~repro.master.remote.RemoteMasterStore`. Either way the
    cluster is torn down on exit, so no server outlives the test that
    booted it.
    """
    from repro.master.shardserver import ShardCluster

    if processes:
        instance_dir = Path(tmp_path) / f"{case.name}-instance"
        write_case_instance(case, instance_dir)
        cluster = ShardCluster.spawn(instance_dir, shards, replicas=replicas)
    else:
        cluster = ShardCluster.in_process(
            case.ruleset, case.master, shards, replicas=replicas, name=case.name
        )
    try:
        yield cluster
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# Failure injection: disrupt a cluster while a clean runs against it
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def disruption(action: Callable[[], Any], delay: float = 0.05) -> Iterator[threading.Thread]:
    """Fire ``action`` on a background thread ``delay`` seconds after
    entry — a replica kill or a rolling restart landing *mid-run*.

    The thread is joined on exit; if ``action`` itself raised (the
    disruption failed to disrupt), that error propagates — a chaos case
    that silently skipped its chaos would assert nothing.
    """
    failure: list[BaseException] = []

    def fire() -> None:
        time.sleep(delay)
        try:
            action()
        except BaseException as exc:  # surfaced after join, never swallowed
            failure.append(exc)

    thread = threading.Thread(target=fire, daemon=True, name="cerfix-disruption")
    thread.start()
    try:
        yield thread
    finally:
        thread.join(timeout=60)
    if failure:
        raise failure[0]


def run_failover_conformance(
    case: DifferentialCase,
    cluster: Any,
    *,
    disrupt: Callable[[Any], Any],
    batch_workers: int = 2,
    delay: float = 0.05,
    timeout: float = 10.0,
    retries: int = 3,
    backoff: float = 0.02,
    circuit_reset: float = 0.2,
) -> PathOutcome:
    """Batch-clean through a remote store while ``disrupt(cluster)``
    fires mid-run, and assert the disrupted outcome bit-identical to
    the ``single`` backend's undisrupted run.

    This is the certainty guarantee under failover as an executable
    assertion: a replica dying (or a whole rolling restart) may change
    *routes* — retries, failovers, circuit opens all show up in the
    store's stats — but never a repaired cell, an audit event or a
    report scalar. The handshake runs before the disruption is armed,
    so the clean starts against a verified healthy cluster and the
    failure lands mid-probing, which is the scenario that matters.
    """
    from repro.master.remote import RemoteMasterStore

    reference = run_batch_path(
        case,
        SingleRelationStore(Relation(case.master.schema, case.master.tuples())),
        workers=batch_workers,
        backend="thread",
    )
    store = RemoteMasterStore(
        cluster.urls,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        circuit_reset=circuit_reset,
    )
    try:
        with disruption(lambda: disrupt(cluster), delay):
            disrupted = run_batch_path(
                case, store, workers=batch_workers, backend="thread"
            )
    finally:
        store.close()
    assert_parity({"single": reference, "remote-disrupted": disrupted})
    return disrupted


@dataclass
class PathOutcome:
    """Everything parity is asserted over, for one (backend, path) run."""

    fixed_rows: list[tuple]
    audit_events: list[dict]
    regions: list[tuple[str, float]]
    report: dict[str, Any]


#: Report keys that scheduling/backends/resume may legitimately change:
#: wall-clock, throughput, cache locality, executor backend label, and
#: how many shards came back from a journal rather than being executed.
_UNSTABLE_REPORT_KEYS = frozenset(
    {
        "elapsed_seconds",
        "throughput",
        "cache",
        "shards",
        "workers",
        "backend",
        "notes",
        "resumed_shards",
    }
)


def normalize_report(report_json: Mapping[str, Any]) -> dict[str, Any]:
    """The scheduling-independent slice of a report's JSON form.

    Work accounting (cells fixed by user vs rule, completions,
    conflicts, dedup) must be identical across backends; timings and
    cache-locality counters need not be.
    """
    out = {k: v for k, v in report_json.items() if k not in _UNSTABLE_REPORT_KEYS}
    shards = report_json.get("shards")
    if shards is not None:
        out["shard_workload"] = [
            {"shard_id": s["shard_id"], "groups": s["groups"], "tuples": s["tuples"]}
            for s in shards
        ]
    return out


def _audit_fixed_rows(engine: CerFix, dirty: Relation) -> list[tuple]:
    """Replay the audit trail onto the dirty rows (the stream path has
    no assembled output relation; this mirrors ``cerfix fix --out``)."""
    names = dirty.schema.names
    rows = []
    for i, row in enumerate(dirty.rows()):
        values = row.to_dict()
        for e in engine.audit.by_tuple(f"t{i}"):
            values[e.attr] = e.new
        rows.append(tuple(values[n] for n in names))
    return rows


def run_monitor_path(
    case: DifferentialCase,
    store: MasterStore,
    *,
    regions_k: int = 2,
    max_combos: int = 50_000,
) -> PathOutcome:
    """Drive the interactive path: region precompute, then one
    oracle-driven monitor session per tuple (the stream processor).

    ANCHORED certainty keeps region enumeration bounded on generated
    masters (STRICT's full domain product can blow the combo budget).
    """
    engine = CerFix(
        case.ruleset, store, mode=CertaintyMode.ANCHORED, max_combos=max_combos
    )
    ranked = engine.precompute_regions(k=regions_k)
    report = engine.stream(case.dirty, case.truth)
    return PathOutcome(
        fixed_rows=_audit_fixed_rows(engine, case.dirty),
        audit_events=[e.to_json() for e in engine.audit],
        regions=[(r.region.render(), round(r.coverage, 9)) for r in ranked],
        report={
            "tuples": report.tuples,
            "completed": report.completed,
            "user_cells": report.user_cells,
            "rule_cells": report.rule_cells,
        },
    )


def run_batch_path(
    case: DifferentialCase,
    store: MasterStore,
    *,
    workers: int = 1,
    backend: str = "thread",
    shards: int | None = None,
    journal_path: Path | None = None,
    cache_size: int = 4096,
) -> PathOutcome:
    """Drive the batch pipeline under one executor configuration."""
    engine = CerFix(case.ruleset, store)
    result = engine.clean_relation(
        case.dirty,
        case.truth,
        workers=workers,
        backend=backend,
        shards=shards,
        validated=case.validated,
        journal_path=journal_path,
    )
    return PathOutcome(
        fixed_rows=result.relation.tuples(),
        audit_events=[e.to_json() for e in engine.audit],
        regions=[],
        report=normalize_report(result.report.to_json()),
    )


def normalize_audit(events: list[dict]) -> list[tuple[str, list[dict]]]:
    """Per-tuple audit views, interleaving-independent.

    Concurrent (or randomly interleaved) sessions share one log, so
    *global* sequence order legitimately varies run to run; what the
    certain-fix semantics guarantee is each tuple's own event sequence.
    Returns ``[(tuple_id, [event sans seq, ...]), ...]`` sorted by id.
    """
    by_tuple: dict[str, list[dict]] = {}
    for event in events:
        event = {k: v for k, v in event.items() if k != "seq"}
        by_tuple.setdefault(event["tuple_id"], []).append(event)
    return sorted(by_tuple.items())


def normalize_outcome(outcome: PathOutcome) -> PathOutcome:
    """An interleaving-comparable view of a serial-path outcome:
    stringified rows (what a JSON surface returns) and per-tuple audit."""
    return PathOutcome(
        fixed_rows=[tuple(str(v) for v in row) for row in outcome.fixed_rows],
        audit_events=normalize_audit(outcome.audit_events),
        regions=outcome.regions,
        report=outcome.report,
    )


def _interleaving_user(kind: str, truth: Mapping[str, Any], names, rng: random.Random):
    if kind == "cautious":
        return CautiousUser(truth, max_per_round=1)
    if kind == "selective":
        known = set(rng.sample(list(names), k=max(2, (2 * len(names)) // 3)))
        return SelectiveUser(truth, known)
    return OracleUser(truth)


def run_interleaved_monitor_path(
    case: DifferentialCase,
    store: MasterStore,
    *,
    order_seed: int,
    user_seed: int = 0,
    regions_k: int = 2,
    region_max_size: int | None = None,
    max_combos: int = 50_000,
) -> PathOutcome:
    """Drive every tuple's monitor session with its rounds *interleaved*
    across sessions in a seeded random order, with non-oracle users.

    ``user_seed`` fixes each tuple's user model (oracle / cautious /
    selective mix) independently of ``order_seed``, so two runs with
    different interleavings but the same user seed must produce
    bit-identical per-tuple outcomes — sessions are independent, and
    the parity suite asserts the same across every store backend.
    Selective users may stall their session; the stall point is part of
    the compared outcome.
    """
    if case.truth is None:
        raise ValueError("interleaving fuzz needs ground truth")
    from repro.service.cache import LRUMemo

    engine = CerFix(
        case.ruleset, store, mode=CertaintyMode.ANCHORED, max_combos=max_combos
    )
    ranked = engine.precompute_regions(k=regions_k, max_size=region_max_size)
    names = case.dirty.schema.names
    user_rng = random.Random(user_seed)
    # One memo per run (never shared across runs, so runs stay fully
    # independent): duplicate-heavy cases re-derive identical
    # suggestions constantly, and memoisation is deterministic.
    memo = LRUMemo(4096)
    sessions, users = [], []
    for i, row in enumerate(case.dirty.rows()):
        truth = case.truth.row(i).to_dict()
        kind = user_rng.choice(("oracle", "oracle", "cautious", "selective"))
        users.append(_interleaving_user(kind, truth, names, user_rng))
        sessions.append(engine.session(row.to_dict(), f"t{i}", suggestion_memo=memo))

    order_rng = random.Random(order_seed)
    active = list(range(len(sessions)))
    guard = (len(names) + 2) * max(1, len(sessions)) * 4
    while active and guard > 0:
        guard -= 1
        i = order_rng.choice(active)
        session = sessions[i]
        if session.is_complete:
            active.remove(i)
            continue
        suggestion = session.suggestion()
        if suggestion is None:
            active.remove(i)
            continue
        assignments = users[i].respond(suggestion, session)
        if not assignments:
            active.remove(i)
            continue
        session.validate(assignments)
    assert guard > 0, "interleaving fuzz failed to converge"

    return PathOutcome(
        fixed_rows=[
            tuple(str(v) for v in (s.current_values()[n] for n in names)) for s in sessions
        ],
        audit_events=normalize_audit([e.to_json() for e in engine.audit]),
        regions=[(r.region.render(), round(r.coverage, 9)) for r in ranked],
        report={
            "tuples": len(sessions),
            "completed": sum(1 for s in sessions if s.is_complete),
            "rounds": [s.round_no for s in sessions],
        },
    )


def run_service_path(
    case: DifferentialCase,
    store: MasterStore,
    *,
    concurrency: int = 8,
    regions_k: int = 2,
    max_combos: int = 50_000,
    **service_options,
) -> PathOutcome:
    """Drive the async entry service over real HTTP with ``concurrency``
    sessions in flight, and capture the serial-comparable outcome.

    The acceptance gate of ISSUE 4: for any interleaving of sessions,
    the per-tuple (fix, region, audit-event) outputs are bit-identical
    to the serial monitor path — compare against
    ``normalize_outcome(run_monitor_path(...))`` on the same backend.
    """
    if case.truth is None:
        raise ValueError("the service load driver needs ground truth")
    from repro.service.loadgen import run_load

    engine = CerFix(
        case.ruleset, store, mode=CertaintyMode.ANCHORED, max_combos=max_combos
    )
    ranked = engine.precompute_regions(k=regions_k)
    server = engine.serve_async(port=0, **service_options)
    try:
        rows = [r.to_dict() for r in case.dirty.rows()]
        truth = [r.to_dict() for r in case.truth.rows()]
        load = run_load(server.url, rows, truth, concurrency=concurrency)
    finally:
        server.close()
    assert not load.errors, f"load errors: {load.errors[:3]}"
    return PathOutcome(
        fixed_rows=load.values_in_order(case.dirty.schema.names),
        audit_events=normalize_audit([e.to_json() for e in engine.audit]),
        regions=[(r.region.render(), round(r.coverage, 9)) for r in ranked],
        report={"tuples": load.sessions, "completed": load.completed},
    )


def assert_parity(outcomes: Mapping[str, PathOutcome]) -> None:
    """Assert every outcome is bit-identical to the first (reference)
    backend; failures name the backend, the field and the first diff."""
    items = list(outcomes.items())
    ref_name, ref = items[0]
    for name, got in items[1:]:
        assert got.fixed_rows == ref.fixed_rows, _first_diff(
            ref_name, name, "fixed row", ref.fixed_rows, got.fixed_rows
        )
        assert got.audit_events == ref.audit_events, _first_diff(
            ref_name, name, "audit event", ref.audit_events, got.audit_events
        )
        assert got.regions == ref.regions, (
            f"{name} regions diverge from {ref_name}: {got.regions!r} != {ref.regions!r}"
        )
        assert got.report == ref.report, (
            f"{name} report diverges from {ref_name}: {got.report!r} != {ref.report!r}"
        )


def _first_diff(ref_name: str, name: str, what: str, ref: list, got: list) -> str:
    if len(ref) != len(got):
        return (
            f"{name} produced {len(got)} {what}s, {ref_name} produced {len(ref)}"
        )
    for i, (a, b) in enumerate(zip(ref, got)):
        if a != b:
            return f"{name} {what} {i} diverges from {ref_name}: {b!r} != {a!r}"
    return f"{name} diverges from {ref_name} (unlocated)"


# ---------------------------------------------------------------------------
# The kit: every backend, every path, one call
# ---------------------------------------------------------------------------

#: Paths :func:`run_conformance` knows how to drive. ``service`` needs
#: ground truth (the load generator plays the oracle), ``interleaved``
#: too; cases without truth are limited to ``monitor`` and ``batch``.
CONFORMANCE_PATHS = ("monitor", "batch", "interleaved", "service")


def run_conformance(
    case: DifferentialCase,
    factories: Mapping[str, Callable[[], MasterStore]],
    *,
    paths: Sequence[str] = ("monitor", "batch", "service"),
    reference: str = "single",
    batch_workers: int = 2,
    batch_backend: str = "thread",
    order_seeds: Sequence[int] = (1, 7),
    concurrency: int = 8,
) -> dict[str, dict[str, PathOutcome]]:
    """Drive every registered backend through every requested path and
    assert bit-identical outcomes against the ``reference`` backend.

    * ``monitor`` — region precompute + one oracle session per tuple;
    * ``batch`` — the batch pipeline (serial when ``batch_workers=1``);
    * ``interleaved`` — seeded random interleavings of non-oracle user
      sessions, parity across backends *and* orders;
    * ``service`` — the async entry service over real HTTP, compared
      against the reference backend's *serial monitor* outcome (the
      strongest cross-path guarantee the system makes).

    Returns ``{path: {backend: PathOutcome}}`` so callers can bolt on
    extra assertions (round-trip counts, stats shape, ...).
    """
    unknown = [p for p in paths if p not in CONFORMANCE_PATHS]
    if unknown:
        raise ValueError(f"unknown conformance paths {unknown} (know {CONFORMANCE_PATHS})")
    if reference not in factories:
        raise ValueError(f"reference backend {reference!r} is not registered")
    ordered = [reference] + [name for name in factories if name != reference]
    results: dict[str, dict[str, PathOutcome]] = {}

    def drive(name: str, runner: Callable[[MasterStore], PathOutcome]) -> PathOutcome:
        """One backend through one path, with the store released after —
        remote stores hold sockets and a thread pool per instance, and a
        kit sweep builds one store per (backend, path)."""
        store = factories[name]()
        try:
            return runner(store)
        finally:
            close = getattr(store, "close", None)
            if close is not None:
                close()

    if "monitor" in paths or "service" in paths:
        outcomes = {
            name: drive(name, lambda store: run_monitor_path(case, store))
            for name in ordered
        }
        assert_parity(outcomes)
        results["monitor"] = outcomes

    if "batch" in paths:
        outcomes = {
            name: drive(
                name,
                lambda store: run_batch_path(
                    case, store, workers=batch_workers, backend=batch_backend
                ),
            )
            for name in ordered
        }
        assert_parity(outcomes)
        results["batch"] = outcomes

    if "interleaved" in paths:
        interleaved: dict[str, PathOutcome] = {}
        for name in ordered:
            for order_seed in order_seeds:
                seed = order_seed
                interleaved[f"{name}/order{order_seed}"] = drive(
                    name,
                    lambda store: run_interleaved_monitor_path(
                        case, store, order_seed=seed, user_seed=7
                    ),
                )
        assert_parity(interleaved)
        results["interleaved"] = interleaved

    if "service" in paths:
        serial = normalize_outcome(results["monitor"][reference])
        outcomes = {}
        for name in ordered:
            got = drive(
                name, lambda store: run_service_path(case, store, concurrency=concurrency)
            )
            assert got.fixed_rows == serial.fixed_rows, _first_diff(
                f"{reference} (serial monitor)", name, "service fixed row",
                serial.fixed_rows, got.fixed_rows,
            )
            assert got.audit_events == serial.audit_events, _first_diff(
                f"{reference} (serial monitor)", name, "service audit event",
                serial.audit_events, got.audit_events,
            )
            assert got.regions == serial.regions
            outcomes[name] = got
        results["service"] = outcomes

    return results
