"""The master data manager.

Master data (reference data) is "a single repository of high-quality data
… assumed consistent and accurate" (paper §2, citing [9]). The manager
wraps the master :class:`~repro.relational.relation.Relation` and serves
exactly one query shape — *given an editing rule and an input tuple's
validated values, which master tuples match, and do they agree on the
correction value?* — backed by the hash indexes the rule set declares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import MasterDataError
from repro.core.rule import Constant, EditingRule, MasterColumn
from repro.core.ruleset import RuleSet
from repro.relational.relation import Relation
from repro.relational.row import Row


@dataclass(frozen=True)
class MasterMatch:
    """The outcome of probing the master data for one rule.

    ``positions`` are the matching master row positions; ``values`` the
    distinct correction values they carry for the rule's source column.
    The fix is certain only when ``len(values) == 1`` (uniqueness gate);
    ``len(values) > 1`` is an ambiguity the consistency checker can also
    surface statically.
    """

    positions: tuple[int, ...]
    values: tuple[Any, ...]

    @property
    def is_empty(self) -> bool:
        return not self.positions

    @property
    def is_unique(self) -> bool:
        return len(self.values) == 1

    @property
    def value(self) -> Any:
        if not self.is_unique:
            raise MasterDataError(f"no unique correction value: {self.values!r}")
        return self.values[0]


class MasterDataManager:
    """Indexed access to one master relation.

    >>> from repro.relational import Relation, Schema
    >>> rel = Relation(Schema("m", ["zip", "AC"]), [("EH8 4AH", "131")])
    >>> mgr = MasterDataManager(rel)
    >>> len(mgr)
    1
    """

    def __init__(self, relation: Relation):
        self.relation = relation

    @property
    def schema(self):
        return self.relation.schema

    def __len__(self) -> int:
        return len(self.relation)

    # -- rule probing ------------------------------------------------------

    def prebuild(self, ruleset: RuleSet) -> None:
        """Eagerly build every index the rule set will probe.

        Optional — indexes build lazily on first probe — but useful to move
        the build cost out of the first point-of-entry fix (benchmark E6
        measures both).
        """
        for attrs, ops in ruleset.index_specs():
            self.relation.index_on(attrs, ops)

    def match(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        """Probe the master data for ``rule`` against input ``values``.

        ``values`` must contain every attribute of the rule's LHS; the
        chase guarantees this by only probing rules whose reads are
        validated. ``use_index=False`` forces a scan (the E6 ablation).
        """
        if isinstance(rule.source, Constant):
            return MasterMatch(positions=(), values=(rule.source.value,))
        key = tuple(values[a] for a in rule.lhs_attrs)
        if use_index:
            index = self.relation.index_on(rule.m_attrs, rule.ops)
            positions = tuple(index.lookup(key))
        else:
            positions = tuple(self._scan_positions(rule, key))
        source = rule.source
        assert isinstance(source, MasterColumn)
        col = self.relation.schema.position(source.name)
        raw = self.relation.tuples()
        distinct: list[Any] = []
        for pos in positions:
            v = raw[pos][col]
            if v not in distinct:
                distinct.append(v)
        return MasterMatch(positions=positions, values=tuple(distinct))

    def _scan_positions(self, rule: EditingRule, key: tuple) -> list[int]:
        from repro.relational.index import HashIndex

        probe = HashIndex(rule.m_attrs, rule.ops)
        target = probe.key_of(key)
        positions = [self.relation.schema.position(a) for a in rule.m_attrs]
        out = []
        for i, t in enumerate(self.relation.tuples()):
            if probe.key_of(tuple(t[p] for p in positions)) == target:
                out.append(i)
        return out

    def row(self, position: int) -> Row:
        """The master tuple at ``position`` (for audit provenance)."""
        return self.relation.row(position)

    # -- diagnostics -------------------------------------------------------

    def ambiguous_keys(self, rule: EditingRule) -> dict[tuple, tuple[Any, ...]]:
        """Keys of ``rule``'s master index whose matches disagree on the
        correction value.

        An input tuple hitting such a key can never be fixed by this rule
        (the uniqueness gate blocks it); surfacing them statically is part
        of the rule engine's consistency analysis.
        """
        if isinstance(rule.source, Constant):
            return {}
        index = self.relation.index_on(rule.m_attrs, rule.ops)
        col = self.relation.schema.position(rule.source.name)
        raw = self.relation.tuples()
        out: dict[tuple, tuple[Any, ...]] = {}
        for key, positions in index.duplicate_keys().items():
            values = {raw[p][col] for p in positions}
            if len(values) > 1:
                out[key] = tuple(sorted(map(str, values)))
        return out

    def __repr__(self) -> str:
        return f"MasterDataManager({self.relation!r})"
