"""The master data manager.

Master data (reference data) is "a single repository of high-quality data
… assumed consistent and accurate" (paper §2, citing [9]). The manager is
the facade the chase, monitor and batch layers talk to; storage itself
lives behind the :class:`~repro.master.store.MasterStore` interface
(single in-memory relation, hash-sharded, or sqlite-persisted — see
:mod:`repro.master.store`). The manager serves exactly one query shape —
*given an editing rule and an input tuple's validated values, which
master tuples match, and do they agree on the correction value?* — and
handles the one case no store ever sees: constant-sourced rules, whose
"fix" never touches master data.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.rule import Constant, EditingRule
from repro.core.ruleset import RuleSet
from repro.master.store import (
    MasterMatch,
    MasterStore,
    SingleRelationStore,
)
from repro.relational.relation import Relation
from repro.relational.row import Row

__all__ = ["MasterDataManager", "MasterMatch"]


class MasterDataManager:
    """Indexed access to one master relation, behind a pluggable store.

    Accepts either a bare :class:`Relation` (wrapped in the default
    :class:`~repro.master.store.SingleRelationStore`) or any
    :class:`~repro.master.store.MasterStore` backend.

    >>> from repro.relational import Relation, Schema
    >>> rel = Relation(Schema("m", ["zip", "AC"]), [("EH8 4AH", "131")])
    >>> mgr = MasterDataManager(rel)
    >>> len(mgr)
    1
    """

    def __init__(self, source: Relation | MasterStore):
        self.store = source if isinstance(source, MasterStore) else SingleRelationStore(source)

    @property
    def relation(self) -> Relation:
        """The canonical master relation (global position order)."""
        return self.store.relation

    @property
    def schema(self):
        return self.store.schema

    def __len__(self) -> int:
        return len(self.store)

    # -- rule probing ------------------------------------------------------

    def prebuild(self, ruleset: RuleSet) -> None:
        """Eagerly build every probe structure the rule set will touch.

        Optional — structures build lazily on first probe — but useful to
        move the build cost out of the first point-of-entry fix
        (benchmark E6 measures both), and required before probing one
        store from several threads.
        """
        self.store.prebuild(ruleset)

    def prepare_worker(self, ruleset: RuleSet) -> None:
        """Store-specific warm-up for a freshly unpickled process worker."""
        self.store.prepare_worker(ruleset)

    def match(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        """Probe the master data for ``rule`` against input ``values``.

        ``values`` must contain every attribute of the rule's LHS; the
        chase guarantees this by only probing rules whose reads are
        validated. ``use_index=False`` forces a scan (the E6 ablation).
        """
        if isinstance(rule.source, Constant):
            return MasterMatch(positions=(), values=(rule.source.value,))
        return self.store.probe(rule, values, use_index=use_index)

    def row(self, position: int) -> Row:
        """The master tuple at ``position`` (for audit provenance)."""
        return self.relation.row(position)

    # -- diagnostics -------------------------------------------------------

    def ambiguous_keys(self, rule: EditingRule) -> dict[tuple, tuple[Any, ...]]:
        """Keys of ``rule``'s master index whose matches disagree on the
        correction value.

        An input tuple hitting such a key can never be fixed by this rule
        (the uniqueness gate blocks it); surfacing them statically is part
        of the rule engine's consistency analysis.
        """
        if isinstance(rule.source, Constant):
            return {}
        return self.store.ambiguous_keys(rule)

    # -- maintenance -------------------------------------------------------

    def apply_update(
        self,
        add: Iterable[Mapping[str, Any]] = (),
        remove: Iterable[int] = (),
    ) -> tuple[int, int]:
        """Apply master-data changes through the store (so persistent
        backends write through and derived caches invalidate)."""
        return self.store.apply_update(add, remove)

    def content_digest(self) -> str:
        """Backend-independent SHA-256 of the master content."""
        return self.store.content_digest()

    def __repr__(self) -> str:
        return f"MasterDataManager({self.store!r})"
