"""The remote master store: shard-server-backed probing over the network.

:class:`RemoteMasterStore` is the fourth :class:`~repro.master.store.MasterStore`
backend: the hash routing of
:class:`~repro.master.store.ShardedMasterStore` pointed at N
:mod:`shard-server <repro.master.shardserver>` processes instead of N
in-process partitions. A probe normalises its match key locally, routes
it with the same deterministic :func:`~repro.master.store.shard_of`
hash the servers use, and asks exactly one server — which verifies the
routing before answering, so a client/server disagreement is a loud
409, never a silently wrong match.

What makes it production-shaped rather than a toy RPC wrapper:

* **keep-alive connection pooling** — one persistent
  ``http.client.HTTPConnection`` per (thread, shard), so steady-state
  probing never pays TCP setup;
* **request batching** — :meth:`RemoteMasterStore.probe_many` groups a
  batch by shard and crosses the network once per shard (per
  ``max_batch`` chunk), with shard groups issued concurrently; the
  entry service's :class:`~repro.service.batcher.ProbeBatcher` and the
  batch pipeline's probe cache now amortise *real round trips*, not
  just CPU;
* **retry with backoff** — transient transport failures (connection
  reset, refused, timeout, 5xx) retry with decorrelated-jitter
  exponential backoff against a fresh connection, so a shard server
  restarting under N workers heals instead of failing the clean — and
  the workers don't re-probe it in lockstep;
* **replication with client-side failover** — each routing slot
  accepts a *group* of replica urls (``[[a, b], [c, d]]``); a request
  that exhausts its retries against one replica fails over to the next
  healthy one, read load rotates across healthy replicas, and a
  replica that keeps failing trips a consecutive-failure circuit
  breaker (skipped until a timed half-open re-probe finds it serving
  again) — a shard dying mid-clean changes a request's *route*, never
  its *answer*;
* **per-replica stats** — probes, round trips, retries, errors,
  failovers, circuit state and latency per replica, aggregated per
  shard (:meth:`RemoteMasterStore.stats`), the numbers the
  remote-store benchmark records;
* **graceful degradation** — a shard whose replicas all stay down
  raises :class:`~repro.errors.MasterDataError` naming every url
  tried; a cluster whose members (any replica included) disagree on
  shard count or content digest is rejected at handshake, so a stale
  replica is refused loudly instead of silently consulted.

Parity: the servers answer through the same
:class:`~repro.master.store.ShardedMasterStore` probe path every other
backend shares, and the conformance kit
(:mod:`repro.master.conformance`) pins the remote backend bit-identical
to ``single`` on the monitor, batch and async-service paths.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping, Sequence
from urllib.parse import urlsplit

from repro.errors import MasterDataError
from repro.core.rule import EditingRule
from repro.core.ruleset import RuleSet
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.master.store import (
    MasterMatch,
    MasterStore,
    SingleRelationStore,
    _relation_digest,
    require_scalar_cells,
    shard_of,
)
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import schema_from_json

#: Transport failures worth retrying: the connection died or the server
#: hiccuped — as opposed to 4xx protocol errors, which retrying cannot fix.
_TRANSIENT = (OSError, http.client.HTTPException)


class _TransientServerError(Exception):
    """A 5xx response — retryable, unlike 4xx protocol errors."""


class ShardUnreachableError(MasterDataError):
    """One replica exhausted its retries on transport failures or 5xx.

    The failover trigger: :class:`ShardGroup` catches this, marks the
    replica unhealthy and moves to the next one. 4xx/protocol errors
    stay plain :class:`MasterDataError` — they are deterministic, so a
    sibling replica would answer exactly the same and failing over
    would only hide the bug.
    """

    def __init__(self, message: str, *, url: str, kind: str):
        super().__init__(message)
        self.url = url
        #: ``"unreachable"`` (transport died) or ``"server-error"``
        #: (the shard answered, but with a 5xx, on every attempt).
        self.kind = kind


def _backoff_delay(base: float, previous: float, cap: float) -> float:
    """Decorrelated-jitter backoff (AWS style): each delay is drawn from
    ``[base, max(2*base, 3*previous)]``, capped.

    N workers that lose a shard simultaneously must *not* re-probe it
    in lockstep — pure exponential backoff synchronizes the herd on the
    worst possible moment, the server's restart.
    """
    return min(cap, random.uniform(base, max(2 * base, 3 * previous)))


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection with Nagle disabled.

    Probe requests are small and latency-bound; Nagle buffering against
    the peer's delayed ACK costs tens of milliseconds *per probe* on
    otherwise sub-millisecond links. TCP_NODELAY sends them immediately.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


#: Remote round-trip latency, in the process-wide registry. Failed
#: attempts are observed too — a histogram that only sees successes
#: hides exactly the tail an operator is hunting.
_RPC_SECONDS = get_registry().histogram("cerfix.remote.rpc_seconds")

#: Cluster-wide failover/circuit activity (per-replica detail lives in
#: the ``remote_store`` source's ``per_shard[*].replicas`` entries).
_FAILOVERS = get_registry().counter("cerfix.remote.failovers")
_CIRCUIT_OPENS = get_registry().counter("cerfix.remote.circuit_opens")


class _EndpointStats:
    """Per-(store, shard-url) counters that outlive endpoint rebuilds.

    Kept in a module-level registry keyed by ``(store token, url)``
    (see :func:`_stats_for`) so the stats survive the client-side
    rebuilds that used to zero them: a fork-safe ``__reduce__`` round
    trip or a reconnect keeps accumulating into the same counters,
    because the rebuilt store carries its original token. Two
    *independently constructed* stores over the same cluster get
    different tokens and therefore independent counters. A *forked*
    process starts its own registry — counters are per-process, like
    its connections.
    """

    __slots__ = (
        "lock",
        "probes",
        "round_trips",
        "retried",
        "errors",
        "failovers",
        "circuit_opens",
        "failures_in_row",
        "open_until",
        "latency_s",
        "latency_max_s",
    )

    def __init__(self):
        self.lock = threading.Lock()
        self.probes = 0
        self.round_trips = 0
        self.retried = 0
        self.errors = 0
        self.failovers = 0
        self.circuit_opens = 0
        self.failures_in_row = 0
        self.open_until = 0.0  # monotonic deadline; 0 = circuit closed
        self.latency_s = 0.0
        self.latency_max_s = 0.0


_STATS: dict[tuple[str, str], _EndpointStats] = {}
_STATS_PID: int | None = None
_STATS_LOCK = threading.Lock()


def _stats_for(token: str, url: str) -> _EndpointStats:
    global _STATS_PID
    with _STATS_LOCK:
        pid = os.getpid()
        if _STATS_PID != pid:
            _STATS.clear()
            _STATS_PID = pid
        stats = _STATS.get((token, url))
        if stats is None:
            stats = _STATS[(token, url)] = _EndpointStats()
        return stats


def _split_url(url: str) -> tuple[str, int]:
    split = urlsplit(url if "//" in url else f"http://{url}")
    if split.scheme not in ("", "http"):
        raise MasterDataError(f"shard url {url!r}: only http:// shard servers are supported")
    if not split.hostname or not split.port:
        raise MasterDataError(f"shard url {url!r} must carry an explicit host and port")
    return split.hostname, split.port


def fetch_health(url: str, timeout: float = 2.0) -> dict:
    """One unretried ``GET /healthz`` (spawn helpers poll this)."""
    host, port = _split_url(url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        data = response.read()
        if response.status != 200:
            raise MasterDataError(f"shard server at {url} answered {response.status} to /healthz")
        return json.loads(data)
    except _TRANSIENT + (ValueError,) as exc:
        raise MasterDataError(f"no healthy shard server at {url}: {exc}") from None
    finally:
        conn.close()


class ShardEndpoint:
    """One shard-server *replica* as the client sees it: pooled
    connections, retry-with-backoff, a consecutive-failure circuit
    breaker, and per-replica counters.

    Connections are per *thread* (``http.client`` connections are not
    thread-safe): batch executor threads, the service's probe executor
    and the caller's thread each keep their own keep-alive socket.
    """

    def __init__(
        self,
        shard_id: int,
        url: str,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
        stats_token: str = "",
        circuit_threshold: int = 3,
        circuit_reset: float = 1.0,
    ):
        self.shard_id = shard_id
        self.url = url.rstrip("/")
        self.host, self.port = _split_url(url)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.circuit_threshold = circuit_threshold
        self.circuit_reset = circuit_reset
        self._local = threading.local()
        self._conns: set[http.client.HTTPConnection] = set()
        self._lock = threading.Lock()
        self._stats = _stats_for(stats_token, self.url)

    # -- connection pool ----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        # Fork safety: a process-pool worker forked from a client that
        # already probed inherits the parent's connected socket in its
        # (cloned) thread-local. Writing on it would interleave two
        # processes' requests on one TCP stream; a PID check discards
        # the inherited connection instead.
        if getattr(self._local, "pid", None) != os.getpid():
            self._local.conn = None
            self._local.pid = os.getpid()
        conn = self._local.conn
        if conn is None:
            conn = _NoDelayHTTPConnection(self.host, self.port, timeout=self.timeout)
            self._local.conn = conn
            with self._lock:
                self._conns.add(conn)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    def close(self) -> None:
        with self._lock:
            conns, self._conns = list(self._conns), set()
        for conn in conns:
            conn.close()

    # -- circuit breaker ----------------------------------------------------

    def circuit_state(self, now: float | None = None) -> str:
        """``"closed"`` (healthy), ``"open"`` (skipped), or
        ``"half-open"`` (open, but the re-probe window has elapsed)."""
        s = self._stats
        now = time.monotonic() if now is None else now
        with s.lock:
            if not s.open_until:
                return "closed"
            return "half-open" if now >= s.open_until else "open"

    def claim_half_open_probe(self) -> bool:
        """Atomically claim the half-open re-probe slot.

        True for exactly one caller per ``circuit_reset`` window (the
        window re-arms on claim), so a recovering replica sees one
        timed probe, not a stampede of them.
        """
        s = self._stats
        now = time.monotonic()
        with s.lock:
            if not s.open_until or now < s.open_until:
                return False
            s.open_until = now + self.circuit_reset
            return True

    def note_success(self) -> None:
        s = self._stats
        with s.lock:
            s.failures_in_row = 0
            s.open_until = 0.0

    def note_failure(self) -> None:
        s = self._stats
        now = time.monotonic()
        with s.lock:
            s.failures_in_row += 1
            if s.failures_in_row < self.circuit_threshold:
                return
            if not s.open_until:
                s.circuit_opens += 1
                _CIRCUIT_OPENS.inc()
            s.open_until = now + self.circuit_reset

    # -- requests -----------------------------------------------------------

    def request(self, method: str, path: str, payload: Any = None) -> Any:
        """One JSON request with keep-alive, retry and backoff.

        4xx answers raise :class:`MasterDataError` immediately (the
        request itself is wrong — a misroute or an unknown rule);
        transport failures and 5xx retry ``retries`` times against a
        fresh connection before giving up with a
        :class:`ShardUnreachableError` (what :class:`ShardGroup` fails
        over on).
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        with trace.span("shard-rpc", shard=self.shard_id, path=path):
            return self._request_retrying(method, path, body, self._stats)

    def _request_retrying(
        self,
        method: str,
        path: str,
        body: bytes | None,
        stats: _EndpointStats,
    ) -> Any:
        last: Exception | None = None
        kind = "unreachable"
        delay = 0.0
        for attempt in range(self.retries + 1):
            if attempt:
                with stats.lock:
                    stats.retried += 1
                delay = _backoff_delay(self.backoff, delay, self.backoff * 16)
                time.sleep(delay)
            started = time.perf_counter()
            try:
                status, data = self._request_once(method, path, body)
            except _TRANSIENT as exc:
                _RPC_SECONDS.observe(time.perf_counter() - started)
                self._drop_connection()
                last, kind = exc, "unreachable"
                continue
            except _TransientServerError as exc:
                _RPC_SECONDS.observe(time.perf_counter() - started)
                last, kind = exc, "server-error"
                continue
            elapsed = time.perf_counter() - started
            with stats.lock:
                stats.round_trips += 1
                stats.latency_s += elapsed
                stats.latency_max_s = max(stats.latency_max_s, elapsed)
            _RPC_SECONDS.observe(elapsed)
            try:
                parsed = json.loads(data) if data else None
            except ValueError:
                with stats.lock:
                    stats.errors += 1
                raise MasterDataError(
                    f"shard {self.shard_id} at {self.url} answered non-JSON "
                    f"to {method} {path}"
                ) from None
            if status >= 400:
                if isinstance(parsed, dict):
                    detail = parsed.get("error")
                else:
                    detail = data.decode("utf-8", "replace")[:200]
                with stats.lock:
                    stats.errors += 1
                raise MasterDataError(
                    f"shard {self.shard_id} at {self.url} rejected "
                    f"{method} {path} ({status}): {detail}"
                )
            return parsed
        with stats.lock:
            stats.errors += 1
        if kind == "server-error":
            raise ShardUnreachableError(
                f"shard {self.shard_id} at {self.url} kept failing: a 5xx "
                f"answer on every one of {self.retries + 1} attempts "
                f"({method} {path}): {last}",
                url=self.url,
                kind=kind,
            )
        raise ShardUnreachableError(
            f"shard {self.shard_id} at {self.url} unreachable after "
            f"{self.retries + 1} attempts ({method} {path}): {last}",
            url=self.url,
            kind=kind,
        )

    def _request_once(self, method: str, path: str, body: bytes | None) -> tuple[int, bytes]:
        conn = self._connection()
        headers = {"Content-Type": "application/json"} if body is not None else {}
        trace_header = trace.header_value()
        if trace_header is not None:
            headers[trace.HEADER] = trace_header
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()  # always drain: keep-alive needs a clean socket
        if response.status >= 500:
            raise _TransientServerError(
                f"shard server answered {response.status}: {data[:200]!r}"
            )
        return response.status, data

    def record_probes(self, n: int) -> None:
        with self._stats.lock:
            self._stats.probes += n

    def stats(self) -> dict[str, Any]:
        now = time.monotonic()
        s = self._stats
        with s.lock:
            mean_ms = 1000 * s.latency_s / s.round_trips if s.round_trips else 0.0
            if not s.open_until:
                circuit = "closed"
            else:
                circuit = "half-open" if now >= s.open_until else "open"
            return {
                "shard_id": self.shard_id,
                "url": self.url,
                "probes": s.probes,
                "round_trips": s.round_trips,
                "retries": s.retried,
                "errors": s.errors,
                "failovers": s.failovers,
                "circuit_opens": s.circuit_opens,
                "circuit": circuit,
                "latency_mean_ms": round(mean_ms, 3),
                "latency_max_ms": round(1000 * s.latency_max_s, 3),
            }


class ShardGroup:
    """One routing slot's replica set: rotation, failover, last resort.

    Every replica serves the *same* shard of the key space with the
    *same* content (the handshake enforces the digest), so any healthy
    replica's answer is bit-identical to any other's — failover can
    never change a result, only a route. Selection per request:

    1. a replica whose open circuit is due its timed half-open
       re-probe goes first (exactly one claimant per window), so a
       recovered replica rejoins the rotation promptly;
    2. healthy replicas follow, in rotation order (reads spread);
    3. open-circuit replicas come last — tried only when everything
       else already failed, which keeps a single-replica group exactly
       as available as the unreplicated client was.

    A replica that exhausts its retries (transport or 5xx —
    :class:`ShardUnreachableError`) records a failover and the request
    moves on; deterministic 4xx/protocol errors propagate immediately,
    because a sibling replica would answer them identically.
    """

    def __init__(
        self,
        shard_id: int,
        urls: Sequence[str],
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
        stats_token: str = "",
        circuit_threshold: int = 3,
        circuit_reset: float = 1.0,
    ):
        self.shard_id = shard_id
        self.replicas = [
            ShardEndpoint(
                shard_id,
                url,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                stats_token=stats_token,
                circuit_threshold=circuit_threshold,
                circuit_reset=circuit_reset,
            )
            for url in urls
        ]
        self.urls = tuple(e.url for e in self.replicas)
        self._lock = threading.Lock()
        self._next = 0
        self._local = threading.local()

    @property
    def url(self) -> str:
        """The replica that served this thread's last request (primary
        before any request) — the url error messages should name."""
        served = getattr(self._local, "served_by", None)
        return served.url if served is not None else self.urls[0]

    def _candidates(self) -> list[ShardEndpoint]:
        n = len(self.replicas)
        if n == 1:
            return list(self.replicas)
        with self._lock:
            start = self._next
            self._next = (start + 1) % n
        ordered = [self.replicas[(start + k) % n] for k in range(n)]
        probing: list[ShardEndpoint] = []
        healthy: list[ShardEndpoint] = []
        parked: list[ShardEndpoint] = []
        for endpoint in ordered:
            state = endpoint.circuit_state()
            if state == "closed":
                healthy.append(endpoint)
            elif state == "half-open" and endpoint.claim_half_open_probe():
                probing.append(endpoint)
            else:
                parked.append(endpoint)
        return probing + healthy + parked

    def request(self, method: str, path: str, payload: Any = None) -> Any:
        """One JSON request with replica failover (see class docstring)."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        candidates = self._candidates()
        failures: list[tuple[str, Exception]] = []
        with trace.span("shard-rpc", shard=self.shard_id, path=path):
            for endpoint in candidates:
                try:
                    parsed = endpoint._request_retrying(
                        method, path, body, endpoint._stats
                    )
                except ShardUnreachableError as exc:
                    endpoint.note_failure()
                    failures.append((endpoint.url, exc))
                    if len(candidates) > 1:
                        with endpoint._stats.lock:
                            endpoint._stats.failovers += 1
                        _FAILOVERS.inc()
                    continue
                endpoint.note_success()
                self._local.served_by = endpoint
                return parsed
        raise MasterDataError(
            f"shard {self.shard_id} has no reachable replica — all "
            f"{len(candidates)} tried ({method} {path}): "
            + "; ".join(f"{url}: {exc}" for url, exc in failures)
        )

    def record_probes(self, n: int) -> None:
        served = getattr(self._local, "served_by", None)
        (served if served is not None else self.replicas[0]).record_probes(n)

    def close(self) -> None:
        for endpoint in self.replicas:
            endpoint.close()

    def stats(self) -> dict[str, Any]:
        replicas = [e.stats() for e in self.replicas]
        agg = {
            key: sum(r[key] for r in replicas)
            for key in (
                "probes",
                "round_trips",
                "retries",
                "errors",
                "failovers",
                "circuit_opens",
            )
        }
        trips = agg["round_trips"]
        mean_ms = (
            sum(r["latency_mean_ms"] * r["round_trips"] for r in replicas) / trips
            if trips
            else 0.0
        )
        return {
            "shard_id": self.shard_id,
            "url": self.urls[0],
            "urls": list(self.urls),
            **agg,
            "latency_mean_ms": round(mean_ms, 3),
            "latency_max_ms": max(r["latency_max_ms"] for r in replicas),
            "replicas": replicas,
        }


def _normalize_topology(urls: Any) -> tuple[tuple[str, ...], ...]:
    """``urls`` → one tuple of replica urls per routing slot.

    Accepts the flat form (one url string per shard — the unreplicated
    topology every caller used before replication existed) and the
    nested form (a list of replica urls per shard); the two mix freely.
    """
    if isinstance(urls, (str, bytes)):
        raise MasterDataError(
            "shard urls must be a sequence (one entry per shard), not a "
            "single string — wrap it in a list"
        )
    groups: list[tuple[str, ...]] = []
    for entry in urls:
        if isinstance(entry, (str, bytes)):
            groups.append((str(entry).rstrip("/"),))
            continue
        replicas = tuple(str(u).rstrip("/") for u in entry if str(u).strip())
        if not replicas:
            raise MasterDataError(
                "a shard's replica list must name at least one url"
            )
        groups.append(replicas)
    return tuple(groups)


class RemoteMasterStore(MasterStore):
    """Master probes answered by N shard-server processes over HTTP.

    ``urls[i]`` must be the server(s) answering shard ``i`` of
    ``len(urls)``: a plain url string is an unreplicated slot, a list
    of url strings is a replica group served with rotation and
    client-side failover (see :class:`ShardGroup`). The handshake
    verifies *every* replica's ``(shard_id, shards)`` and that all
    members serve the same content digest, so a misconfigured cluster —
    or a single stale replica — fails at construction, not at the first
    wrong probe.

    The canonical :attr:`relation` is fetched lazily (and digest-
    verified) the first time a non-probe path needs it — region
    finding, certainty analysis, audit provenance. The probe hot path
    never touches it: positions *and* correction values come back over
    the wire, computed by the same shared
    :class:`~repro.master.store.ShardedMasterStore` code path every
    backend answers through.
    """

    backend = "remote"
    io_bound = True

    def __init__(
        self,
        urls: Sequence[str | Sequence[str]],
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
        max_batch: int = 512,
        stats_token: str | None = None,
        circuit_threshold: int = 3,
        circuit_reset: float = 1.0,
    ):
        if not urls:
            raise MasterDataError("the remote master store needs at least one shard url")
        #: One tuple of replica urls per routing slot (the canonical
        #: topology; a flat ``urls`` argument becomes 1-tuples).
        self.replica_urls = _normalize_topology(urls)
        #: Primary url per shard (replica 0) — the flat view callers of
        #: the unreplicated client already rely on.
        self.urls = tuple(group[0] for group in self.replica_urls)
        self.shards = len(self.replica_urls)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_batch = max_batch
        self.circuit_threshold = circuit_threshold
        self.circuit_reset = circuit_reset
        #: Identity of this store's per-shard counters: ``__reduce__``
        #: ships it, so a fork-safe rebuild in the same process keeps
        #: accumulating into the same stats instead of zeroing them.
        self._stats_token = stats_token if stats_token is not None else os.urandom(8).hex()
        self.groups = [
            ShardGroup(
                i,
                group,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                stats_token=self._stats_token,
                circuit_threshold=circuit_threshold,
                circuit_reset=circuit_reset,
            )
            for i, group in enumerate(self.replica_urls)
        ]
        self._normalizers: dict[str, HashIndex] = {}
        self._relation: Relation | None = None
        self._inner: SingleRelationStore | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._pool_pid = os.getpid()
        self._pool_lock = threading.Lock()
        self._digest, self._tuples = self._handshake()
        get_registry().register_source("remote_store", self.stats)

    # -- cluster handshake --------------------------------------------------

    def _handshake(self) -> tuple[str, int]:
        """Verify *every* replica of every shard before the first probe.

        A stale replica (wrong digest) or a misplaced one (wrong
        ``shard_id``) must be rejected loudly here — failover would
        otherwise route reads to it silently mid-clean.
        """
        digests: dict[str, str] = {}
        tuples = 0
        for i, group in enumerate(self.groups):
            for endpoint in group.replicas:
                health = endpoint.request("GET", "/healthz")
                if not isinstance(health, dict) or not health.get("ok"):
                    raise MasterDataError(
                        f"url {endpoint.url} is not a cerfix shard server "
                        f"(bad /healthz answer {health!r})"
                    )
                if health.get("shard_id") != i or health.get("shards") != self.shards:
                    raise MasterDataError(
                        f"shard-url order mismatch: {endpoint.url} serves shard "
                        f"{health.get('shard_id')}/{health.get('shards')} but was "
                        f"given as shard {i}/{self.shards} — list --shard-urls in "
                        f"shard-id order, one slot (url or replica list) per shard"
                    )
                digests[endpoint.url] = health["digest"]
                tuples = int(health["tuples"])
        if len(set(digests.values())) > 1:
            raise MasterDataError(
                "shard servers disagree on master content: digests "
                + ", ".join(f"{u}={d[:12]}…" for u, d in digests.items())
                + " — every shard, and every replica of it, must serve the "
                "same master data version"
            )
        return next(iter(digests.values())), tuples

    # -- relation (lazy, digest-verified) -----------------------------------

    @property
    def relation(self) -> Relation:
        if self._relation is None:
            payload = self.groups[0].request("GET", "/relation")
            relation = Relation(
                schema_from_json(payload["schema"]),
                [tuple(row) for row in payload["tuples"]],
            )
            digest = _relation_digest(relation)
            if digest != payload.get("digest") or digest != self._digest:
                raise MasterDataError(
                    f"master content fetched from {self.urls[0]} failed its "
                    f"digest check (got {digest[:12]}…, cluster serves "
                    f"{self._digest[:12]}…)"
                )
            self._relation = relation
            self._inner = SingleRelationStore(relation)
        return self._relation

    def __len__(self) -> int:
        return self._tuples

    # -- probing ------------------------------------------------------------

    def _normalizer(self, rule: EditingRule) -> HashIndex:
        normalizer = self._normalizers.get(rule.rule_id)
        if normalizer is None:
            normalizer = HashIndex(rule.m_attrs, rule.ops)
            self._normalizers[rule.rule_id] = normalizer
        return normalizer

    def route(self, rule: EditingRule, values: Mapping[str, Any]) -> int:
        """The shard id this probe routes to (no network involved)."""
        raw = tuple(values[a] for a in rule.lhs_attrs)
        return shard_of(self._normalizer(rule).key_of(raw), self.shards)

    def probe(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        return self.probe_many([(rule, values)], use_index=use_index)[0]

    def probe_many(
        self,
        requests: Sequence[tuple[EditingRule, Mapping[str, Any]]],
        *,
        use_index: bool = True,
    ) -> list[MasterMatch]:
        """Answer a batch with one round trip per (shard, chunk).

        Requests are grouped by routed shard; each shard's group goes
        out as one ``/probe_many`` POST (chunked at ``max_batch``), and
        the groups cross the network concurrently. Results come back in
        request order, bit-identical to per-probe calls.
        """
        if not requests:
            return []
        with trace.span("probe_many", probes=len(requests)):
            return self._probe_many(requests, use_index=use_index)

    def _probe_many(
        self,
        requests: Sequence[tuple[EditingRule, Mapping[str, Any]]],
        *,
        use_index: bool,
    ) -> list[MasterMatch]:
        by_shard: dict[int, list[int]] = {}
        wire: list[dict[str, Any]] = []
        for i, (rule, values) in enumerate(requests):
            key_values = {a: values[a] for a in rule.lhs_attrs}
            require_scalar_cells(key_values.values(), f"remote probe of {rule.rule_id}")
            by_shard.setdefault(self.route(rule, values), []).append(i)
            wire.append({"rule_id": rule.rule_id, "values": key_values})

        results: list[MasterMatch | None] = [None] * len(requests)

        def fetch_shard(shard_id: int, indexes: list[int]) -> None:
            group = self.groups[shard_id]
            for start in range(0, len(indexes), self.max_batch):
                chunk = indexes[start : start + self.max_batch]
                payload = {
                    "probes": [wire[i] for i in chunk],
                    "use_index": use_index,
                }
                answer = group.request("POST", "/probe_many", payload)
                matches = answer.get("matches") if isinstance(answer, dict) else None
                if not isinstance(matches, list) or len(matches) != len(chunk):
                    raise MasterDataError(
                        f"shard {shard_id} at {group.url} answered "
                        f"{len(matches) if isinstance(matches, list) else 'no'} "
                        f"matches for {len(chunk)} probes"
                    )
                group.record_probes(len(chunk))
                for i, match in zip(chunk, matches):
                    results[i] = MasterMatch(
                        positions=tuple(match["positions"]),
                        values=tuple(match["values"]),
                    )

        groups = list(by_shard.items())
        if len(groups) == 1:
            fetch_shard(*groups[0])
        else:
            # Pool threads have no ambient span — hand each group the
            # caller's context so shard-rpc spans stay in the trace.
            car = trace.carrier()

            def fetch_with_context(shard_id: int, indexes: list[int]) -> None:
                with trace.activate(car):
                    fetch_shard(shard_id, indexes)

            futures = [
                self._executor().submit(fetch_with_context, shard_id, indexes)
                for shard_id, indexes in groups
            ]
            errors = [f.exception() for f in futures]
            for exc in errors:
                if exc is not None:
                    raise exc
        assert all(m is not None for m in results), "shard group left probes unanswered"
        return results  # type: ignore[return-value]

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is not None and self._pool_pid != os.getpid():
                self._pool = None  # forked copy: its worker threads are gone
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.shards, thread_name_prefix="cerfix-remote"
                )
                self._pool_pid = os.getpid()
            return self._pool

    # -- index lifecycle ----------------------------------------------------

    def prebuild(self, ruleset: RuleSet) -> None:
        """Warm the local normalisers and every server's own shard."""
        for rule in ruleset:
            if not rule.is_constant:
                self._normalizer(rule)
        for group in self.groups:
            for endpoint in group.replicas:
                endpoint.request("POST", "/prebuild", {})

    def prepare_worker(self, ruleset: RuleSet) -> None:
        """Nothing to rebuild: a freshly unpickled worker reconnects to
        servers that are already warm."""
        for rule in ruleset:
            if not rule.is_constant:
                self._normalizer(rule)

    # -- diagnostics --------------------------------------------------------

    def ambiguous_keys(self, rule: EditingRule) -> dict[tuple, tuple[Any, ...]]:
        """Static ambiguity analysis over the (lazily fetched) canonical
        relation — a consistency-check path, not a probe path, so it
        deliberately runs local rather than adding wire surface."""
        self.relation  # ensure fetched
        assert self._inner is not None
        return self._inner.ambiguous_keys(rule)

    def stats(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "tuples": self._tuples,
            "shards": self.shards,
            "replicas": max(len(group) for group in self.replica_urls),
            "digest": self._digest,
            "urls": list(self.urls),
            "replica_urls": [list(group) for group in self.replica_urls],
            "per_shard": [group.stats() for group in self.groups],
        }

    # -- maintenance --------------------------------------------------------

    def apply_update(self, add=(), remove=()) -> tuple[int, int]:
        raise MasterDataError(
            "remote master data is read-only from the client: update the "
            "master data where the shard servers load it and restart them "
            "(every server advertises a content digest, so a half-updated "
            "cluster is rejected at handshake rather than probed)"
        )

    def content_digest(self) -> str:
        return self._digest

    # -- lifecycle / pickling ----------------------------------------------

    def close(self) -> None:
        """Close pooled connections and the shard-group executor."""
        for group in self.groups:
            group.close()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def __reduce__(self):
        # Ship the coordinates, not the sockets: a process-pool worker
        # reconnects (and re-handshakes) against the same cluster. The
        # stats token rides along so a same-process rebuild resumes its
        # counters (a new PID starts fresh either way).
        return (
            _rebuild_remote,
            (
                self.replica_urls,
                self.timeout,
                self.retries,
                self.backoff,
                self.max_batch,
                self._stats_token,
                self.circuit_threshold,
                self.circuit_reset,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"RemoteMasterStore({list(self.urls)!r}, tuples={self._tuples}, "
            f"digest={self._digest[:12]}…)"
        )


def _rebuild_remote(
    urls: tuple,
    timeout: float,
    retries: int,
    backoff: float,
    max_batch: int,
    stats_token: str | None = None,
    circuit_threshold: int = 3,
    circuit_reset: float = 1.0,
) -> RemoteMasterStore:
    return RemoteMasterStore(
        urls,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        max_batch=max_batch,
        stats_token=stats_token,
        circuit_threshold=circuit_threshold,
        circuit_reset=circuit_reset,
    )
