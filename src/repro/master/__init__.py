"""Master data management (paper Fig. 1, "master data manager")."""

from repro.master.manager import MasterDataManager, MasterMatch
from repro.master.remote import RemoteMasterStore
from repro.master.store import (
    STORE_BACKENDS,
    MasterStore,
    ShardedMasterStore,
    SingleRelationStore,
    SqliteMasterStore,
    make_store,
    require_scalar_cells,
    shard_of,
)

__all__ = [
    "MasterDataManager",
    "MasterMatch",
    "MasterStore",
    "SingleRelationStore",
    "ShardedMasterStore",
    "SqliteMasterStore",
    "RemoteMasterStore",
    "STORE_BACKENDS",
    "make_store",
    "require_scalar_cells",
    "shard_of",
]
