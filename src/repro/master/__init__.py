"""Master data management (paper Fig. 1, "master data manager")."""

from repro.master.manager import MasterDataManager, MasterMatch

__all__ = ["MasterDataManager", "MasterMatch"]
