"""The shard server: one master-data shard served over HTTP/JSON.

The scale-out counterpart of :class:`~repro.master.store.ShardedMasterStore`:
instead of N in-process partitions, N *processes* (possibly on N hosts)
each serve one shard of the probe key space, and
:class:`~repro.master.remote.RemoteMasterStore` routes probes to them
with the same deterministic :func:`~repro.master.store.shard_of` hash.
Every server loads the full master content (raw tuples are cheap; it is
the *probe indexes* that dominate memory at scale) but warms and serves
only its own shard's lookup structures — the same laziness that keeps a
process-pool worker from building shards its probes never route to.

Wire protocol (all JSON)::

    GET  /healthz      {ok, shard_id, shards, tuples, digest, name}
    GET  /stats        request counters + the underlying store's stats
    GET  /metrics      the process-wide registry dump + this server's
                       request counters and delta rates (see
                       :mod:`repro.obs.metrics`) — the scrape endpoint
                       for the whole cluster;
                       ``?format=prometheus`` answers the Prometheus
                       text exposition instead (:mod:`repro.obs.promfmt`)
    GET  /relation     {schema, tuples, digest} — the canonical content
    POST /prebuild     warm this shard's indexes for every rule spec
    POST /probe_many   {"probes": [{"rule_id": ..., "values": {...}}],
                        "use_index": true}
                       -> {"matches": [{"positions": [...], "values": [...]}]}

``/probe_many`` verifies that every probe's normalised key actually
routes to this shard (409 on a misroute): a client/server disagreement
on shard count or routing must surface as a loud error, never as a
silently incomplete match.

Run one server per shard::

    cerfix shard-server --instance ./inst --shard-id 0 --shards 3 --port 8401

or programmatically (tests, benchmarks) through :class:`ShardServer` /
:class:`ShardCluster`, which also handle spawn/health-check/shutdown for
real subprocess clusters.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Sequence

from repro.errors import MasterDataError
from repro.core.ruleset import RuleSet
from repro.obs import promfmt, trace
from repro.obs.metrics import get_registry
from repro.obs.monitor import install_process_gauges
from repro.master.store import (
    MasterMatch,
    ShardedMasterStore,
    require_scalar_cells,
)
from repro.relational.relation import Relation
from repro.relational.schema import schema_to_json

#: How long cluster helpers wait for a freshly spawned server to answer
#: its first health check before declaring the spawn failed.
SPAWN_TIMEOUT = 20.0


class ShardServerApp:
    """The request handling behind one shard server (transport-free).

    Holds the rule set and a :class:`ShardedMasterStore` over the full
    master content, but answers probes only for its own ``shard_id`` —
    anything else is a misroute. Separated from the HTTP plumbing so
    tests can drive the routing table directly.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        relation: Relation,
        shard_id: int,
        shards: int,
        *,
        name: str = "",
    ):
        if not 0 <= shard_id < shards:
            raise MasterDataError(f"shard id {shard_id} out of range for {shards} shards")
        require_scalar_cells(
            (v for t in relation.raw_tuples() for v in t), "shard-server master data"
        )
        self.ruleset = ruleset
        self.shard_id = shard_id
        self.shards = shards
        self.name = name
        self.store = ShardedMasterStore(relation, shards=shards)
        self.digest = self.store.content_digest()
        # Warm this shard's lookup dicts up front: probing then never
        # pays a first-request build, and concurrent handler threads
        # only ever *read* the built structures.
        self.store.build_shard(ruleset, shard_id)
        self._rules = {r.rule_id: r for r in ruleset if not r.is_constant}
        self._lock = threading.Lock()
        self.requests = 0
        self.probes = 0
        self.misroutes = 0
        registry = get_registry()
        registry.register_source(f"shard{shard_id}", self.counters)
        # The cluster monitor consumes flat instruments, not sources:
        # mirror the request counters into registry counters and time
        # every request into a histogram, and register the per-process
        # self-gauges so a scrape answers rss/fds/threads/uptime too.
        install_process_gauges(registry)
        self._req_counter = registry.counter("cerfix.shard.requests")
        self._probe_counter = registry.counter("cerfix.shard.probes")
        self._misroute_counter = registry.counter("cerfix.shard.misroutes")
        self._req_seconds = registry.histogram("cerfix.shard.request_seconds")

    def counters(self) -> dict[str, Any]:
        """This server's request counters (a registry source)."""
        with self._lock:
            return {
                "shard_id": self.shard_id,
                "requests": self.requests,
                "probes": self.probes,
                "misroutes": self.misroutes,
            }

    # -- routes -------------------------------------------------------------

    def handle(self, method: str, path: str, body: Any) -> tuple[int, Any]:
        """Route one request.

        Trace joining happens a layer up (the HTTP handler parses
        ``X-Cerfix-Trace`` and activates the client's context around
        this call) — ``handle`` keeps its three-argument shape so tests
        and embedders can wrap it without caring about telemetry."""
        start = time.perf_counter()
        try:
            return self._route(method, path, body)
        finally:
            self._req_seconds.observe(time.perf_counter() - start)

    def metrics_prometheus(self) -> str:
        """The registry as Prometheus text (``/metrics?format=prometheus``)."""
        registry = get_registry()
        registry.record_snapshot()
        return promfmt.render(registry.dump())

    def _route(self, method: str, path: str, body: Any) -> tuple[int, Any]:
        path = path.partition("?")[0]
        with self._lock:
            self.requests += 1
        self._req_counter.inc()
        if method == "GET" and path == "/metrics":
            registry = get_registry()
            registry.record_snapshot()
            return 200, {
                **registry.dump(),
                "shard": self.counters(),
                "rates": registry.rates(),
            }
        if method == "GET" and path == "/healthz":
            return 200, {
                "ok": True,
                "shard_id": self.shard_id,
                "shards": self.shards,
                "tuples": len(self.store),
                "digest": self.digest,
                "name": self.name,
            }
        if method == "GET" and path == "/stats":
            return 200, {
                "shard_id": self.shard_id,
                "requests": self.requests,
                "probes": self.probes,
                "misroutes": self.misroutes,
                "store": self.store.stats(),
            }
        if method == "GET" and path == "/relation":
            return 200, {
                "schema": schema_to_json(self.store.schema),
                "tuples": [list(t) for t in self.store.relation.tuples()],
                "digest": self.digest,
            }
        if method == "POST" and path == "/prebuild":
            built = self.store.build_shard(self.ruleset, self.shard_id)
            return 200, {"built": built}
        if method == "POST" and path == "/probe_many":
            return self._probe_many(body)
        return 404, {"error": f"no route {method} {path}"}

    def _probe_many(self, body: Any) -> tuple[int, Any]:
        if not isinstance(body, dict) or not isinstance(body.get("probes"), list):
            return 400, {"error": "expected a JSON body with a 'probes' list"}
        use_index = bool(body.get("use_index", True))
        matches: list[dict] = []
        for i, probe in enumerate(body["probes"]):
            rule_id = probe.get("rule_id") if isinstance(probe, dict) else None
            rule = self._rules.get(rule_id)
            if rule is None:
                return 400, {
                    "error": f"probe {i}: unknown or constant rule {rule_id!r} "
                    f"(this server holds {sorted(self._rules)})"
                }
            values = probe.get("values")
            if not isinstance(values, dict):
                return 400, {"error": f"probe {i}: 'values' must be an object"}
            missing = [a for a in rule.lhs_attrs if a not in values]
            if missing:
                return 400, {"error": f"probe {i}: rule {rule_id} needs values for {missing}"}
            expected, match = self.store.probe_routed(
                rule, values, use_index=use_index, expect_shard=self.shard_id
            )
            if match is None:
                with self._lock:
                    self.misroutes += 1
                self._misroute_counter.inc()
                return 409, {
                    "error": f"probe {i}: key routes to shard {expected}, "
                    f"not this server's shard {self.shard_id} — client and "
                    f"server disagree on shard count or routing",
                    "expected_shard": expected,
                }
            matches.append({"positions": list(match.positions), "values": list(match.values)})
        with self._lock:
            self.probes += len(matches)
        self._probe_counter.inc(len(matches))
        return 200, {"matches": matches}

    def match_from_json(self, obj: dict) -> MasterMatch:
        """Decode one wire match (shared with the client for symmetry)."""
        return MasterMatch(positions=tuple(obj["positions"]), values=tuple(obj["values"]))


class _Handler(BaseHTTPRequestHandler):
    app: ShardServerApp  # bound per server via a subclass

    #: HTTP/1.1: keep-alive by default, so the client's pooled
    #: connections actually persist across probes (every response
    #: carries an explicit Content-Length).
    protocol_version = "HTTP/1.1"

    #: Responses go out as two writes (header block, then body); with
    #: Nagle on, the second write stalls on the client's delayed ACK —
    #: ~40ms *per probe* on a sub-millisecond link.
    disable_nagle_algorithm = True

    def _respond(self, status: int, payload: Any) -> None:
        data = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _respond_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        if method == "GET" and path == "/metrics" and "format=prometheus" in query:
            try:
                self._respond_text(
                    200, self.app.metrics_prometheus(), promfmt.CONTENT_TYPE
                )
            except Exception as exc:
                self._respond(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                self._respond(400, {"error": "request body is not valid JSON"})
                return
        try:
            carrier = trace.parse_header(self.headers.get(trace.HEADER))
            if carrier is None:
                status, payload = self.app.handle(method, self.path, body)
            else:
                # Join the client's trace: a clean run over a spawned
                # cluster exports one connected tree across processes.
                with trace.activate(carrier):
                    with trace.span(
                        "shard-server", shard=self.app.shard_id, path=self.path
                    ):
                        status, payload = self.app.handle(method, self.path, body)
        except Exception as exc:  # a handler bug must not kill the thread
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._respond(status, payload)

    def do_GET(self):  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def log_message(self, fmt, *args):  # silence request logging
        pass


class _TrackingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that can sever its live connections.

    Keep-alive handler threads block reading the next request; plain
    ``server_close`` only closes the *listening* socket, which would
    leave a "stopped" server still answering pooled clients. Tracking
    the accepted sockets lets :meth:`close_connections` shut them down
    for real — what makes an in-process restart look like a process
    kill to the client (connection reset, then retry)."""

    daemon_threads = True

    def __init__(self, *args, **kwargs):
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def get_request(self):
        request, client_address = super().get_request()
        with self._conns_lock:
            self._conns.add(request)
        return request, client_address

    def shutdown_request(self, request):
        with self._conns_lock:
            self._conns.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        import socket as _socket

        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass

    def handle_error(self, request, client_address):
        # A client dropping its pooled keep-alive socket (close, restart,
        # retry-after-reset) is normal operation, not a server error.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class ShardServer:
    """One running shard server (threaded HTTP over a bound socket).

    In-process flavour: tests and benchmarks boot clusters of these on
    ephemeral ports without paying interpreter startup; the CLI's
    ``cerfix shard-server`` runs exactly this class in the foreground.
    Use as a context manager, or pair :meth:`start` with :meth:`close`.
    """

    def __init__(
        self,
        app: ShardServerApp,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.app = app
        handler = type("BoundShardHandler", (_Handler,), {"app": app})
        self.httpd = _TrackingHTTPServer((host, port), handler)
        self.host = host
        self.port = self.httpd.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ShardServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            daemon=True,
            name=f"cerfix-shard-{self.app.shard_id}",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground serving (the CLI path); Ctrl-C returns."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.httpd.server_close()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.close_connections()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# -- cluster lifecycle --------------------------------------------------------


class ShardCluster:
    """N shard servers over one master content, as one lifecycle.

    Two flavours behind one interface:

    * :meth:`in_process` — :class:`ShardServer` threads in this
      process (fast; unit tests, benchmarks);
    * :meth:`spawn` — ``cerfix shard-server`` *subprocesses* over an
      instance directory (what the CI ``remote-store`` leg and real
      deployments look like), each health-checked before the
      constructor returns and killed on :meth:`close` so no orphan
      survives the caller.

    With ``replicas > 1`` each shard gets that many identical members
    (same ``shard_id``/``shards``, same content) and :attr:`urls`
    becomes nested — one replica-url list per shard, directly the
    topology :class:`~repro.master.remote.RemoteMasterStore` takes.

    ``restart(i)`` replaces one member on its *same* port — the
    mid-run shard-restart scenario the conformance kit exercises —
    and :meth:`rolling_restart` cycles every member that way, one at
    a time, the way a real deployment rolls a new version out under
    live traffic.
    """

    def __init__(self, members: list[Any], restarter, replicas: int = 1):
        #: Flat, shard-major: ``members[shard_id * replicas + replica]``.
        self._members = members
        self._restart = restarter
        self.replicas = replicas

    def _index(self, shard_id: int, replica: int) -> int:
        return shard_id * self.replicas + replica

    @property
    def urls(self) -> list:
        """Flat url list when unreplicated (back-compat); one replica
        list per shard when ``replicas > 1``."""
        if self.replicas == 1:
            return [m["url"] for m in self._members]
        return [
            [self._members[self._index(s, r)]["url"] for r in range(self.replicas)]
            for s in range(self.shards)
        ]

    @property
    def shards(self) -> int:
        return len(self._members) // self.replicas

    def restart(self, shard_id: int, replica: int = 0) -> None:
        """Stop one member and bring a fresh one up on the same
        host:port (a rolling restart as the client sees it)."""
        i = self._index(shard_id, replica)
        self._members[i] = self._restart(self._members[i])

    def rolling_restart(self, pause: float = 0.0) -> None:
        """Restart every member, one at a time, ``pause`` seconds apart.

        With replicas this is the zero-downtime deployment shape: at
        any instant at most one replica of one shard is bouncing, so a
        failover-capable client keeps answering probes throughout.
        """
        for shard_id in range(self.shards):
            for replica in range(self.replicas):
                self.restart(shard_id, replica)
                if pause:
                    time.sleep(pause)

    def stop(self, shard_id: int, replica: int = 0) -> None:
        """Stop one member without replacement (the shard-down scenario)."""
        _stop_member(self._members[self._index(shard_id, replica)])

    def close(self) -> None:
        for member in self._members:
            _stop_member(member)

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- in-process flavour -------------------------------------------------

    @classmethod
    def in_process(
        cls,
        ruleset: RuleSet,
        relation: Relation,
        shards: int,
        *,
        replicas: int = 1,
        host: str = "127.0.0.1",
        name: str = "",
    ) -> "ShardCluster":
        def boot(shard_id: int, port: int) -> dict:
            app = ShardServerApp(
                ruleset,
                Relation(relation.schema, relation.tuples()),
                shard_id,
                shards,
                name=name,
            )
            server = ShardServer(app, host=host, port=port).start()
            return {
                "url": server.url,
                "server": server,
                "shard_id": shard_id,
                "port": server.port,
            }

        members = [boot(i, 0) for i in range(shards) for _ in range(replicas)]

        def restarter(member: dict) -> dict:
            _stop_member(member)
            return boot(member["shard_id"], member["port"])

        return cls(members, restarter, replicas)

    # -- subprocess flavour -------------------------------------------------

    @classmethod
    def spawn(
        cls,
        instance_dir: str | Path,
        shards: int,
        *,
        replicas: int = 1,
        host: str = "127.0.0.1",
        timeout: float = SPAWN_TIMEOUT,
    ) -> "ShardCluster":
        """Boot ``shards × replicas`` subprocess servers over an
        instance directory.

        Each process prints its bound URL on stdout (``--port 0`` picks
        an ephemeral port); spawn parses it, then polls ``/healthz``
        until the server answers. Any member failing to come up tears
        the whole cluster down before raising.
        """
        members: list[dict] = []
        try:
            for shard_id in range(shards):
                for _ in range(replicas):
                    members.append(
                        _spawn_member(instance_dir, shard_id, shards, host, 0, timeout)
                    )
        except Exception:
            for member in members:
                _stop_member(member)
            raise

        def restarter(member: dict) -> dict:
            _stop_member(member)
            return _spawn_member(
                instance_dir, member["shard_id"], shards, host, member["port"], timeout
            )

        return cls(members, restarter, replicas)


def _stop_member(member: dict) -> None:
    server = member.get("server")
    if server is not None:
        server.close()
        return
    process: subprocess.Popen | None = member.get("process")
    if process is None or process.poll() is not None:
        return
    process.terminate()
    try:
        process.wait(timeout=5)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=5)


def _child_env() -> dict[str, str]:
    """The spawn environment, with ``repro`` importable in the child.

    The parent may only be able to import ``repro`` through pytest's
    ``pythonpath = ["src"]`` config or a manual ``sys.path`` edit —
    neither of which a fresh interpreter inherits. Prepending the
    directory that actually provides the package keeps the child
    working in every launch mode (installed, PYTHONPATH, pytest).
    """
    import os

    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = package_root + os.pathsep + existing if existing else package_root
    return env


def _spawn_member(
    instance_dir: str | Path,
    shard_id: int,
    shards: int,
    host: str,
    port: int,
    timeout: float,
) -> dict:
    cmd = [
        sys.executable,
        "-m",
        "repro.master.shardserver",
        "--instance",
        str(instance_dir),
        "--shard-id",
        str(shard_id),
        "--shards",
        str(shards),
        "--host",
        host,
        "--port",
        str(port),
    ]
    process = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=_child_env()
    )
    url = _read_url(process, timeout)
    member = {
        "url": url,
        "process": process,
        "shard_id": shard_id,
        "port": int(url.rsplit(":", 1)[1]),
    }
    _wait_healthy(url, shard_id, shards, process, timeout)
    return member


def _read_url(process: subprocess.Popen, timeout: float) -> str:
    """Parse the ``listening on <url>`` line the server prints at bind.

    On failure the error carries the child's captured output (stderr is
    merged into the pipe): a server dying at startup must name its real
    cause — a traceback, a bad ``--instance`` path — not just an exit
    code and a timeout.
    """
    result: dict[str, str] = {}
    captured: list[str] = []

    def reader() -> None:
        assert process.stdout is not None
        for line in process.stdout:
            if "listening on " in line:
                result["url"] = line.rsplit("listening on ", 1)[1].split()[0]
                return
            captured.append(line)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout)
    if "url" not in result:
        _stop_member({"process": process})
        thread.join(1)  # let the reader drain what the dying child wrote
        output = "".join(captured[-15:]).strip()
        raise MasterDataError(
            f"shard server did not report a bound port within {timeout:.0f}s "
            f"(exit code {process.poll()!r})"
            + (f"; child output:\n{output}" if output else "")
        )
    return result["url"]


def _wait_healthy(
    url: str, shard_id: int, shards: int, process: subprocess.Popen, timeout: float
) -> None:
    from repro.master.remote import fetch_health

    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise MasterDataError(
                f"shard server {shard_id} at {url} exited with code {process.poll()}"
            )
        try:
            health = fetch_health(url)
        except MasterDataError as exc:
            last_error = exc
            time.sleep(0.05)
            continue
        if health.get("shard_id") != shard_id or health.get("shards") != shards:
            raise MasterDataError(
                f"shard server at {url} answered as shard "
                f"{health.get('shard_id')}/{health.get('shards')}, "
                f"expected {shard_id}/{shards}"
            )
        return
    raise MasterDataError(
        f"shard server {shard_id} at {url} failed its health check within "
        f"{timeout:.0f}s: {last_error}"
    )


# -- command line -------------------------------------------------------------


def build_app_from_args(args) -> ShardServerApp:
    """Resolve ``--instance`` / scenario flags into a ready app."""
    if args.instance:
        from repro.config import load_instance_parts

        config, master, ruleset = load_instance_parts(args.instance)
        name = config.name
    else:
        from repro.scenarios import hospital, uk_customers

        mod = hospital if args.scenario == "hospital" else uk_customers
        if args.master:
            from repro.relational.csvio import read_csv

            master = read_csv(args.master, schema=mod.MASTER_SCHEMA)
        elif args.scenario == "hospital":
            master = mod.generate_master(50)
        else:
            master = mod.paper_master()
        ruleset = (
            hospital.hospital_ruleset()
            if args.scenario == "hospital"
            else uk_customers.paper_ruleset()
        )
        name = args.scenario
    return ShardServerApp(ruleset, master, args.shard_id, args.shards, name=name)


def add_arguments(parser) -> None:
    """Shared between ``cerfix shard-server`` and ``python -m``."""
    parser.add_argument("--instance", help="serve an instance directory's master data")
    parser.add_argument("--scenario", choices=("uk", "hospital"), default="uk")
    parser.add_argument("--master", help="master data CSV (overrides the scenario default)")
    parser.add_argument(
        "--shard-id",
        type=int,
        required=True,
        dest="shard_id",
        help="which shard of the key space this server answers",
    )
    parser.add_argument(
        "--shards",
        type=int,
        required=True,
        help="total shard count (must match every other server "
        "and the clients' --shard-urls list length)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="listening port (0 picks an ephemeral port)"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="export request spans to this JSONL file (CERFIX_TRACE=path[|sample] "
        "works too — a spawned cluster inherits the client's env)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        dest="trace_sample",
        help="root-span sample rate for --trace (default 1.0)",
    )


def run_from_args(args) -> int:
    """Boot and serve in the foreground (the CLI/`python -m` entry)."""
    from repro.errors import CerFixError

    if getattr(args, "trace", None):
        trace.configure(args.trace, getattr(args, "trace_sample", 1.0))
    else:
        trace.configure_from_env()
    try:
        app = build_app_from_args(args)
        server = ShardServer(app, host=args.host, port=args.port)
    except CerFixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"cerfix shard-server: shard {app.shard_id}/{app.shards} "
        f"listening on {server.url} "
        f"({len(app.store)} tuples, digest {app.digest[:12]}…)",
        flush=True,
    )
    server.serve_forever()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="cerfix-shard-server",
        description="serve one master-data shard over HTTP/JSON",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
