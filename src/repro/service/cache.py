"""Shared, concurrency-safe caches for the entry service.

The batch layer's :class:`~repro.batch.cache.ProbeCache` was built for
one batch run: the *store* is thread-safe, but the hit/miss counters
live on per-shard managers that each own exactly one thread. The entry
service shares one cache between every concurrent session, so both the
store **and** the statistics must be race-free. This module provides:

:class:`SharedProbeCache`
    a read-through probe cache whose :class:`~repro.batch.cache.CacheStats`
    accumulate under the same lock as the store — safe to read and
    write from executor threads and the event loop alike;
:class:`LRUMemo`
    a generic bounded LRU (the suggestion memo — see
    :meth:`repro.monitor.session.MonitorSession.suggestion`);
:class:`MemoView`
    a token-prefixed view of an :class:`LRUMemo`, so entries computed
    under one configuration epoch (e.g. one set of precomputed
    regions) can never answer queries from another.

Everything here is *deterministic-value* caching: the cached objects
(frozen :class:`~repro.master.manager.MasterMatch` results, frozen
:class:`~repro.monitor.suggest.Suggestion` objects) are pure functions
of their keys, so a cache can only change speed, never output — the
differential parity suite pins that down.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.batch.cache import CacheStats, ProbeCache
from repro.master.manager import MasterMatch

_MISS = object()


class SharedProbeCache:
    """A :class:`ProbeCache` plus race-free aggregate statistics.

    The batch layer keeps hit/miss counters on per-shard managers (one
    owner thread each); the service has no such owner, so counters move
    *into* the cache, guarded by one lock together with the LRU store.
    ``get`` counts a hit or a miss; ``peek`` does neither (used by the
    batcher to re-check for a racing fill without double counting).
    """

    def __init__(self, maxsize: int = 8192):
        self._cache = ProbeCache(maxsize)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @property
    def maxsize(self) -> int:
        return self._cache.maxsize

    def get(self, key: tuple) -> MasterMatch | None:
        match = self._cache.get(key)
        with self._lock:
            if match is not None:
                self._hits += 1
            else:
                self._misses += 1
        return match

    def peek(self, key: tuple) -> MasterMatch | None:
        """The cached match without touching the hit/miss counters."""
        return self._cache.get(key)

    def put(self, key: tuple, match: MasterMatch) -> None:
        self._cache.put(key, match)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._cache.evictions,
            )

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"SharedProbeCache({len(self)}/{self.maxsize} entries, "
            f"{s.hits} hits / {s.misses} misses)"
        )


class LRUMemo:
    """A bounded, thread-safe LRU mapping of hashable keys to values.

    The service uses one as the shared *suggestion memo*: a suggestion
    is a deterministic function of the validated (attribute, value)
    pairs and the engine configuration, so concurrent sessions over
    duplicate-heavy traffic amortise the inference cost — the same way
    the probe cache amortises master lookups.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"memo maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._store: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._store.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                return default
            self._store.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:
        return f"LRUMemo({len(self)}/{self.maxsize} entries)"


class MemoView:
    """A token-scoped view of an :class:`LRUMemo`.

    The suggestion memo key does not mention the precomputed regions a
    session was created with (sessions capture them by reference). The
    service therefore scopes every session's memo to a *regions epoch*
    token: recomputing regions bumps the epoch, so sessions created
    afterwards read and write a fresh key space while older sessions
    keep hitting entries consistent with the regions they captured.
    """

    def __init__(self, memo: LRUMemo, token: Hashable):
        self._memo = memo
        self._token = token

    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._memo.get((self._token, key), default)

    def put(self, key: Hashable, value: Any) -> None:
        self._memo.put((self._token, key), value)
