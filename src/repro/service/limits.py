"""Admission control: bounded queues with ``429 Retry-After`` backpressure.

The service bounds three things:

* **global in-flight requests** (``max_inflight``) — accepted requests
  that have not finished yet, including those queued on a lock;
* **concurrently active sessions** (``max_sessions``) — open monitor
  sessions that have not reached a certain fix;
* **per-session pending operations** (``max_session_pending``) — a
  client hammering one session queues at most this many operations.

Every bound rejects with a machine-readable reason and a
``Retry-After`` hint derived from recent latency, instead of queueing
without limit — under overload the service degrades to fast 429s, not
to unbounded memory growth and timeout cascades.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class Admission:
    """The outcome of one admission check."""

    admitted: bool
    reason: str = ""
    retry_after: int = 0  # seconds; only meaningful when rejected

    def payload(self) -> dict:
        return {"error": self.reason, "retry_after": self.retry_after}


_ADMITTED = Admission(True)


class AdmissionController:
    """Thread-safe admission decisions for one service instance.

    The controller only counts; callers pair every successful
    ``enter_*`` with the matching ``exit_*`` (the service does so in
    ``finally`` blocks). ``retry_hint`` scales with the current queue
    depth and the caller-supplied mean latency so saturated deployments
    back clients off harder than briefly-busy ones.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 256,
        max_inflight: int = 1024,
        max_session_pending: int = 16,
    ):
        for name, value in (
            ("max_sessions", max_sessions),
            ("max_inflight", max_inflight),
            ("max_session_pending", max_session_pending),
        ):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.max_sessions = max_sessions
        self.max_inflight = max_inflight
        self.max_session_pending = max_session_pending
        self._lock = threading.Lock()
        self._inflight = 0
        self._active_sessions = 0
        self._session_pending: Counter[str] = Counter()

    # -- global request bound ----------------------------------------------

    def enter_request(self, mean_latency: float = 0.0) -> Admission:
        with self._lock:
            if self._inflight >= self.max_inflight:
                return Admission(
                    False,
                    reason=f"service saturated: {self._inflight} requests in flight "
                    f"(max_inflight={self.max_inflight})",
                    retry_after=self._retry_hint(self._inflight, mean_latency),
                )
            self._inflight += 1
            return _ADMITTED

    def exit_request(self) -> None:
        with self._lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    # -- session capacity ---------------------------------------------------

    def reserve_session(self, mean_latency: float = 0.0) -> Admission:
        """Atomically claim one active-session slot (check **and**
        increment under the lock — N concurrent opens racing an
        unreserved count would all pass an N-times-too-generous check).
        Pair every admitted reservation with :meth:`release_session`
        when the session completes, is evicted, or fails to open."""
        with self._lock:
            if self._active_sessions >= self.max_sessions:
                return Admission(
                    False,
                    reason=f"session capacity reached: {self._active_sessions} active "
                    f"(max_sessions={self.max_sessions})",
                    retry_after=self._retry_hint(self._active_sessions, mean_latency),
                )
            self._active_sessions += 1
            return _ADMITTED

    def release_session(self) -> None:
        with self._lock:
            self._active_sessions -= 1

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return self._active_sessions

    # -- per-session queue bound --------------------------------------------

    def enter_session_op(self, session_id: str, mean_latency: float = 0.0) -> Admission:
        with self._lock:
            pending = self._session_pending[session_id]
            if pending >= self.max_session_pending:
                return Admission(
                    False,
                    reason=f"session {session_id!r} has {pending} operations pending "
                    f"(max_session_pending={self.max_session_pending})",
                    retry_after=self._retry_hint(pending, mean_latency),
                )
            self._session_pending[session_id] += 1
            return _ADMITTED

    def exit_session_op(self, session_id: str) -> None:
        with self._lock:
            self._session_pending[session_id] -= 1
            if self._session_pending[session_id] <= 0:
                del self._session_pending[session_id]

    def forget_session(self, session_id: str) -> None:
        """Drop a deleted session's pending counter (if any)."""
        with self._lock:
            self._session_pending.pop(session_id, None)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _retry_hint(depth: int, mean_latency: float) -> int:
        """Seconds a client should wait: the time to drain the queue at
        the recent per-request latency, clamped to [1, 30]."""
        estimate = depth * max(mean_latency, 0.001)
        return max(1, min(30, round(estimate)))
