"""The probe micro-batcher: coalesced, batched master lookups.

Concurrent monitor sessions probe the master store with heavily
repeated keys — N users entering tuples that share a zip code all need
the same zip → (street, city) correction. The batcher sits between the
sessions' shared probe cache and the
:class:`~repro.master.store.MasterStore` and applies two amortisations:

**per-key request collapsing**
    the first miss for a key becomes its *leader*; every concurrent
    miss for the same key attaches to the leader's future instead of
    probing the store again — N sessions probing one key cost one
    store hit;
**micro-batching**
    pending leader misses are drained together (after a sub-millisecond
    window that lets concurrent misses pile up) and answered through
    one :meth:`~repro.master.store.MasterStore.probe_many` call.

Threading model: sessions run on executor threads and enter through
:class:`CoalescingMasterDataManager` — a synchronous
:meth:`~repro.master.manager.MasterDataManager.match` that checks the
(thread-safe) shared cache first and bridges only *misses* into the
event loop with ``run_coroutine_threadsafe``. The drain runs on the
loop; for in-memory backends (every store probing RAM, including
sqlite) the lookup happens inline — index reads never block the loop
meaningfully, and keeping them off the session executor makes the
bridge deadlock-free by construction. An ``io_bound`` store (the
remote shard cluster) instead has its ``probe_many`` dispatched to the
loop's default executor: a real network round trip must not stall
request accept, and the micro-batch is exactly the unit that amortises
it.

Determinism: probing is a pure function of (rule, key) over fixed
master data, so collapsing and batching can only change *speed*, never
output — the service parity suite pins this.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.core.rule import Constant, EditingRule
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager, MasterMatch
from repro.master.store import MasterStore
from repro.obs import trace
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.service.cache import SharedProbeCache
from repro.service.metrics import ServiceMetrics


class ProbeKeyer:
    """Normalised cache keys for a fixed rule set.

    The key space matches :class:`~repro.batch.cache.CachingMasterDataManager`:
    ``(rule id, key normalised with the rule's match operators)``, so
    'EH8 4AH' and 'eh8 4ah' share one entry. All keyers are built once
    up front — no lazy, racy per-thread construction.
    """

    def __init__(self, ruleset: RuleSet):
        self._probes: dict[str, HashIndex] = {
            rule.rule_id: HashIndex(rule.m_attrs, rule.ops)
            for rule in ruleset
            if not isinstance(rule.source, Constant)
        }

    def key(self, rule: EditingRule, values: Mapping[str, Any]) -> tuple:
        probe = self._probes.get(rule.rule_id)
        if probe is None:  # a rule outside the prebuilt set (defensive)
            probe = HashIndex(rule.m_attrs, rule.ops)
            self._probes[rule.rule_id] = probe
        raw = tuple(values[a] for a in rule.lhs_attrs)
        return (rule.rule_id, probe.key_of(raw))


class ProbeBatcher:
    """Coalesce concurrent probe misses into batched store lookups.

    Lives on the service's event loop; :meth:`bind_loop` must run
    before the first probe. ``window`` (seconds) is how long a drain
    waits for more misses to pile up — 0 still coalesces everything
    submitted in the same loop tick.
    """

    def __init__(
        self,
        store: MasterStore,
        cache: SharedProbeCache,
        *,
        window: float = 0.001,
        max_batch: int = 64,
        metrics: ServiceMetrics | None = None,
    ):
        self.store = store
        self.cache = cache
        self.window = window
        self.max_batch = max_batch
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pending: dict[tuple, asyncio.Future] = {}
        self._queue: list[tuple[tuple, EditingRule, Mapping[str, Any]]] = []
        self._drain_task: asyncio.Task | None = None

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    @property
    def loop(self) -> asyncio.AbstractEventLoop | None:
        return self._loop

    # -- the async path (runs on the loop) ---------------------------------

    async def probe(self, key: tuple, rule: EditingRule, values: Mapping[str, Any]) -> MasterMatch:
        """Resolve one cache miss, collapsing against in-flight keys."""
        pending = self._pending.get(key)
        if pending is not None:
            self.metrics.probe_coalesced()
            return await pending
        cached = self.cache.peek(key)  # a drain may have filled it meanwhile
        if cached is not None:
            return cached
        assert self._loop is not None, "ProbeBatcher.bind_loop() was never called"
        future: asyncio.Future = self._loop.create_future()
        self._pending[key] = future
        self._queue.append((key, rule, values))
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = self._loop.create_task(self._drain())
        return await future

    async def _drain(self) -> None:
        while self._queue:
            if self.window > 0:
                await asyncio.sleep(self.window)
            else:
                await asyncio.sleep(0)  # yield once: same-tick misses join
            batch, self._queue = self._queue[: self.max_batch], self._queue[self.max_batch:]
            if not batch:
                continue
            requests = [(rule, values) for _, rule, values in batch]
            try:
                with trace.span("probe", probes=len(batch)):
                    if self.store.io_bound:
                        # Network-backed stores (the remote shard cluster)
                        # block on real round trips; run them on the default
                        # executor so the loop keeps accepting sessions.
                        # In-memory stores stay inline — their probes are
                        # index reads, and a thread hop would cost more
                        # than it hides.
                        assert self._loop is not None
                        car = trace.carrier()
                        matches = await self._loop.run_in_executor(
                            None, lambda: self._probe_many_traced(car, requests)
                        )
                    else:
                        matches = self.store.probe_many(requests)
            except Exception as exc:  # propagate to every waiter, keep draining
                for key, _, _ in batch:
                    future = self._pending.pop(key, None)
                    if future is not None and not future.done():
                        future.set_exception(exc)
                continue
            self.metrics.batch_executed(len(batch))
            for (key, _, _), match in zip(batch, matches):
                self.cache.put(key, match)
                future = self._pending.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(match)

    def _probe_many_traced(self, car, requests):
        """Run the store's batch probe on an executor thread with the
        loop-side trace context re-activated — contextvars do not cross
        ``run_in_executor``, and the remote store's ``probe_many`` span
        (plus the shard RPC headers under it) must parent under the
        drain's ``probe`` span."""
        with trace.activate(car):
            return self.store.probe_many(requests)

    # -- the sync bridge (runs on executor threads) -------------------------

    def probe_sync(self, key: tuple, rule: EditingRule, values: Mapping[str, Any]) -> MasterMatch:
        """Blocking entry point for sessions running on executor threads.

        Loop-aware: under inline dispatch (single-core hosts) sessions
        run *on* the event loop thread, where a blocking bridge into the
        same loop would deadlock — those probes go straight to the store
        (the shared cache still amortises them; there is no concurrency
        to coalesce on one thread). Off-loop callers get the full
        coalescing/micro-batching path.
        """
        loop = self._loop
        if loop is None or not loop.is_running():
            # No loop (direct library use, unit tests): probe inline.
            match = self.store.probe(rule, values)
            self.cache.put(key, match)
            return match
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            match = self.store.probe(rule, values)
            self.cache.put(key, match)
            self.metrics.probe_direct()
            return match
        handle = asyncio.run_coroutine_threadsafe(self.probe(key, rule, values), loop)
        return handle.result()


class CoalescingMasterDataManager(MasterDataManager):
    """The sessions' view of master data inside the entry service.

    ``match`` consults the shared :class:`SharedProbeCache` first
    (thread-safe, hit/miss counters race-free), and routes misses
    through the :class:`ProbeBatcher`. One instance is shared by every
    concurrent session — unlike
    :class:`~repro.batch.cache.CachingMasterDataManager`, which is
    built one-per-shard-worker, this class has no single-owner-thread
    assumption anywhere.

    The cache is never invalidated: the service does not expose master
    updates, and :meth:`apply_update` refuses loudly rather than
    serving stale matches.
    """

    def __init__(
        self,
        source: Relation | MasterStore,
        cache: SharedProbeCache,
        batcher: ProbeBatcher,
        keyer: ProbeKeyer,
    ):
        super().__init__(source)
        self.cache = cache
        self.batcher = batcher
        self.keyer = keyer

    def match(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        if isinstance(rule.source, Constant):
            return super().match(rule, values, use_index=use_index)
        key = self.keyer.key(rule, values)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        return self.batcher.probe_sync(key, rule, values)

    def apply_update(self, add=(), remove=()):  # pragma: no cover - guarded path
        raise NotImplementedError(
            "the entry service shares one probe cache across sessions and "
            "never invalidates it; apply master updates on the engine and "
            "restart the service"
        )
