"""The routing core and the async entry service.

:class:`RoutingCore` is the single routing table of the HTTP surface:
the synchronous web explorer (:mod:`repro.explorer.web`) calls it under
one global lock, and :class:`AsyncCerFixService` calls it from executor
threads under per-session asyncio locks — same routes, same payloads,
one implementation.

:class:`AsyncCerFixService` is the concurrent orchestrator: it owns the
shared probe cache, the probe micro-batcher, the suggestion memo, the
admission controller and the metrics, multiplexes many concurrent
monitor sessions over one engine, and serialises exactly what must be
serialised — operations *within* one session (per-session asyncio
lock) and engine-mutating routes (one engine lock). Everything else
runs concurrently on a thread-pool executor.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Mapping
from urllib.parse import parse_qs

from repro.audit.stats import attribute_stats, overall_stats
from repro.errors import CerFixError, MonitorError
from repro.monitor.session import MonitorSession
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.obs.monitor import install_process_gauges
from repro.service.batcher import CoalescingMasterDataManager, ProbeBatcher, ProbeKeyer
from repro.service.cache import LRUMemo, MemoView, SharedProbeCache
from repro.service.limits import Admission, AdmissionController
from repro.service.metrics import ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.engine import CerFix


def session_state(session: MonitorSession) -> dict[str, Any]:
    """The JSON view of one monitor session (shared by every surface)."""
    suggestion = None if session.is_complete else session.suggestion()
    return {
        "tuple_id": session.tuple_id,
        "values": {k: str(v) for k, v in session.current_values().items()},
        "validated": sorted(session.validated),
        "complete": session.is_complete,
        "round": session.round_no,
        "conflicts": [c.describe() for c in session.conflicts],
        "suggestion": None
        if suggestion is None
        else {
            "attrs": list(suggestion.attrs),
            "strategy": suggestion.strategy.value,
            "rationale": suggestion.rationale,
        },
    }


def classify_route(method: str, parts: list[str]) -> tuple[str, str | None]:
    """(route class, session id) for admission/latency accounting.

    Classes: ``open`` (session creation), ``validate`` (session
    mutation), ``read`` (session state read/delete), ``other``
    (engine-level routes).
    """
    if parts[:2] == ["api", "sessions"]:
        if method == "POST" and len(parts) == 2:
            return "open", None
        if len(parts) == 4 and parts[3] == "validate":
            return "validate", parts[2]
        if len(parts) == 3:
            return "read", parts[2]
    return "other", None


class RoutingCore:
    """Routes HTTP verbs+paths onto one engine. Not itself thread-safe:
    the sync web app serialises calls with one lock; the async service
    guarantees that a session is only touched under its session lock
    and engine-level routes only under the engine lock."""

    def __init__(
        self,
        engine: "CerFix",
        *,
        session_factory: Callable[[Mapping[str, Any], str], MonitorSession] | None = None,
        metrics_json: Callable[[], dict] | None = None,
    ):
        self.engine = engine
        self.sessions: dict[str, MonitorSession] = {}
        self._session_factory = session_factory or (
            lambda values, tuple_id: engine.session(values, tuple_id)
        )
        self._metrics_json = metrics_json
        self._auto_id = itertools.count()

    def _default_tuple_id(self) -> str:
        # A monotone counter, skipping live ids: len(sessions) would
        # repeat an existing id forever once DELETE shrinks the dict.
        while True:
            tuple_id = f"web{next(self._auto_id)}"
            if tuple_id not in self.sessions:
                return tuple_id

    def handle(self, method: str, path: str, body: dict | None) -> tuple[int, dict | list]:
        raw_path, _, raw_query = path.partition("?")
        parts = [p for p in raw_path.split("/") if p]
        query = (
            {k: v[-1] for k, v in parse_qs(raw_query).items()} if raw_query else {}
        )
        try:
            return self._route(method, parts, query, body or {})
        except MonitorError as exc:
            return 409, {"error": str(exc)}
        except CerFixError as exc:
            return 400, {"error": str(exc)}

    def _route(self, method, parts, query, body) -> tuple[int, dict | list]:
        if parts == ["api", "instance"] and method == "GET":
            engine = self.engine
            return 200, {
                "input_schema": list(engine.ruleset.input_schema.names),
                "master_schema": list(engine.ruleset.master_schema.names),
                "rules": len(engine.ruleset),
                "master_tuples": len(engine.master),
                "mode": engine.mode.value,
                "strategy": engine.strategy.value,
                "store": engine.master.store.stats(),
            }
        if parts == ["api", "metrics"] and method == "GET":
            if self._metrics_json is None:
                return 404, {
                    "error": "metrics are collected by the async entry service; "
                    "run `cerfix serve --async`"
                }
            return 200, self._metrics_json()
        if parts == ["api", "rules"] and method == "GET":
            return 200, [
                {"id": r.rule_id, "rule": r.render(), "description": r.description}
                for r in self.engine.ruleset
            ]
        if parts == ["api", "rules", "check"] and method == "GET":
            report = self.engine.check_consistency(samples=int(query.get("samples", 20)))
            return 200, {
                "consistent": report.is_consistent,
                "conflicts": [c.describe() for c in report.conflicts],
                "cross_entity": [c.describe() for c in report.cross_entity_conflicts],
                "ambiguities": [a.describe() for a in report.ambiguities],
            }
        if parts == ["api", "regions"] and method == "GET":
            k = int(query.get("k", 5))
            regions = self.engine.precompute_regions(k=k)
            return 200, [
                {
                    "rank": i + 1,
                    "attrs": list(r.region.attrs),
                    "tableau": [p.render() for p in r.region.tableau],
                    "coverage": r.coverage,
                }
                for i, r in enumerate(regions)
            ]
        if parts == ["api", "clean"] and method == "POST":
            from repro.relational.relation import Relation

            rows = body.get("rows")
            if not isinstance(rows, list) or not rows:
                return 400, {"error": "body must carry a non-empty 'rows' array"}
            schema = self.engine.ruleset.input_schema
            dirty = Relation(schema, rows)
            truth_rows = body.get("truth")
            truth = Relation(schema, truth_rows) if truth_rows else None
            try:
                workers = int(body.get("workers", 1))
            except (TypeError, ValueError):
                return 400, {"error": f"'workers' must be an integer, got {body.get('workers')!r}"}
            result = self.engine.clean_relation(
                dirty,
                truth,
                workers=workers,
                backend=str(body.get("backend", "thread")),
                dedupe=bool(body.get("dedupe", True)),
                validated=tuple(body.get("validated", ())),
            )
            return 200, {
                "rows": [r.to_dict() for r in result.relation.rows()],
                "report": result.report.to_json(),
            }
        if parts == ["api", "sessions"] and method == "POST":
            tuple_id = str(body.get("tuple_id") or self._default_tuple_id())
            values = body.get("values")
            if not isinstance(values, dict):
                return 400, {"error": "body must carry a 'values' object"}
            if tuple_id in self.sessions:
                return 409, {"error": f"session {tuple_id!r} already exists"}
            session = self._session_factory(values, tuple_id)
            self.sessions[tuple_id] = session
            return 201, session_state(session)
        if len(parts) == 3 and parts[:2] == ["api", "sessions"] and method == "GET":
            session = self.sessions.get(parts[2])
            if session is None:
                return 404, {"error": f"no session {parts[2]!r}"}
            return 200, session_state(session)
        if len(parts) == 3 and parts[:2] == ["api", "sessions"] and method == "DELETE":
            session = self.sessions.pop(parts[2], None)
            if session is None:
                return 404, {"error": f"no session {parts[2]!r}"}
            return 200, {"deleted": parts[2], "complete": session.is_complete}
        if (
            len(parts) == 4
            and parts[:2] == ["api", "sessions"]
            and parts[3] == "validate"
            and method == "POST"
        ):
            session = self.sessions.get(parts[2])
            if session is None:
                return 404, {"error": f"no session {parts[2]!r}"}
            assignments = body.get("assignments")
            if not isinstance(assignments, dict):
                return 400, {"error": "body must carry an 'assignments' object"}
            session.validate(assignments)
            return 200, session_state(session)
        if parts == ["api", "audit"] and method == "GET":
            stats = attribute_stats(self.engine.audit)
            overall = overall_stats(self.engine.audit)
            return 200, {
                "attributes": [
                    {
                        "attr": s.attr,
                        "by_user": s.user_validations,
                        "by_cerfix": s.rule_fixes,
                        "pct_user": s.pct_user,
                        "pct_auto": s.pct_auto,
                    }
                    for s in stats
                ],
                "overall": {
                    "tuples": overall.tuples,
                    "user_share": overall.user_share,
                    "auto_share": overall.auto_share,
                },
            }
        if len(parts) == 3 and parts[:2] == ["api", "audit"] and method == "GET":
            events = self.engine.audit.by_tuple(parts[2])
            return 200, [e.to_json() for e in events]
        return 404, {"error": f"no route {method} /{'/'.join(parts)}"}


class AsyncCerFixService:
    """Multiplexed monitor sessions over one engine, asyncio-native.

    Shared infrastructure (one instance each, all sessions):

    * a read-through :class:`SharedProbeCache` over the engine's master
      store, fed by the :class:`ProbeBatcher`'s coalesced micro-batches;
    * a :class:`~repro.service.cache.LRUMemo` suggestion memo, scoped
      to the current regions epoch;
    * an :class:`AdmissionController` enforcing the global/per-session
      queue bounds (saturation answers ``429`` + ``Retry-After``);
    * :class:`ServiceMetrics` behind ``GET /api/metrics``.

    Session operations run on a thread-pool executor under per-session
    asyncio locks; engine-mutating routes (``/api/clean``,
    ``/api/regions``, …) under one engine lock. The service produces
    bit-identical per-tuple outputs to the serial monitor path for any
    interleaving of sessions — `tests/test_service.py` and the
    differential suite enforce this across every store backend.
    """

    def __init__(
        self,
        engine: "CerFix",
        *,
        max_sessions: int = 256,
        max_inflight: int = 1024,
        max_session_pending: int = 16,
        cache_size: int = 8192,
        memo_size: int = 4096,
        batch_window_ms: float = 1.0,
        max_batch: int = 64,
        workers: int = 8,
        dispatch: str = "auto",
        completed_retention: int = 1024,
    ):
        if dispatch not in ("auto", "executor", "inline"):
            raise ValueError(
                f"dispatch must be 'auto', 'executor' or 'inline', got {dispatch!r}"
            )
        if dispatch == "auto":
            # The executor buys overlapped session chases only when there
            # are cores to overlap on; on a single-core host the two
            # thread handoffs per request are pure overhead (~130µs,
            # measured) and inline dispatch on the loop wins outright.
            # Exception: an io_bound store (the remote shard cluster)
            # must never probe inline — a blocking network round trip
            # (worse, a retry cycle against a down shard) on the event
            # loop would stall accepts and backpressure for its whole
            # duration, core count notwithstanding.
            if engine.master.store.io_bound:
                dispatch = "executor"
            else:
                dispatch = "executor" if (os.cpu_count() or 1) > 1 else "inline"
        elif dispatch == "inline" and engine.master.store.io_bound:
            # Not a coercion: an operator who pinned inline for a remote
            # store has configured a service that freezes for
            # timeout x retries whenever a shard hiccups — refuse loudly.
            raise ValueError(
                "dispatch='inline' cannot be used with an io_bound master "
                "store (remote shard cluster): a blocking network probe on "
                "the event loop stalls every session; use 'executor' or 'auto'"
            )
        self.dispatch_mode = dispatch
        self.engine = engine
        self.metrics = ServiceMetrics()
        self.cache = SharedProbeCache(cache_size)
        self.memo = LRUMemo(memo_size)
        self.admission = AdmissionController(
            max_sessions=max_sessions,
            max_inflight=max_inflight,
            max_session_pending=max_session_pending,
        )
        self.batcher = ProbeBatcher(
            engine.master.store,
            self.cache,
            window=batch_window_ms / 1000.0,
            max_batch=max_batch,
            metrics=self.metrics,
        )
        self.keyer = ProbeKeyer(engine.ruleset)
        self.manager = CoalescingMasterDataManager(
            engine.master.store, self.cache, self.batcher, self.keyer
        )
        self.core = RoutingCore(
            engine, session_factory=self._open_session, metrics_json=self.metrics_json
        )
        if engine.use_index:
            engine.master.prebuild(engine.ruleset)  # probing happens from many threads
        self._executor = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="cerfix-svc")
        if completed_retention < 1:
            raise ValueError(f"completed_retention must be >= 1, got {completed_retention}")
        self.completed_retention = completed_retention
        self._engine_lock = asyncio.Lock()
        self._session_locks: dict[str, asyncio.Lock] = {}
        self._completed: set[str] = set()
        #: Completed sessions kept readable, oldest-first — bounded by
        #: ``completed_retention`` so a long-running service does not
        #: grow memory with every session it ever finished.
        self._retained: dict[str, None] = {}
        self._id_counter = itertools.count()
        registry = get_registry()
        self.metrics.register(registry, "service")
        install_process_gauges(registry)
        registry.set_gauge("cerfix.service.max_sessions", max_sessions)
        registry.set_gauge("cerfix.service.max_inflight", max_inflight)
        registry.set_gauge("cerfix.service.max_session_pending", max_session_pending)

    # -- lifecycle ----------------------------------------------------------

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the service to its event loop (the HTTP server calls
        this once, before accepting connections)."""
        self.batcher.bind_loop(loop)

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- session plumbing ----------------------------------------------------

    def _open_session(self, values: Mapping[str, Any], tuple_id: str) -> MonitorSession:
        """Session factory: inject the coalescing manager and the
        regions-scoped suggestion memo (runs on an executor thread).

        The memo token is the *same regions tuple the session captures*
        (read exactly once), so a concurrent ``/api/regions`` recompute
        can never leave a session writing memo entries under a token
        that disagrees with the regions it actually suggests from —
        content-equal regions share a key space, different regions never
        do."""
        regions = self.engine.regions
        memo = MemoView(self.memo, regions)
        return self.engine.session(
            values,
            tuple_id,
            regions=regions,
            master=self.manager,
            suggestion_memo=memo,
        )

    def _session_lock(self, session_id: str) -> asyncio.Lock:
        lock = self._session_locks.get(session_id)
        if lock is None:
            lock = self._session_locks[session_id] = asyncio.Lock()
        return lock

    def _drop_session_lock(self, session_id: str) -> None:
        """Remove a session's lock only when nothing holds or awaits it.

        Popping a contended lock would let the next request mint a
        *second* lock for the same id and run concurrently with the
        queued holder of the first; when waiters exist, the waiter's own
        request performs the cleanup at its end instead. (Runs on the
        loop, so the check and the pop are atomic.)"""
        lock = self._session_locks.get(session_id)
        if lock is not None and not lock.locked() and not getattr(lock, "_waiters", None):
            self._session_locks.pop(session_id, None)

    def _auto_session_id(self) -> str:
        """The next auto id, skipping ids a client claimed explicitly."""
        while True:
            candidate = f"s{next(self._id_counter)}"
            if candidate not in self.core.sessions:
                return candidate

    @property
    def active_sessions(self) -> int:
        """Open sessions holding an admission slot (reserved, not yet
        completed/evicted)."""
        return self.admission.active_sessions

    # -- request handling ----------------------------------------------------

    async def handle(
        self,
        method: str,
        path: str,
        body: dict | None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict | list, dict[str, str]]:
        """One request: admission → lock → route (executor) → account.

        ``headers`` (lower-cased names, as the HTTP front end parses
        them) may carry an ``X-Cerfix-Trace`` parent, in which case the
        request span joins the caller's trace. Returns ``(status,
        payload, extra headers)`` — the headers carry ``Retry-After``
        on 429s.
        """
        parts = [p for p in path.partition("?")[0].split("/") if p]
        route_class, session_id = classify_route(method, parts)
        carrier = trace.parse_header((headers or {}).get(trace.HEADER.lower()))
        with trace.activate(carrier):
            with trace.span("request", method=method, route=route_class):
                self.metrics.request_started()
                start = time.perf_counter()
                status: int = 500
                try:
                    status, payload, extra = await self._process(
                        method, path, body, parts, route_class, session_id
                    )
                    return status, payload, extra
                except Exception as exc:  # never let a route error kill the server
                    status = 500
                    return 500, {"error": f"internal error: {exc}"}, {}
                finally:
                    self.metrics.request_finished(
                        route_class, status, time.perf_counter() - start
                    )

    async def _process(
        self,
        method: str,
        path: str,
        body: dict | None,
        parts: list[str],
        route_class: str,
        session_id: str | None,
    ) -> tuple[int, dict | list, dict[str, str]]:
        mean_latency = self.metrics.mean_latency()
        admission = self.admission.enter_request(mean_latency)
        if not admission.admitted:
            return self._rejected(admission)
        reserved = False
        try:
            if route_class == "open":
                body = dict(body or {})
                if not body.get("tuple_id"):  # falsy ids get the auto id,
                    # matching RoutingCore's fallback, so the lock we take
                    # here is for the id the session is actually stored under
                    body["tuple_id"] = self._auto_session_id()
                session_id = str(body["tuple_id"])
                # Reservation, not a read-then-check: concurrent opens
                # racing an unreserved count would all be admitted.
                admit = self.admission.reserve_session(mean_latency)
                if not admit.admitted:
                    return self._rejected(admit)
                reserved = True
            if session_id is not None:
                pending = self.admission.enter_session_op(session_id, mean_latency)
                if not pending.admitted:
                    if reserved:
                        self.admission.release_session()
                    return self._rejected(pending)
                try:
                    async with self._session_lock(session_id):
                        status, payload = await self._dispatch(method, path, body)
                except BaseException:
                    if reserved:
                        self.admission.release_session()
                    raise
                finally:
                    self.admission.exit_session_op(session_id)
                if reserved and status != 201:
                    self.admission.release_session()  # the open never happened
                self._account_session(method, route_class, session_id, status, payload)
                if session_id not in self.core.sessions:
                    # 404s for arbitrary ids (and deletes) must not leave
                    # a Lock behind, or the dict grows with the id space.
                    self._drop_session_lock(session_id)
                    self.admission.forget_session(session_id)
            else:
                async with self._engine_lock:
                    status, payload = await self._dispatch(method, path, body)
            return status, payload, {}
        finally:
            self.admission.exit_request()

    async def _dispatch(self, method: str, path: str, body: dict | None) -> tuple[int, Any]:
        if self.dispatch_mode == "inline":
            # Runs on the loop; probe misses take the batcher's direct
            # path (see ProbeBatcher.probe_sync) so nothing deadlocks.
            return self.core.handle(method, path, body)
        loop = asyncio.get_running_loop()
        # Contextvars do not cross run_in_executor: ship the trace
        # context as a carrier so session work (suggest/chase spans,
        # remote probes) parents under this request's span.
        car = trace.carrier()
        return await loop.run_in_executor(
            self._executor, self._handle_traced, car, method, path, body
        )

    def _handle_traced(
        self, car: trace.TraceCarrier | None, method: str, path: str, body: dict | None
    ) -> tuple[int, Any]:
        with trace.activate(car):
            return self.core.handle(method, path, body)

    @staticmethod
    def _rejected(admission: Admission) -> tuple[int, dict, dict]:
        return 429, admission.payload(), {"Retry-After": str(admission.retry_after)}

    def _account_session(
        self, method: str, route_class: str, session_id: str, status: int, payload
    ) -> None:
        """Session lifecycle accounting (runs on the loop, so transitions
        for one session are ordered by its lock). A completed or evicted
        session releases its admission slot exactly once."""
        if route_class == "open" and status == 201:
            self.metrics.session_opened()
            if isinstance(payload, dict) and payload.get("complete"):
                self._mark_completed(session_id)
        elif route_class == "validate" and status == 200:
            if (
                isinstance(payload, dict)
                and payload.get("complete")
                and session_id not in self._completed
            ):
                self._mark_completed(session_id)
        elif method == "DELETE" and status == 200:
            if session_id not in self._completed:
                self.metrics.session_evicted()
                self.admission.release_session()
            self._completed.discard(session_id)
            self._retained.pop(session_id, None)

    def _mark_completed(self, session_id: str) -> None:
        """A session reached its certain fix: free its admission slot and
        retain it for reads, evicting the oldest retained session beyond
        ``completed_retention`` (completed work must not grow memory
        forever — the fix itself is in the response and the audit log)."""
        self._completed.add(session_id)
        self.metrics.session_completed()
        self.admission.release_session()
        self._retained[session_id] = None
        while len(self._retained) > self.completed_retention:
            oldest = next(iter(self._retained))
            del self._retained[oldest]
            self.core.sessions.pop(oldest, None)
            self._completed.discard(oldest)
            self._drop_session_lock(oldest)
            self.admission.forget_session(oldest)

    # -- metrics -------------------------------------------------------------

    def metrics_json(self) -> dict:
        data = self.metrics.to_json()
        stats = self.cache.stats
        data["probe_cache"] = {
            **stats.to_json(),
            "size": len(self.cache),
            "maxsize": self.cache.maxsize,
        }
        memo = self.memo.stats
        data["suggestion_memo"] = {
            "hits": memo.hits,
            "misses": memo.misses,
            "hit_rate": memo.hit_rate,
            "size": len(self.memo),
            "maxsize": self.memo.maxsize,
        }
        data["limits"] = {
            "max_sessions": self.admission.max_sessions,
            "max_inflight": self.admission.max_inflight,
            "max_session_pending": self.admission.max_session_pending,
        }
        data["dispatch"] = self.dispatch_mode
        data["registry"] = get_registry().dump()
        return data
