"""Async load generator for the entry service.

Drives many concurrent monitor sessions against a running
:class:`~repro.service.http.AsyncCerFixServer` the way real entry
traffic would: each tuple becomes one session (open → validate the
suggested attributes with the ground truth → repeat until a certain
fix), with ``concurrency`` sessions in flight at once over keep-alive
connections. 429 responses are retried with the server's
``Retry-After`` hint (compressed by ``retry_scale`` so saturated test
runs finish in seconds while still exercising the backpressure path).

Used by ``benchmarks/bench_service_load.py`` (the concurrency sweep
behind ``BENCH_service.json``), the CI ``service-load`` smoke leg, and
the differential service-parity suite — one driver, three consumers.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence
from urllib.parse import urlparse


class LoadError(Exception):
    """A session driver hit a non-retryable error."""


@dataclass
class SessionOutcome:
    """One driven session, as the client observed it."""

    tuple_id: str
    complete: bool
    rounds: int
    values: dict[str, str]
    latency_seconds: float  # open → final response, retries included
    retries_429: int


@dataclass
class LoadReport:
    """What one load run produced."""

    outcomes: list[SessionOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    requests: int = 0
    retries_429: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def sessions(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.complete)

    @property
    def dropped(self) -> int:
        """Sessions that never reached a certain fix — must be 0 for a
        healthy run (backpressure retries, it does not drop)."""
        return self.sessions - self.completed

    @property
    def throughput(self) -> float:
        """Completed sessions per second."""
        return self.completed / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def latency_percentile(self, q: float) -> float:
        ordered = sorted(o.latency_seconds for o in self.outcomes)
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]

    def values_in_order(self, names: Sequence[str]) -> list[tuple]:
        """Final fixed rows as value tuples, in driven order — the shape
        the differential harness compares against the serial monitor."""
        return [tuple(o.values[n] for n in names) for o in self.outcomes]


class _Connection:
    """One keep-alive HTTP/1.1 connection (a worker owns exactly one)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    async def request(
        self, method: str, path: str, body: Any = None
    ) -> tuple[int, Any, dict[str, str]]:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Content-Type: application/json\r\n\r\n"
        ).encode("latin-1")
        for attempt in (0, 1):  # one transparent reconnect on a dead socket
            await self._ensure()
            try:
                self._writer.write(head + payload)
                await self._writer.drain()
                return await self._read_response()
            except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise LoadError("unreachable")  # pragma: no cover

    async def _read_response(self) -> tuple[int, Any, dict[str, str]]:
        line = await self._reader.readuntil(b"\r\n")
        status = int(line.split(b" ", 2)[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        raw = await self._reader.readexactly(length) if length else b""
        body = json.loads(raw) if raw else None
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, body, headers


async def drive_load(
    url: str,
    rows: Sequence[Mapping[str, Any]],
    truth: Sequence[Mapping[str, Any]] | None = None,
    *,
    concurrency: int = 16,
    tuple_ids: Sequence[str] | None = None,
    max_rounds: int | None = None,
    max_retries: int = 200,
    retry_scale: float = 0.02,
) -> LoadReport:
    """Drive one session per row with ``concurrency`` workers.

    With ``truth``, suggestions are answered from the matching truth
    row (the oracle user of the serial paths); without it, suggested
    attributes are assured at their current values. ``retry_scale``
    multiplies the server's Retry-After hint so saturation tests finish
    quickly; real clients would honour the hint as-is.
    """
    if truth is not None and len(truth) != len(rows):
        raise LoadError(f"truth has {len(truth)} rows but the load has {len(rows)}")
    parsed = urlparse(url)
    host, port = parsed.hostname, parsed.port
    report = LoadReport()
    outcomes: list[SessionOutcome | None] = [None] * len(rows)
    queue: asyncio.Queue[int] = asyncio.Queue()
    for i in range(len(rows)):
        queue.put_nowait(i)

    async def _request_with_retry(conn: _Connection, method, path, body, counters):
        for _ in range(max_retries + 1):
            status, payload, headers = await conn.request(method, path, body)
            report.requests += 1
            if status != 429:
                return status, payload
            counters["retries"] += 1
            report.retries_429 += 1
            hint = float(headers.get("retry-after") or payload.get("retry_after") or 1)
            await asyncio.sleep(max(0.001, hint * retry_scale))
        raise LoadError(f"{method} {path}: still 429 after {max_retries} retries")

    async def _drive_one(conn: _Connection, index: int) -> SessionOutcome:
        tid = tuple_ids[index] if tuple_ids is not None else f"t{index}"
        values = {k: str(v) for k, v in dict(rows[index]).items()}
        truth_row = (
            {k: str(v) for k, v in dict(truth[index]).items()} if truth is not None else None
        )
        counters = {"retries": 0}
        start = time.perf_counter()
        status, state = await _request_with_retry(
            conn, "POST", "/api/sessions", {"tuple_id": tid, "values": values}, counters
        )
        if status != 201:
            raise LoadError(f"open {tid!r} failed: {status} {state!r}")
        rounds = 0
        while not state["complete"]:
            suggestion = state.get("suggestion")
            if suggestion is None or (max_rounds is not None and rounds >= max_rounds):
                break
            attrs = suggestion["attrs"]
            if truth_row is not None:
                assignments = {a: truth_row[a] for a in attrs if a in truth_row}
            else:
                assignments = {a: state["values"][a] for a in attrs}
            if not assignments:
                break
            status, state = await _request_with_retry(
                conn, "POST", f"/api/sessions/{tid}/validate",
                {"assignments": assignments}, counters,
            )
            if status != 200:
                raise LoadError(f"validate {tid!r} failed: {status} {state!r}")
            rounds += 1
        return SessionOutcome(
            tuple_id=tid,
            complete=bool(state["complete"]),
            rounds=rounds,
            values=dict(state["values"]),
            latency_seconds=time.perf_counter() - start,
            retries_429=counters["retries"],
        )

    async def _worker() -> None:
        conn = _Connection(host, port)
        try:
            while True:
                try:
                    index = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    outcomes[index] = await _drive_one(conn, index)
                except LoadError as exc:
                    report.errors.append(str(exc))
        finally:
            await conn.close()

    start = time.perf_counter()
    await asyncio.gather(*(_worker() for _ in range(max(1, concurrency))))
    report.elapsed_seconds = time.perf_counter() - start
    report.outcomes = [o for o in outcomes if o is not None]
    return report


def run_load(url: str, rows, truth=None, **kwargs) -> LoadReport:
    """Synchronous wrapper around :func:`drive_load` (fresh event loop)."""
    return asyncio.run(drive_load(url, rows, truth, **kwargs))
