"""Service metrics: race-free counters and latency percentiles.

One :class:`ServiceMetrics` instance serves a whole
:class:`~repro.service.app.AsyncCerFixService`. Every mutation happens
under one lock (requests arrive from the event loop, observations from
executor threads), and :meth:`to_json` returns a consistent snapshot —
the payload of ``GET /api/metrics``.

Latency is tracked per route *class* (``open`` / ``validate`` /
``read`` / ``other``) in bounded ring buffers, so percentiles reflect
recent traffic rather than the whole process lifetime.
"""

from __future__ import annotations

import threading
from collections import Counter, deque


#: Route classes a request is binned into for latency accounting.
ROUTE_CLASSES = ("open", "validate", "read", "other")


class LatencyWindow:
    """A bounded window of latency samples with on-demand percentiles."""

    def __init__(self, maxlen: int = 2048):
        self._samples: deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the window, 0.0 when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def to_json(self) -> dict:
        n = len(self._samples)
        if not n:
            return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
        return {
            "count": n,
            "p50_ms": round(self.percentile(0.50) * 1000, 3),
            "p95_ms": round(self.percentile(0.95) * 1000, 3),
            "p99_ms": round(self.percentile(0.99) * 1000, 3),
            "mean_ms": round(sum(self._samples) / n * 1000, 3),
        }

    def __len__(self) -> int:
        return len(self._samples)


class ServiceMetrics:
    """Counters + latency windows for one running entry service.

    Also exportable through the process-wide
    :class:`~repro.obs.metrics.MetricsRegistry` via :meth:`register`, so
    one registry dump carries the service counters next to the engine,
    batch and shard-tier metrics.
    """

    def __init__(self, window: int = 2048):
        self._lock = threading.Lock()
        self.requests_total = 0
        self.responses_by_status: Counter[int] = Counter()
        self.rejected_429 = 0
        self.sessions_opened = 0
        self.sessions_completed = 0
        self.sessions_evicted = 0
        self.inflight_requests = 0
        self.coalesced_probes = 0
        self.probe_batches = 0
        self.batched_misses = 0
        self.store_probes = 0
        self._latency = {cls: LatencyWindow(window) for cls in ROUTE_CLASSES}
        self._latency_sum = 0.0
        self._latency_count = 0

    # -- request lifecycle -------------------------------------------------

    def request_started(self) -> None:
        with self._lock:
            self.requests_total += 1
            self.inflight_requests += 1

    def request_finished(self, route_class: str, status: int, seconds: float) -> None:
        with self._lock:
            self.inflight_requests -= 1
            self.responses_by_status[status] += 1
            if status == 429:
                self.rejected_429 += 1
            self._latency.get(route_class, self._latency["other"]).record(seconds)
            self._latency_sum += seconds
            self._latency_count += 1

    # -- session lifecycle -------------------------------------------------

    def session_opened(self) -> None:
        with self._lock:
            self.sessions_opened += 1

    def session_completed(self) -> None:
        with self._lock:
            self.sessions_completed += 1

    def session_evicted(self) -> None:
        with self._lock:
            self.sessions_evicted += 1

    @property
    def sessions_active(self) -> int:
        """Open sessions that have not yet reached a certain fix."""
        with self._lock:
            return self.sessions_opened - self.sessions_completed - self.sessions_evicted

    # -- probe micro-batching ----------------------------------------------

    def probe_coalesced(self) -> None:
        """A probe attached to an identical in-flight key (one store hit
        served several sessions)."""
        with self._lock:
            self.coalesced_probes += 1

    def batch_executed(self, misses: int) -> None:
        with self._lock:
            self.probe_batches += 1
            self.batched_misses += misses
            self.store_probes += misses

    def probe_direct(self) -> None:
        """A miss probed inline on the loop thread (inline dispatch) —
        a store hit outside any batch."""
        with self._lock:
            self.store_probes += 1

    def mean_latency(self) -> float:
        """Lifetime mean request latency (seconds) — the admission
        controller's Retry-After estimate feeds on this. Kept as running
        totals: this sits on the per-request hot path, where walking the
        percentile windows would cost more than the request itself."""
        with self._lock:
            if not self._latency_count:
                return 0.0
            return self._latency_sum / self._latency_count

    # -- snapshot ----------------------------------------------------------

    def register(self, registry, name: str = "service") -> None:
        """Export this instance's snapshot through ``registry`` dumps.

        The registry holds the bound :meth:`to_json` weakly, so a closed
        service's metrics drop out of the dump with the service itself.
        """
        registry.register_source(name, self.to_json)

    def to_json(self) -> dict:
        with self._lock:
            return {
                "requests": {
                    "total": self.requests_total,
                    "in_flight": self.inflight_requests,
                    "by_status": {str(k): v for k, v in sorted(self.responses_by_status.items())},
                    "rejected_429": self.rejected_429,
                },
                "sessions": {
                    "opened": self.sessions_opened,
                    "completed": self.sessions_completed,
                    "evicted": self.sessions_evicted,
                    "active": self.sessions_opened
                    - self.sessions_completed
                    - self.sessions_evicted,
                },
                "probes": {
                    "coalesced": self.coalesced_probes,
                    "batches": self.probe_batches,
                    "batched_misses": self.batched_misses,
                    "store_probes": self.store_probes,
                },
                "latency_ms": {cls: w.to_json() for cls, w in self._latency.items()},
            }
