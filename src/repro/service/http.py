"""The asyncio HTTP server for the entry service (stdlib only).

A deliberately small HTTP/1.1 implementation over
:func:`asyncio.start_server`: request line + headers + Content-Length
body in, JSON out, keep-alive by default. It exists because the
standard library has no asyncio HTTP server and the repo takes no
third-party runtime dependencies — and the service only needs the JSON
API subset, not a general web server.

Two ways to run it:

* ``await AsyncCerFixServer(service).serve()`` — inside an existing
  event loop (the CLI's ``cerfix serve --async`` does
  ``asyncio.run`` over this);
* ``AsyncCerFixServer(service).start()`` — spawns a dedicated
  background event-loop thread and returns once the port is bound
  (what tests, benchmarks and :meth:`repro.engine.CerFix.serve_async`
  use; mirrors :class:`repro.explorer.web.CerFixServer`).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Any

from repro.obs import promfmt
from repro.obs.metrics import get_registry
from repro.service.app import AsyncCerFixService

#: Bounds a hostile/buggy client can hit before we drop the connection.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024


class _BadRequest(Exception):
    pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """(method, path, headers, body), or None on a cleanly closed socket."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests — normal keep-alive end
        raise _BadRequest("truncated request line") from None
    except asyncio.LimitOverrunError:
        raise _BadRequest("request line too long") from None
    try:
        method, path, _version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise _BadRequest(f"malformed request line {line!r}") from None
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.LimitOverrunError:
            # a single >64KiB header line trips the StreamReader limit
            # before the total-size check can
            raise _BadRequest("header line too long") from None
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise _BadRequest("headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length") or 0)
    except ValueError:
        raise _BadRequest(
            f"bad Content-Length {headers.get('content-length')!r}"
        ) from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(f"bad Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 429: "Too Many Requests", 500: "Internal Server Error"}


def _encode_response(
    status: int, payload: Any, extra_headers: dict[str, str], *, keep_alive: bool
) -> bytes:
    data = json.dumps(payload, default=str).encode("utf-8")
    return _encode_raw(status, data, "application/json", extra_headers, keep_alive=keep_alive)


def _encode_raw(
    status: int,
    data: bytes,
    content_type: str,
    extra_headers: dict[str, str],
    *,
    keep_alive: bool,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(data)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{k}: {v}" for k, v in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + data


class AsyncCerFixServer:
    """One entry service bound to one listening socket."""

    def __init__(self, service: AsyncCerFixService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- in-loop serving -----------------------------------------------------

    async def bind(self) -> "AsyncCerFixServer":
        """Bind the socket on the running loop (port 0 → ephemeral)."""
        loop = asyncio.get_running_loop()
        self.service.bind_loop(loop)
        self._loop = loop
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve(self) -> None:
        """Bind (if needed) and serve until :meth:`close` (or cancellation)."""
        if self._server is None:
            await self.bind()
        self._stop_event = asyncio.Event()
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            # Graceful drain: stop accepting, close client transports
            # (handlers observe EOF and exit their keep-alive loops),
            # then wait for them — no task cancellation, no noise.
            self._server.close()
            await self._server.wait_closed()
            for writer in list(self._writers):
                writer.close()
            if self._conn_tasks:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        asyncio.gather(*list(self._conn_tasks), return_exceptions=True),
                        timeout=5,
                    )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    writer.write(_encode_response(400, {"error": str(exc)}, {}, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, raw = request
                bare, _, query = path.partition("?")
                if (
                    method == "GET"
                    and bare in ("/metrics", "/api/metrics")
                    and "format=prometheus" in query
                ):
                    # Prometheus scrapes bypass the JSON routing table:
                    # text exposition of the process-wide registry.
                    registry = get_registry()
                    registry.record_snapshot()
                    text = promfmt.render(registry.dump()).encode("utf-8")
                    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                    writer.write(
                        _encode_raw(
                            200, text, promfmt.CONTENT_TYPE, {}, keep_alive=keep_alive
                        )
                    )
                    await writer.drain()
                    if not keep_alive:
                        break
                    continue
                body = None
                if raw:
                    try:
                        body = json.loads(raw)
                    except json.JSONDecodeError:
                        writer.write(_encode_response(
                            400, {"error": "request body is not valid JSON"}, {}, keep_alive=True
                        ))
                        await writer.drain()
                        continue
                status, payload, extra = await self.service.handle(
                    method, path, body, headers
                )
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                writer.write(_encode_response(status, payload, extra, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError, BrokenPipeError):
            pass  # client went away mid-request
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- background-thread runner --------------------------------------------

    def start(self) -> "AsyncCerFixServer":
        """Run the server on a dedicated event-loop thread; returns once
        the port is bound (or raises what binding raised)."""
        if self._thread is not None:
            return self

        def _run() -> None:
            try:
                asyncio.run(self.serve())
            except asyncio.CancelledError:
                pass
            except BaseException as exc:  # surface bind errors to start()
                self._startup_error = exc
                self._started.set()

        self._thread = threading.Thread(target=_run, daemon=True, name="cerfix-async-server")
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def close(self) -> None:
        """Stop serving and release the executor (idempotent)."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):  # loop raced to close
                loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.close()

    def __enter__(self) -> "AsyncCerFixServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
