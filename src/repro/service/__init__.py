"""The async point-of-entry service (paper §1, "point of data entry").

CerFix's headline scenario is a monitor that fixes tuples *as users
enter them*. The :mod:`repro.explorer.web` server handles that one
interactive session at a time; this package is the concurrent path — an
asyncio-native entry service that multiplexes many monitor sessions
over one engine:

:mod:`repro.service.app`
    the shared :class:`RoutingCore` (one routing table for the sync web
    explorer *and* the async service) and the
    :class:`AsyncCerFixService` orchestrator;
:mod:`repro.service.batcher`
    the probe micro-batcher — concurrent cache misses against the
    master store are collapsed per key and answered in batched lookups;
:mod:`repro.service.cache`
    async/thread-safe shared caches (probe results, suggestion memo);
:mod:`repro.service.limits`
    admission control — bounded global and per-session queues with
    ``429 Retry-After`` backpressure;
:mod:`repro.service.metrics`
    race-free counters and latency percentiles for ``/api/metrics``;
:mod:`repro.service.http`
    the asyncio HTTP server (stdlib only);
:mod:`repro.service.loadgen`
    the async load generator used by the benchmarks and the CI smoke
    leg.

The contract mirrors the store backends': concurrency can only change
*speed*, never output. For any interleaving of sessions, the set of
(fix, region, audit-event) outputs per tuple is bit-identical to the
serial monitor path — the differential suite enforces this across all
master-store backends.
"""

from repro.service.app import AsyncCerFixService, RoutingCore
from repro.service.batcher import CoalescingMasterDataManager, ProbeBatcher
from repro.service.cache import LRUMemo, MemoView, SharedProbeCache
from repro.service.http import AsyncCerFixServer
from repro.service.limits import Admission, AdmissionController
from repro.service.loadgen import LoadReport, run_load
from repro.service.metrics import LatencyWindow, ServiceMetrics

__all__ = [
    "Admission",
    "AdmissionController",
    "AsyncCerFixServer",
    "AsyncCerFixService",
    "CoalescingMasterDataManager",
    "LatencyWindow",
    "LoadReport",
    "LRUMemo",
    "MemoView",
    "ProbeBatcher",
    "RoutingCore",
    "ServiceMetrics",
    "SharedProbeCache",
    "run_load",
]
