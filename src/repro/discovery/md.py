"""Matching dependency discovery from matched record pairs.

An MD needs evidence of *matches*: pairs (input tuple, master tuple)
known to describe the same entity — e.g. a hand-matched sample, or the
clean half of a generated workload. Given such pairs, the discoverer:

1. for every (input attr, master attr) pair, finds the *cheapest*
   normaliser operator under which the pair agrees on at least
   ``min_confidence`` of the evidence (operator order: exact before
   fuzzy, so exact-matchable columns are not weakened);
2. keeps high-agreement pairs as LHS *match clause* candidates,
   restricted to clauses that are selective (they do not match
   everything against everything);
3. proposes identified (Y1 ⇌ Y2) pairs from the remaining
   exact-agreeing correspondences.

The result feeds :func:`repro.rules.derive.editing_rules_from_md`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ValidationError
from repro.relational.normalize import normalize_value
from repro.relational.row import Row
from repro.rules.md import MatchingDependency, MDMatch

#: Operator preference: exact first, then increasingly lossy.
DEFAULT_OPS: tuple[str, ...] = ("exact", "casefold", "collapse_spaces", "alnum", "digits")


@dataclass(frozen=True)
class CorrespondenceEvidence:
    """Agreement statistics for one (input attr, master attr, op)."""

    t_attr: str
    m_attr: str
    op: str
    agreement: float
    distinct_keys: int  # distinct normalised master values seen
    uniqueness: float  # distinct_keys / distinct master rows in evidence


def _agreement(
    pairs: Sequence[tuple[Mapping[str, Any], Row]],
    t_attr: str,
    m_attr: str,
    op: str,
) -> tuple[float, int]:
    """Fraction of pairs agreeing on (t_attr ≈op m_attr), and the number
    of distinct normalised master-side keys.

    A degenerate normalisation (empty string — e.g. ``digits`` applied
    to an all-letter name) never counts as agreement: it would make
    every letter column "match" every other.
    """
    agree = 0
    keys = set()
    for t, s in pairs:
        tv = normalize_value(t[t_attr], op)
        sv = normalize_value(s[m_attr], op)
        degenerate = (isinstance(tv, str) and not tv) or (isinstance(sv, str) and not sv)
        if tv == sv and not degenerate:
            agree += 1
            keys.add(sv)
    return agree / len(pairs), len(keys)


def discover_mds(
    pairs: Sequence[tuple[Mapping[str, Any], Row]],
    *,
    ops: Sequence[str] = DEFAULT_OPS,
    min_confidence: float = 0.98,
    min_uniqueness: float = 0.9,
    max_mds: int = 4,
    md_id: str = "mined_md",
) -> list[MatchingDependency]:
    """Discover MDs from matched (input values, master row) pairs.

    Every attribute correspondence agreeing with confidence at least
    ``min_confidence`` under some operator is classified as *key-like*
    — when its master column is (nearly) a key over the evidence:
    distinct normalised values per distinct master row at least
    ``min_uniqueness`` — or as an ordinary correspondence. One MD is
    emitted per key-like clause (at most ``max_mds``, most unique
    first): matching on that clause identifies **every other**
    correspondence, key-like ones included (matching on the phone
    identifies the address, even though the address is itself a key).
    MD ids are ``<md_id>_<clause attr>``.
    """
    if not pairs:
        raise ValidationError("discover_mds needs at least one matched pair")
    if not 0.0 < min_confidence <= 1.0:
        raise ValidationError(f"min_confidence must be in (0, 1], got {min_confidence}")

    t_attrs = sorted(pairs[0][0].keys())
    m_attrs = pairs[0][1].schema.names
    distinct_masters = len({s for _, s in pairs})

    correspondences: list[CorrespondenceEvidence] = []
    for t_attr in t_attrs:
        for m_attr in m_attrs:
            for op in ops:
                agreement, keys = _agreement(pairs, t_attr, m_attr, op)
                if agreement >= min_confidence:
                    correspondences.append(
                        CorrespondenceEvidence(
                            t_attr, m_attr, op, agreement, keys,
                            uniqueness=keys / distinct_masters,
                        )
                    )
                    break  # cheapest sufficient operator wins

    key_like = [c for c in correspondences if c.uniqueness >= min_uniqueness]
    if not key_like or len(correspondences) < 2:
        return []

    key_like.sort(key=lambda c: (-c.uniqueness, c.t_attr, c.m_attr))
    out: list[MatchingDependency] = []
    for clause_ev in key_like[:max_mds]:
        clause = MDMatch(clause_ev.t_attr, clause_ev.m_attr, clause_ev.op)
        ident = tuple(
            (c.t_attr, c.m_attr)
            for c in correspondences
            if c.t_attr != clause_ev.t_attr
        )
        if not ident:
            continue
        out.append(MatchingDependency(f"{md_id}_{clause_ev.t_attr}", (clause,), ident))
    return out
