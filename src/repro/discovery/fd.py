"""Functional dependency discovery (TANE-style, levelwise).

Finds the minimal exact (or approximate, by confidence) FDs ``X → A``
holding on a relation. The engine is *partition refinement*: the
partition of row ids by ``X``-values refines the partition by
``X ∪ {A}`` iff ``X → A`` holds; confidence is measured as the fraction
of rows that keep the majority ``A``-value of their ``X``-group (the g₃
error measure, complemented).

This is the classic algorithm at demo scale: levelwise lattice
traversal with minimality pruning (once ``X → A`` is emitted, no
superset of ``X`` is considered for ``A``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ValidationError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class FD:
    """A functional dependency ``lhs → rhs`` with its measured quality."""

    lhs: tuple[str, ...]
    rhs: str
    support: int  # rows in groups of size >= 2 (pairs that witness the FD)
    confidence: float  # 1.0 = exact

    def render(self) -> str:
        return f"[{', '.join(self.lhs)}] -> {self.rhs} (conf={self.confidence:.3f})"

    def __str__(self) -> str:
        return self.render()


def partition(relation: Relation, attrs: Sequence[str]) -> dict[tuple, list[int]]:
    """Group row positions by their projection on ``attrs``."""
    attrs = relation.schema.require(attrs)
    positions = [relation.schema.position(a) for a in attrs]
    groups: dict[tuple, list[int]] = {}
    for i, t in enumerate(relation.tuples()):
        groups.setdefault(tuple(t[p] for p in positions), []).append(i)
    return groups


def fd_confidence(relation: Relation, lhs: Sequence[str], rhs: str) -> tuple[float, int]:
    """(confidence, support) of ``lhs → rhs`` on the relation.

    Confidence is the fraction of rows keeping the majority rhs value
    of their lhs-group (1.0 iff the FD holds exactly); support counts
    rows in groups with at least two members (singleton groups satisfy
    any FD vacuously and carry no evidence).
    """
    if not lhs:
        # empty LHS: rhs must be constant over the whole relation
        groups = {(): list(range(len(relation)))}
    else:
        groups = partition(relation, lhs)
    rhs_pos = relation.schema.position(rhs)
    raw = relation.tuples()
    kept = 0
    support = 0
    total = len(relation)
    if total == 0:
        return 1.0, 0
    for rows in groups.values():
        counts: dict = {}
        for i in rows:
            v = raw[i][rhs_pos]
            counts[v] = counts.get(v, 0) + 1
        kept += max(counts.values())
        if len(rows) >= 2:
            support += len(rows)
    return kept / total, support


def fds_to_cfds(fds: Iterable[FD]) -> list:
    """Lift plain FDs to single-wildcard-row CFDs.

    The bridge between FD discovery and rule derivation: a variable CFD
    row over a master copy becomes a master-sourced editing rule via
    :func:`repro.rules.derive.editing_rules_from_cfd`.
    """
    from repro.core.pattern import PatternTuple, WILDCARD
    from repro.rules.cfd import CFD, CFDRow

    return [
        CFD(
            f"fd_{'_'.join(fd.lhs)}__{fd.rhs}",
            fd.lhs,
            fd.rhs,
            (CFDRow(PatternTuple(), WILDCARD),),
        )
        for fd in fds
    ]


def discover_fds(
    relation: Relation,
    *,
    max_lhs: int = 3,
    min_confidence: float = 1.0,
    min_support: int = 2,
    targets: Iterable[str] | None = None,
) -> list[FD]:
    """Minimal FDs ``X → A`` with ``|X| ≤ max_lhs``.

    ``targets`` restricts the dependent attributes considered (e.g. only
    the attributes you intend to make rule targets). Minimality: once
    ``X → A`` qualifies, supersets of ``X`` are pruned for ``A``.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValidationError(f"min_confidence must be in (0, 1], got {min_confidence}")
    names = relation.schema.names
    rhs_candidates = tuple(targets) if targets is not None else names
    relation.schema.require(rhs_candidates)
    found: list[FD] = []
    covered: dict[str, list[frozenset[str]]] = {a: [] for a in rhs_candidates}
    for size in range(1, max_lhs + 1):
        for lhs in itertools.combinations(names, size):
            lhs_set = frozenset(lhs)
            for rhs in rhs_candidates:
                if rhs in lhs_set:
                    continue
                if any(prev <= lhs_set for prev in covered[rhs]):
                    continue  # a subset already determines rhs: not minimal
                confidence, support = fd_confidence(relation, lhs, rhs)
                if confidence >= min_confidence and support >= min_support:
                    found.append(FD(lhs, rhs, support, confidence))
                    covered[rhs].append(lhs_set)
    return found
