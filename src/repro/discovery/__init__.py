"""Constraint discovery: FDs, constant CFDs and MDs from data.

The demo notes that editing rules can be "derived from integrity
constraints, e.g., cfds and matching dependencies [6] for which
discovery algorithms are already in place" — this subpackage provides
those algorithms, completing the pipeline

    sample data ──discover──▶ CFDs / MDs ──derive──▶ editing rules

* :mod:`repro.discovery.fd` — levelwise (TANE-style) discovery of
  minimal functional dependencies via partition refinement;
* :mod:`repro.discovery.cfd` — constant CFD mining with support and
  confidence thresholds (the vocabulary rules of the hospital scenario
  are rediscoverable from clean samples);
* :mod:`repro.discovery.md` — matching-dependency discovery from
  matched (input, master) record pairs, selecting per-pair normaliser
  operators.
"""

from repro.discovery.fd import FD, discover_fds, fd_confidence, fds_to_cfds, partition
from repro.discovery.cfd import discover_constant_cfds
from repro.discovery.md import discover_mds

__all__ = [
    "FD",
    "discover_fds",
    "fd_confidence",
    "fds_to_cfds",
    "partition",
    "discover_constant_cfds",
    "discover_mds",
]
