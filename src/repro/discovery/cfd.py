"""Constant CFD discovery.

Mines pattern rows ``(X = x̄ → A = a)`` with support and confidence
thresholds: every ``X``-value group of sufficient size whose ``A``
values are (sufficiently) constant yields one tableau row; rows with
the same embedded FD ``X → A`` are assembled into one CFD. The output
feeds :func:`repro.rules.derive.editing_rules_from_cfd` directly, which
is how a deployment bootstraps vocabulary rules (measure code → measure
name, state → state name, …) from a trusted sample.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.pattern import Eq, PatternTuple
from repro.errors import ValidationError
from repro.relational.relation import Relation
from repro.rules.cfd import CFD, CFDRow
from repro.discovery.fd import partition


def discover_constant_cfds(
    relation: Relation,
    *,
    max_lhs: int = 2,
    min_support: int = 2,
    min_confidence: float = 1.0,
    targets: Iterable[str] | None = None,
    lhs_candidates: Iterable[str] | None = None,
    cfd_id_prefix: str = "mined",
) -> list[CFD]:
    """Mine constant CFDs from a (trusted) sample relation.

    For every LHS attribute set ``X`` (``|X| ≤ max_lhs``, drawn from
    ``lhs_candidates`` when given) and dependent ``A``: each group of
    rows sharing an ``X``-value whose majority ``A``-value covers at
    least ``min_confidence`` of the group and whose size is at least
    ``min_support`` becomes a tableau row ``(X = x̄ → A = majority)``.
    Groups already explained by a smaller LHS are skipped (row
    minimality), mirroring FD minimality.

    Restricting ``lhs_candidates`` to known code/category attributes is
    the practical guard against overfitted rows — without it a key-like
    attribute (e.g. a provider id) memorises per-entity "vocabularies"
    that are just sampling accidents; the consistency checker catches
    the resulting contradictions, but better not to mine them at all.

    Returns one CFD per ``(X, A)`` pair that produced rows, named
    ``<prefix>_<X joined>_<A>``.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValidationError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if min_support < 1:
        raise ValidationError(f"min_support must be >= 1, got {min_support}")
    names = (
        relation.schema.require(lhs_candidates)
        if lhs_candidates is not None
        else relation.schema.names
    )
    rhs_candidates = tuple(targets) if targets is not None else relation.schema.names
    relation.schema.require(rhs_candidates)
    raw = relation.tuples()

    # (rhs, row position) pairs already explained by a smaller LHS; used
    # to keep tableau rows minimal across levels.
    explained: dict[str, set[int]] = {a: set() for a in rhs_candidates}

    out: list[CFD] = []
    for size in range(1, max_lhs + 1):
        for lhs in itertools.combinations(names, size):
            groups = partition(relation, lhs)
            for rhs in rhs_candidates:
                if rhs in lhs:
                    continue
                rhs_pos = relation.schema.position(rhs)
                rows: list[CFDRow] = []
                newly: set[int] = set()
                for key, members in sorted(groups.items(), key=repr):
                    if len(members) < min_support:
                        continue
                    if all(m in explained[rhs] for m in members):
                        continue
                    counts: dict = {}
                    for m in members:
                        v = raw[m][rhs_pos]
                        counts[v] = counts.get(v, 0) + 1
                    value, freq = max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))
                    if freq / len(members) < min_confidence:
                        continue
                    rows.append(
                        CFDRow(
                            PatternTuple({a: Eq(v) for a, v in zip(lhs, key)}),
                            Eq(value),
                        )
                    )
                    newly.update(members)
                if rows:
                    out.append(
                        CFD(
                            f"{cfd_id_prefix}_{'_'.join(lhs)}__{rhs}",
                            lhs,
                            rhs,
                            tuple(rows),
                        )
                    )
                    explained[rhs] |= newly
    return out
