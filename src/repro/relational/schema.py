"""Schemas: ordered, named attribute lists.

A :class:`Schema` is the static type of both input tuples and master data.
Attribute order matters (it is the CSV column order and the display order),
but all lookups are by name. Schemas are immutable; derived schemas are
built with :meth:`Schema.project` / :meth:`Schema.extend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError

#: Attribute data types understood by the substrate. Everything is stored
#: as Python objects; ``dtype`` is used for CSV parsing and generator
#: metadata, not enforced at runtime (dirty data is the point of CerFix).
DTYPES = ("str", "int")


@dataclass(frozen=True)
class Attribute:
    """A named, typed column.

    ``description`` is free-form documentation surfaced by the explorer
    (``cerfix rules``/``cerfix demo`` print it next to the column name).
    """

    name: str
    dtype: str = "str"
    description: str = ""

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if self.dtype not in DTYPES:
            raise SchemaError(f"attribute {self.name!r}: unknown dtype {self.dtype!r} (expected one of {DTYPES})")


class Schema:
    """An ordered collection of uniquely-named attributes.

    >>> s = Schema("person", ["FN", "LN", "zip"])
    >>> s.names
    ('FN', 'LN', 'zip')
    >>> s.position("LN")
    1
    >>> "zip" in s
    True
    """

    __slots__ = ("name", "attributes", "_positions", "_names")

    def __init__(self, name: str, attributes: Iterable[Attribute | str]):
        if not name:
            raise SchemaError("schema name must be non-empty")
        attrs = tuple(a if isinstance(a, Attribute) else Attribute(a) for a in attributes)
        if not attrs:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        positions: dict[str, int] = {}
        for i, attr in enumerate(attrs):
            if attr.name in positions:
                raise SchemaError(f"schema {name!r}: duplicate attribute {attr.name!r}")
            positions[attr.name] = i
        self.name = name
        self.attributes = attrs
        self._positions = positions
        self._names = tuple(positions)

    # -- lookups ---------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in schema order (precomputed: the chase and
        the planner read this on every tuple)."""
        return self._names

    def attribute(self, name: str) -> Attribute:
        """Return the :class:`Attribute` called ``name``."""
        return self.attributes[self.position(name)]

    def position(self, name: str) -> int:
        """Return the 0-based column position of ``name``."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no attribute {name!r} (has {self.names})") from None

    def require(self, names: Iterable[str]) -> tuple[str, ...]:
        """Check that every name exists; return them as a tuple.

        This is the single place rule/pattern constructors validate their
        attribute references, so error messages are uniform.
        """
        names = tuple(names)
        for n in names:
            self.position(n)
        return names

    # -- derivation ------------------------------------------------------

    def project(self, names: Iterable[str], name: str | None = None) -> "Schema":
        """A new schema with just ``names`` (in the order given)."""
        names = self.require(names)
        return Schema(name or f"{self.name}[{','.join(names)}]", [self.attribute(n) for n in names])

    def extend(self, attributes: Iterable[Attribute | str], name: str | None = None) -> "Schema":
        """A new schema with extra attributes appended."""
        extra = tuple(a if isinstance(a, Attribute) else Attribute(a) for a in attributes)
        return Schema(name or self.name, self.attributes + extra)

    # -- dunder ----------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {list(self.names)!r})"


# -- JSON round-trip ------------------------------------------------------

def schema_to_json(schema: Schema) -> dict:
    """The canonical JSON document form of a schema — shared by instance
    documents (:mod:`repro.config`) and sqlite master snapshots
    (:mod:`repro.master.store`), so the two can never drift."""
    return {
        "name": schema.name,
        "attributes": [
            {"name": a.name, "dtype": a.dtype, "description": a.description}
            for a in schema.attributes
        ],
    }


def schema_from_json(obj: dict) -> Schema:
    """Inverse of :func:`schema_to_json`.

    Raises ``KeyError`` on missing keys — call sites wrap it in their
    own error type (``ValidationError`` for instance documents,
    ``MasterDataError`` for snapshots).
    """
    return Schema(
        obj["name"],
        [
            Attribute(a["name"], a.get("dtype", "str"), a.get("description", ""))
            for a in obj["attributes"]
        ],
    )
