"""Hash indexes over relations.

A :class:`HashIndex` maps a (possibly normalised) key — the projection of a
row onto an attribute list — to the list of row positions carrying that
key. Indexes are what make editing-rule application O(1) per lookup
instead of a master-data scan; the scalability benchmark (E6) ablates
exactly this.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.relational.normalize import normalize_value


class HashIndex:
    """An equality index on ``attrs`` with per-attribute match operators.

    ``ops`` has one normaliser name per attribute (default ``exact``). Keys
    are normalised both at build time and at probe time, so approximate
    (MD-style) matching costs the same as exact matching.
    """

    __slots__ = ("attrs", "ops", "_buckets", "_size")

    def __init__(self, attrs: Sequence[str], ops: Sequence[str] | None = None):
        self.attrs = tuple(attrs)
        self.ops = tuple(ops) if ops is not None else ("exact",) * len(self.attrs)
        if len(self.ops) != len(self.attrs):
            raise ValueError(f"index on {self.attrs}: got {len(self.ops)} ops for {len(self.attrs)} attrs")
        self._buckets: dict[tuple, list[int]] = {}
        self._size = 0

    def key_of(self, values: Sequence[Any]) -> tuple:
        """Normalise a raw key (projection values) into a bucket key."""
        return tuple(normalize_value(v, op) for v, op in zip(values, self.ops))

    def add(self, position: int, values: Sequence[Any]) -> None:
        """Index ``values`` (the row's projection on ``attrs``) at ``position``."""
        self._buckets.setdefault(self.key_of(values), []).append(position)
        self._size += 1

    def build(self, projections: Iterable[Sequence[Any]]) -> "HashIndex":
        """Bulk-load from an iterable of row projections; returns ``self``."""
        for pos, values in enumerate(projections):
            self.add(pos, values)
        return self

    def build_prenormalized(self, keys: Iterable[tuple]) -> "HashIndex":
        """Bulk-load from *already normalised* bucket keys; returns ``self``.

        The columnar :class:`~repro.relational.relation.Relation` derives
        keys from per-column normalised arrays — each distinct column value
        is normalised once at intern time, not once per row — so the bulk
        build is pure id-array composition. Callers guarantee each key
        equals :meth:`key_of` of the corresponding raw projection; probes
        still go through :meth:`key_of`, so bucket contents are identical
        to a :meth:`build` over the raw projections.
        """
        buckets = self._buckets
        pos = -1
        for pos, key in enumerate(keys):
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [pos]
            else:
                bucket.append(pos)
        self._size += pos + 1
        return self

    def lookup(self, values: Sequence[Any]) -> list[int]:
        """Row positions whose projection normalises to the same key."""
        return self._buckets.get(self.key_of(values), [])

    def keys(self) -> Iterable[tuple]:
        """All distinct (normalised) keys present."""
        return self._buckets.keys()

    def duplicate_keys(self) -> dict[tuple, list[int]]:
        """Keys carried by more than one row — ambiguity diagnostics."""
        return {k: v for k, v in self._buckets.items() if len(v) > 1}

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        spec = ", ".join(
            a if op == "exact" else f"{a}~{op}" for a, op in zip(self.attrs, self.ops)
        )
        return f"HashIndex({spec}; {len(self._buckets)} keys, {self._size} entries)"
