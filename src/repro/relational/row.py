"""Immutable rows bound to a schema."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import RelationError
from repro.relational.schema import Schema


class Row:
    """An immutable tuple of values typed by a :class:`Schema`.

    Rows support name-based access (``row["zip"]``), dict conversion, and
    functional update (:meth:`with_values`). They hash and compare by
    (schema name, values) so they can be set members.

    >>> s = Schema("r", ["a", "b"])
    >>> r = Row(s, [1, 2])
    >>> r["b"]
    2
    >>> r.with_values({"a": 9}).values
    (9, 2)
    """

    __slots__ = ("schema", "values")

    def __init__(self, schema: Schema, values: Iterable[Any]):
        values = tuple(values)
        if len(values) != len(schema):
            raise RelationError(
                f"row arity {len(values)} does not match schema {schema.name!r} arity {len(schema)}"
            )
        self.schema = schema
        self.values = values

    @classmethod
    def from_dict(cls, schema: Schema, mapping: Mapping[str, Any]) -> "Row":
        """Build a row from a name→value mapping; every attribute required."""
        missing = [n for n in schema.names if n not in mapping]
        if missing:
            raise RelationError(f"row for schema {schema.name!r} missing attributes {missing}")
        return cls(schema, [mapping[n] for n in schema.names])

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self.schema.position(key)]

    def get(self, key: str, default: Any = None) -> Any:
        """Name-based access with a default for unknown attributes."""
        if key not in self.schema:
            return default
        return self[key]

    def to_dict(self) -> dict[str, Any]:
        """The row as an ordered name→value dict (a fresh copy)."""
        return dict(zip(self.schema.names, self.values))

    def project(self, names: Iterable[str]) -> tuple[Any, ...]:
        """The values of ``names``, in the order given."""
        return tuple(self[n] for n in names)

    def with_values(self, updates: Mapping[str, Any]) -> "Row":
        """A new row with some attributes replaced."""
        self.schema.require(updates.keys())
        vals = list(self.values)
        for name, value in updates.items():
            vals[self.schema.position(name)] = value
        return Row(self.schema, vals)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.schema.name == other.schema.name and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.schema.name, self.values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self.schema.names, self.values))
        return f"Row({self.schema.name}: {inner})"
