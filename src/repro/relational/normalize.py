"""Value normalisers for approximate matching.

Editing rules derived from matching dependencies (MDs) compare values with
similarity operators rather than strict equality. This reproduction keeps
the operator set small and deterministic: every operator is a *normaliser*
``f`` such that two values match iff ``f(u) == f(v)``. That makes
approximate matching hash-joinable (the master data manager indexes the
normalised key), which is what keeps point-of-entry lookups O(1).

Built-in normalisers:

``exact``
    identity — plain equality.
``casefold``
    case-insensitive comparison of strings.
``digits``
    keep decimal digits only — phone numbers written ``0791 724 85`` and
    ``079172485`` match.
``alnum``
    casefolded alphanumerics only — postcodes ``EH8 4AH`` / ``eh84ah``
    match, street strings survive punctuation differences.
``collapse_spaces``
    casefold + runs of whitespace collapsed to one space.

New operators can be registered with :func:`register_normalizer`; names are
referenced from the textual rule syntax (``phn ~digits~ Mphn``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ValidationError

Normalizer = Callable[[Any], Any]


def _exact(value: Any) -> Any:
    return value


def _casefold(value: Any) -> Any:
    return value.casefold() if isinstance(value, str) else value


def _digits(value: Any) -> Any:
    if isinstance(value, str):
        return "".join(ch for ch in value if ch.isdigit())
    return value


def _alnum(value: Any) -> Any:
    if isinstance(value, str):
        return "".join(ch for ch in value.casefold() if ch.isalnum())
    return value


def _collapse_spaces(value: Any) -> Any:
    if isinstance(value, str):
        return " ".join(value.casefold().split())
    return value


#: Registry of named normalisers. Treat as read-only; add entries through
#: :func:`register_normalizer`.
NORMALIZERS: dict[str, Normalizer] = {
    "exact": _exact,
    "casefold": _casefold,
    "digits": _digits,
    "alnum": _alnum,
    "collapse_spaces": _collapse_spaces,
}


#: Bounded memo for :func:`normalize_value`. Keyed by ``(op, type, value)``
#: so values that compare equal across types (``1`` / ``1.0`` / ``True``)
#: keep distinct entries; unhashable values bypass the cache. When the memo
#: fills up it is flushed wholesale — normaliser output is cheap to
#: recompute and hot keys repopulate within one probe burst, which beats
#: paying LRU bookkeeping on every lookup.
_MEMO_MAX = 65536
_memo: dict[tuple, Any] = {}
_MISS = object()


def normalize_value(value: Any, op: str = "exact") -> Any:
    """Apply the normaliser named ``op`` to ``value``."""
    key = (op, value.__class__, value)
    try:
        cached = _memo.get(key, _MISS)
    except TypeError:  # unhashable value: normalise directly
        try:
            fn = NORMALIZERS[op]
        except KeyError:
            raise ValidationError(
                f"unknown match operator {op!r} (known: {sorted(NORMALIZERS)})"
            ) from None
        return fn(value)
    if cached is not _MISS:
        return cached
    try:
        fn = NORMALIZERS[op]
    except KeyError:
        raise ValidationError(f"unknown match operator {op!r} (known: {sorted(NORMALIZERS)})") from None
    result = fn(value)
    if len(_memo) >= _MEMO_MAX:
        _memo.clear()
    _memo[key] = result
    return result


def register_normalizer(name: str, fn: Normalizer) -> None:
    """Register a custom normaliser under ``name``.

    Raises :class:`~repro.errors.ValidationError` if the name is taken, so
    scenario packages cannot silently shadow each other.
    """
    if name in NORMALIZERS:
        raise ValidationError(f"normalizer {name!r} already registered")
    NORMALIZERS[name] = fn
    # A scenario may delete its operator from NORMALIZERS and re-register
    # the name with a different function; drop any memoised results so the
    # new normaliser is actually consulted.
    for key in [k for k in _memo if k[0] == name]:
        del _memo[key]
