"""Relations: schema-typed, columnar collections of rows with lazy hash indexes.

Storage is columnar with per-column value interning: each attribute owns a
:class:`ColumnDict` (distinct values stored once, plus lazily computed
per-operator normalised arrays) and a row is just one compact value-id per
column. The public API is unchanged from the row-oriented version —
:class:`~repro.relational.row.Row` views, ``lookup``/``project``/``select``,
``tuples()``/``raw_tuples()`` and pickling all behave identically — but the
hot paths become set-at-a-time column passes:

* index builds compose pre-normalised id-arrays (``normalize_value`` runs
  once per *distinct* column value, not once per row per probe),
* ``tuples()``/``raw_tuples()`` serve a cached materialisation that is
  invalidated on mutation, and
* pickling ships columns + dictionaries instead of row tuples, so repeated
  values cross process boundaries once.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import RelationError
from repro.relational.index import HashIndex
from repro.relational.normalize import normalize_value
from repro.relational.row import Row
from repro.relational.schema import Schema


class ColumnDict:
    """Interning dictionary for one column.

    ``values`` maps value-id → value; ``_ids`` maps ``(type, value)`` → id
    so values that compare equal across types (``1`` / ``1.0`` / ``True``)
    keep distinct ids and decode back to exactly what was stored.
    Unhashable values cannot be interned and get a fresh id each time.

    ``normalized(op)`` returns the parallel array value-id → normalised
    value for one match operator, computed lazily per op and extended
    incrementally as new values are interned — this is what lets the
    relation hand :meth:`HashIndex.build_prenormalized` ready-made keys.
    """

    __slots__ = ("values", "_ids", "_norms")

    def __init__(self, values: Iterable[Any] = ()):
        self.values: list[Any] = []
        self._ids: dict[tuple, int] = {}
        self._norms: dict[str, list[Any]] = {}
        for value in values:
            self.intern(value)

    def intern(self, value: Any) -> int:
        """The id for ``value``, allocating (and normalising) if new."""
        try:
            key = (value.__class__, value)
            vid = self._ids.get(key)
        except TypeError:  # unhashable: store without interning
            key = None
            vid = None
        if vid is None:
            vid = len(self.values)
            self.values.append(value)
            if key is not None:
                self._ids[key] = vid
            for op, norm in self._norms.items():
                norm.append(normalize_value(value, op))
        return vid

    def normalized(self, op: str) -> list[Any]:
        """The id → normalised-value array for ``op`` (lazily computed)."""
        norm = self._norms.get(op)
        if norm is None:
            norm = [normalize_value(v, op) for v in self.values]
            self._norms[op] = norm
        return norm

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"ColumnDict({len(self.values)} values)"


class Relation:
    """An in-memory columnar relation.

    Rows are stored as one value-id per column (see :class:`ColumnDict`);
    :meth:`rows` yields :class:`Row` views on demand. Hash indexes are
    built lazily per (attribute list, operator list) from pre-normalised
    column arrays and invalidated on mutation, so callers never see a
    stale index.

    >>> s = Schema("r", ["a", "b"])
    >>> rel = Relation(s, [(1, "x"), (2, "y")])
    >>> rel.lookup(("a",), (2,))[0]["b"]
    'y'
    """

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any] | Row | Mapping[str, Any]] = ()):
        self.schema = schema
        self._dicts: list[ColumnDict] = [ColumnDict() for _ in range(len(schema))]
        self._cols: list[list[int]] = [[] for _ in range(len(schema))]
        self._nrows = 0
        self._indexes: dict[tuple, HashIndex] = {}
        self._mat: list[tuple] | None = None
        self._version = 0
        self.extend(rows)

    # -- mutation --------------------------------------------------------

    def append(self, row: Sequence[Any] | Row | Mapping[str, Any]) -> int:
        """Add one row; returns its position. Invalidates indexes."""
        values = self._coerce(row)
        for col, d, value in zip(self._cols, self._dicts, values):
            col.append(d.intern(value))
        self._nrows += 1
        self._indexes.clear()
        self._mat = None
        self._version += 1
        return self._nrows - 1

    def extend(self, rows: Iterable[Sequence[Any] | Row | Mapping[str, Any]]) -> None:
        """Add many rows. Invalidates indexes once."""
        coerced = [self._coerce(r) for r in rows]
        if not coerced:
            return
        for pos, (col, d) in enumerate(zip(self._cols, self._dicts)):
            intern = d.intern
            col.extend(intern(t[pos]) for t in coerced)
        self._nrows += len(coerced)
        self._indexes.clear()
        self._mat = None
        self._version += 1

    def update_cell(self, position: int, attr: str, value: Any) -> None:
        """Replace one cell in place. Invalidates indexes."""
        pos = self.schema.position(attr)
        col = self._cols[pos]
        try:
            col[position]
        except IndexError:
            raise RelationError(f"relation {self.schema.name!r} has no row {position}") from None
        col[position] = self._dicts[pos].intern(value)
        self._indexes.clear()
        self._mat = None
        self._version += 1

    def delete_rows(self, positions: Iterable[int]) -> None:
        """Remove rows by position. Invalidates indexes.

        Positions of the remaining rows shift down, so any stored row
        references (e.g. audit provenance) refer to the relation version
        at the time they were recorded — snapshot semantics. Interned
        values stay in the column dictionaries (ids are never reused);
        value-level views (``column``, ``active_domain``) read the id
        arrays, so dropped values do not leak into them.
        """
        drop = set(positions)
        bad = [p for p in drop if not 0 <= p < self._nrows]
        if bad:
            raise RelationError(f"relation {self.schema.name!r} has no rows {sorted(bad)}")
        if not drop:
            return
        keep = [i for i in range(self._nrows) if i not in drop]
        self._cols = [[col[i] for i in keep] for col in self._cols]
        self._nrows = len(keep)
        self._indexes.clear()
        self._mat = None
        self._version += 1

    def _coerce(self, row: Sequence[Any] | Row | Mapping[str, Any]) -> tuple:
        if isinstance(row, Row):
            if row.schema != self.schema:
                raise RelationError(
                    f"row of schema {row.schema.name!r} cannot join relation {self.schema.name!r}"
                )
            return row.values
        if isinstance(row, Mapping):
            return Row.from_dict(self.schema, row).values
        values = tuple(row)
        if len(values) != len(self.schema):
            raise RelationError(
                f"row arity {len(values)} does not match schema {self.schema.name!r} arity {len(self.schema)}"
            )
        return values

    # -- access ----------------------------------------------------------

    def _materialized(self) -> list[tuple]:
        """Row tuples decoded from the columns, cached until mutation."""
        mat = self._mat
        if mat is None:
            if not self._cols:
                mat = [()] * self._nrows
            else:
                decoded = [
                    [d.values[i] for i in col] for d, col in zip(self._dicts, self._cols)
                ]
                mat = list(zip(*decoded))
            self._mat = mat
        return mat

    def row(self, position: int) -> Row:
        """The :class:`Row` at ``position``."""
        mat = self._mat
        if mat is not None:
            try:
                return Row(self.schema, mat[position])
            except IndexError:
                raise RelationError(
                    f"relation {self.schema.name!r} has no row {position}"
                ) from None
        try:
            values = tuple(d.values[col[position]] for d, col in zip(self._dicts, self._cols))
        except IndexError:
            raise RelationError(f"relation {self.schema.name!r} has no row {position}") from None
        if not self._cols and not -self._nrows <= position < self._nrows:
            raise RelationError(f"relation {self.schema.name!r} has no row {position}")
        return Row(self.schema, values)

    def rows(self) -> Iterator[Row]:
        """Iterate rows as :class:`Row` views."""
        schema = self.schema
        for values in self._materialized():
            yield Row(schema, values)

    def tuples(self) -> list[tuple]:
        """The raw value tuples (a shallow copy; mutation-safe)."""
        return list(self._materialized())

    def raw_tuples(self) -> Sequence[tuple]:
        """The raw value tuples *without* a copy — a read-only borrow for
        hot probe paths (an O(|relation|) copy per probe would dominate).
        Callers must not mutate the returned list."""
        return self._materialized()

    def column(self, name: str) -> list[Any]:
        """All values of one attribute, in row order."""
        pos = self.schema.position(name)
        values = self._dicts[pos].values
        return [values[i] for i in self._cols[pos]]

    def predicate_mask(self, name: str, predicate: Callable[[Any], bool]) -> list[bool]:
        """Per-row truth of ``predicate`` over one column — evaluated
        once per *distinct* value (the column dictionary), then fanned
        out over the row positions. The column-wise filter primitive:
        detectors run their conditions over the dictionary instead of
        re-testing every cell."""
        pos = self.schema.position(name)
        verdicts = [bool(predicate(v)) for v in self._dicts[pos].values]
        return [verdicts[i] for i in self._cols[pos]]

    def active_domain(self, name: str) -> set:
        """The set of distinct values of one attribute."""
        pos = self.schema.position(name)
        values = self._dicts[pos].values
        return {values[i] for i in set(self._cols[pos])}

    def project(self, names: Sequence[str], name: str | None = None) -> "Relation":
        """A new relation with just ``names`` (duplicates kept)."""
        schema = self.schema.project(names, name)
        positions = [self.schema.position(n) for n in names]
        out = Relation.__new__(Relation)
        out.schema = schema
        # Dictionaries are shared: they are append-only (ids are stable),
        # so growth through either relation cannot corrupt the other.
        out._dicts = [self._dicts[p] for p in positions]
        out._cols = [list(self._cols[p]) for p in positions]
        out._nrows = self._nrows
        out._indexes = {}
        out._mat = None
        out._version = 0
        return out

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """A new relation with the rows satisfying ``predicate``."""
        schema = self.schema
        keep = [
            i for i, t in enumerate(self._materialized()) if predicate(Row(schema, t))
        ]
        out = Relation.__new__(Relation)
        out.schema = schema
        out._dicts = self._dicts
        out._cols = [[col[i] for i in keep] for col in self._cols]
        out._nrows = len(keep)
        out._indexes = {}
        out._mat = None
        out._version = 0
        return out

    # -- indexing --------------------------------------------------------

    def index_on(self, attrs: Sequence[str], ops: Sequence[str] | None = None) -> HashIndex:
        """Return (building lazily) the hash index on ``attrs`` / ``ops``."""
        attrs = self.schema.require(attrs)
        ops = tuple(ops) if ops is not None else ("exact",) * len(attrs)
        key = (attrs, ops)
        index = self._indexes.get(key)
        if index is None:
            index = HashIndex(attrs, ops)
            if attrs:
                ncols = []
                for a, op in zip(attrs, ops):
                    pos = self.schema.position(a)
                    norm = self._dicts[pos].normalized(op)
                    ncols.append([norm[i] for i in self._cols[pos]])
                index.build_prenormalized(zip(*ncols))
            else:
                index.build_prenormalized(() for _ in range(self._nrows))
            self._indexes[key] = index
        return index

    def lookup(
        self,
        attrs: Sequence[str],
        values: Sequence[Any],
        ops: Sequence[str] | None = None,
    ) -> list[Row]:
        """Rows matching ``values`` on ``attrs`` under the given operators."""
        index = self.index_on(attrs, ops)
        return [self.row(pos) for pos in index.lookup(values)]

    def scan_lookup(
        self,
        attrs: Sequence[str],
        values: Sequence[Any],
        ops: Sequence[str] | None = None,
    ) -> list[Row]:
        """Index-free equivalent of :meth:`lookup` (for the index ablation)."""
        attrs = self.schema.require(attrs)
        probe = HashIndex(attrs, ops)  # reused only for key normalisation
        target = probe.key_of(values)
        positions = [self.schema.position(a) for a in attrs]
        out = []
        for i, t in enumerate(self._materialized()):
            if probe.key_of(tuple(t[p] for p in positions)) == target:
                out.append(self.row(i))
        return out

    # -- dunder ----------------------------------------------------------

    def __reduce__(self):
        """Pickle as (schema, column dictionaries, id columns): indexes
        and the materialisation cache are derived, rebuilt lazily on
        first use, and shipping them (e.g. to batch worker processes or
        sharded sub-relations) would dwarf the data itself. Repeated
        values ship once — the dictionary — instead of once per row."""
        return (
            _rebuild_columnar,
            (self.schema, [d.values for d in self._dicts], self._cols, self._nrows),
        )

    def __len__(self) -> int:
        return self._nrows

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, {len(self)} rows)"


def _rebuild_columnar(
    schema: Schema, dict_values: Sequence[Sequence[Any]], cols: Sequence[Sequence[int]], nrows: int
) -> Relation:
    """Unpickle target: reattach known-good columns without re-interning
    row by row; indexes start empty and rebuild lazily on first probe."""
    relation = Relation.__new__(Relation)
    relation.schema = schema
    dicts = []
    for values in dict_values:
        d = ColumnDict.__new__(ColumnDict)
        d.values = list(values)
        ids: dict[tuple, int] = {}
        for vid, value in enumerate(d.values):
            try:
                ids.setdefault((value.__class__, value), vid)
            except TypeError:
                pass
        d._ids = ids
        d._norms = {}
        dicts.append(d)
    relation._dicts = dicts
    relation._cols = [list(c) for c in cols]
    relation._nrows = nrows
    relation._indexes = {}
    relation._mat = None
    relation._version = 0
    return relation


def _rebuild_relation(schema: Schema, tuples: Sequence[tuple]) -> Relation:
    """Row-tuple rebuild target, kept for callers that ship raw tuples
    (sharded / sqlite store reconstruction): re-interns each tuple but
    skips per-row coercion — the tuples are known-good."""
    relation = Relation.__new__(Relation)
    relation.schema = schema
    tuples = list(tuples)
    ncols = len(schema)
    dicts = [ColumnDict() for _ in range(ncols)]
    cols: list[list[int]] = []
    for pos in range(ncols):
        intern = dicts[pos].intern
        cols.append([intern(t[pos]) for t in tuples])
    relation._dicts = dicts
    relation._cols = cols
    relation._nrows = len(tuples)
    relation._indexes = {}
    relation._mat = None
    relation._version = 0
    return relation
