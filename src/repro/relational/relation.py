"""Relations: schema-typed collections of rows with lazy hash indexes."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import RelationError
from repro.relational.index import HashIndex
from repro.relational.row import Row
from repro.relational.schema import Schema


class Relation:
    """An in-memory relation.

    Rows are stored as plain value tuples (compact for large master data);
    :meth:`rows` yields :class:`Row` views on demand. Hash indexes are
    built lazily per (attribute list, operator list) and invalidated on
    mutation, so callers never see a stale index.

    >>> s = Schema("r", ["a", "b"])
    >>> rel = Relation(s, [(1, "x"), (2, "y")])
    >>> rel.lookup(("a",), (2,))[0]["b"]
    'y'
    """

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any] | Row | Mapping[str, Any]] = ()):
        self.schema = schema
        self._tuples: list[tuple] = []
        self._indexes: dict[tuple, HashIndex] = {}
        self.extend(rows)

    # -- mutation --------------------------------------------------------

    def append(self, row: Sequence[Any] | Row | Mapping[str, Any]) -> int:
        """Add one row; returns its position. Invalidates indexes."""
        values = self._coerce(row)
        self._tuples.append(values)
        self._indexes.clear()
        return len(self._tuples) - 1

    def extend(self, rows: Iterable[Sequence[Any] | Row | Mapping[str, Any]]) -> None:
        """Add many rows. Invalidates indexes once."""
        coerced = [self._coerce(r) for r in rows]
        if coerced:
            self._tuples.extend(coerced)
            self._indexes.clear()

    def update_cell(self, position: int, attr: str, value: Any) -> None:
        """Replace one cell in place. Invalidates indexes."""
        pos = self.schema.position(attr)
        try:
            old = self._tuples[position]
        except IndexError:
            raise RelationError(f"relation {self.schema.name!r} has no row {position}") from None
        self._tuples[position] = old[:pos] + (value,) + old[pos + 1 :]
        self._indexes.clear()

    def delete_rows(self, positions: Iterable[int]) -> None:
        """Remove rows by position. Invalidates indexes.

        Positions of the remaining rows shift down, so any stored row
        references (e.g. audit provenance) refer to the relation version
        at the time they were recorded — snapshot semantics.
        """
        drop = set(positions)
        bad = [p for p in drop if not 0 <= p < len(self._tuples)]
        if bad:
            raise RelationError(f"relation {self.schema.name!r} has no rows {sorted(bad)}")
        if not drop:
            return
        self._tuples = [t for i, t in enumerate(self._tuples) if i not in drop]
        self._indexes.clear()

    def _coerce(self, row: Sequence[Any] | Row | Mapping[str, Any]) -> tuple:
        if isinstance(row, Row):
            if row.schema != self.schema:
                raise RelationError(
                    f"row of schema {row.schema.name!r} cannot join relation {self.schema.name!r}"
                )
            return row.values
        if isinstance(row, Mapping):
            return Row.from_dict(self.schema, row).values
        values = tuple(row)
        if len(values) != len(self.schema):
            raise RelationError(
                f"row arity {len(values)} does not match schema {self.schema.name!r} arity {len(self.schema)}"
            )
        return values

    # -- access ----------------------------------------------------------

    def row(self, position: int) -> Row:
        """The :class:`Row` at ``position``."""
        try:
            return Row(self.schema, self._tuples[position])
        except IndexError:
            raise RelationError(f"relation {self.schema.name!r} has no row {position}") from None

    def rows(self) -> Iterator[Row]:
        """Iterate rows as :class:`Row` views."""
        for values in self._tuples:
            yield Row(self.schema, values)

    def tuples(self) -> list[tuple]:
        """The raw value tuples (a shallow copy; mutation-safe)."""
        return list(self._tuples)

    def raw_tuples(self) -> Sequence[tuple]:
        """The raw value tuples *without* a copy — a read-only borrow for
        hot probe paths (an O(|relation|) copy per probe would dominate).
        Callers must not mutate the returned list."""
        return self._tuples

    def column(self, name: str) -> list[Any]:
        """All values of one attribute, in row order."""
        pos = self.schema.position(name)
        return [t[pos] for t in self._tuples]

    def active_domain(self, name: str) -> set:
        """The set of distinct values of one attribute."""
        return set(self.column(name))

    def project(self, names: Sequence[str], name: str | None = None) -> "Relation":
        """A new relation with just ``names`` (duplicates kept)."""
        schema = self.schema.project(names, name)
        positions = [self.schema.position(n) for n in names]
        return Relation(schema, [tuple(t[p] for p in positions) for t in self._tuples])

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """A new relation with the rows satisfying ``predicate``."""
        return Relation(self.schema, [t for t in self._tuples if predicate(Row(self.schema, t))])

    # -- indexing --------------------------------------------------------

    def index_on(self, attrs: Sequence[str], ops: Sequence[str] | None = None) -> HashIndex:
        """Return (building lazily) the hash index on ``attrs`` / ``ops``."""
        attrs = self.schema.require(attrs)
        ops = tuple(ops) if ops is not None else ("exact",) * len(attrs)
        key = (attrs, ops)
        index = self._indexes.get(key)
        if index is None:
            positions = [self.schema.position(a) for a in attrs]
            index = HashIndex(attrs, ops).build(
                tuple(t[p] for p in positions) for t in self._tuples
            )
            self._indexes[key] = index
        return index

    def lookup(
        self,
        attrs: Sequence[str],
        values: Sequence[Any],
        ops: Sequence[str] | None = None,
    ) -> list[Row]:
        """Rows matching ``values`` on ``attrs`` under the given operators."""
        index = self.index_on(attrs, ops)
        return [self.row(pos) for pos in index.lookup(values)]

    def scan_lookup(
        self,
        attrs: Sequence[str],
        values: Sequence[Any],
        ops: Sequence[str] | None = None,
    ) -> list[Row]:
        """Index-free equivalent of :meth:`lookup` (for the index ablation)."""
        attrs = self.schema.require(attrs)
        probe = HashIndex(attrs, ops)  # reused only for key normalisation
        target = probe.key_of(values)
        positions = [self.schema.position(a) for a in attrs]
        out = []
        for i, t in enumerate(self._tuples):
            if probe.key_of(tuple(t[p] for p in positions)) == target:
                out.append(self.row(i))
        return out

    # -- dunder ----------------------------------------------------------

    def __reduce__(self):
        """Pickle as (schema, raw tuples) only: indexes are derived
        caches, rebuilt lazily on first probe, and shipping them (e.g.
        to batch worker processes or sharded sub-relations) would dwarf
        the data itself. Rebuilding through :func:`_rebuild_relation`
        also skips per-row coercion — the tuples are known-good."""
        return (_rebuild_relation, (self.schema, self._tuples))

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, {len(self)} rows)"


def _rebuild_relation(schema: Schema, tuples: Sequence[tuple]) -> Relation:
    """Unpickle target: reattach known-good tuples without coercion;
    indexes start empty and rebuild lazily on first probe."""
    relation = Relation.__new__(Relation)
    relation.schema = schema
    relation._tuples = list(tuples)
    relation._indexes = {}
    return relation
