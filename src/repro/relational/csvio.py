"""CSV and JSON-lines I/O for relations.

The demo's "data connection" is a JDBC url; ours is flat files. CSV is the
interchange format for the ``cerfix`` CLI (``cerfix generate`` writes it,
``cerfix fix --input`` reads it); JSON-lines is used for audit-log export.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


def _parse_cell(text: str, dtype: str) -> Any:
    if dtype == "int":
        try:
            return int(text)
        except ValueError:
            # Dirty data is expected input; keep the raw string rather than
            # failing the whole load, so the cleaning layer can see it.
            return text
    return text


def read_csv(path: str | Path, schema: Schema | None = None, relation_name: str | None = None) -> Relation:
    """Load a relation from ``path``.

    With a ``schema``, the CSV header must contain every schema attribute
    (extra columns are ignored, order is free). Without one, a fresh
    all-string schema is inferred from the header.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise RelationError(f"{path}: empty file, no header") from None
        if schema is None:
            schema = Schema(relation_name or path.stem, [Attribute(h) for h in header])
            picks = list(range(len(header)))
            dtypes = ["str"] * len(header)
        else:
            positions = {h: i for i, h in enumerate(header)}
            missing = [n for n in schema.names if n not in positions]
            if missing:
                raise RelationError(f"{path}: header missing schema attributes {missing}")
            picks = [positions[n] for n in schema.names]
            dtypes = [schema.attribute(n).dtype for n in schema.names]
        relation = Relation(schema)
        for lineno, record in enumerate(reader, start=2):
            if not record:
                continue
            if max(picks) >= len(record):
                raise RelationError(f"{path}:{lineno}: row has {len(record)} fields, need {max(picks) + 1}")
            relation.append(tuple(_parse_cell(record[p], dt) for p, dt in zip(picks, dtypes)))
    return relation


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` with a header row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(relation.schema.names)
        writer.writerows(relation.tuples())


def read_jsonl(path: str | Path, schema: Schema) -> Relation:
    """Load a relation from JSON-lines (one object per line)."""
    path = Path(path)
    relation = Relation(schema)
    with path.open(encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RelationError(f"{path}:{lineno}: bad JSON ({exc})") from None
            relation.append(obj)
    return relation


def write_jsonl(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` as JSON-lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as f:
        for row in relation.rows():
            f.write(json.dumps(row.to_dict(), default=str))
            f.write("\n")
