"""A small in-memory relational substrate.

CerFix is described in the demo paper as sitting on top of a JDBC data
connection; this subpackage is the equivalent substrate for the
reproduction: named schemas, immutable rows, relations with lazy hash
indexes, value normalisers (for MD-style approximate matching) and CSV /
JSON-lines I/O. It is deliberately tiny but real — every higher layer
(master data manager, rule engine, monitor) goes through it.
"""

from repro.relational.schema import Attribute, Schema
from repro.relational.row import Row
from repro.relational.relation import Relation
from repro.relational.index import HashIndex
from repro.relational.normalize import (
    NORMALIZERS,
    normalize_value,
    register_normalizer,
)
from repro.relational.csvio import (
    read_csv,
    write_csv,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "Attribute",
    "Schema",
    "Row",
    "Relation",
    "HashIndex",
    "NORMALIZERS",
    "normalize_value",
    "register_normalizer",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
]
