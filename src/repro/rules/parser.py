"""Textual syntax for editing rules.

The demo's web rule manager shows rules as rows like
``(zip, zip) -> (AC, AC)`` with a pattern column; our equivalent is a
line-oriented syntax that round-trips with
:meth:`repro.core.rule.EditingRule.render`::

    p1: (zip~alnum~zip) -> zip := master.zip
    p4: (phn~digits~Mphn) -> FN := master.FN if (type=2)
    p9: (AC=AC) -> city := master.city if (AC!=0800)
    c1: () -> city := const 'Ldn' if (AC=020)

Grammar (whitespace-insensitive)::

    rule    := id ':' '(' matches? ')' '->' attr ':=' source ['if' pattern]
    matches := match (',' match)*
    match   := attr '=' mattr | attr '~' op '~' ['='] mattr
    source  := 'master' '.' mattr | 'const' value
    pattern := '(' cond (',' cond)* ')'
    cond    := attr ('=' | '!=') value       # != accepts v1|v2|... (NotIn)

Values may be single-quoted (required when they contain ``,`` ``)`` or
``|``); bare values extend to the next delimiter and are stripped.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.errors import ParseError
from repro.core.pattern import Condition, Eq, NotIn, PatternTuple
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair

_RULE_RE = re.compile(
    r"""^\s*(?P<id>[\w.\-]+)\s*:\s*
        \(\s*(?P<matches>[^)]*)\)\s*->\s*
        (?P<target>\w+)\s*:=\s*
        (?P<source>master\s*\.\s*\w+|const\s+.+?)\s*
        (?:\bif\s*\((?P<pattern>.*)\)\s*)?$""",
    re.VERBOSE,
)

#: ``a=ma`` (exact), ``a~op~ma`` (canonical render form) or ``a~op~=ma``.
_MATCH_RE = re.compile(
    r"^\s*(?P<t>\w+)\s*(?:~(?P<op>\w+)~\s*=?|=)\s*(?P<m>\w+)\s*$"
)

_COND_RE = re.compile(r"^\s*(?P<attr>\w+)\s*(?P<op>!?=)\s*(?P<value>.+?)\s*$")


def _unquote(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    return text


def _split_top(text: str, sep: str) -> list[str]:
    """Split on ``sep`` outside single/double quotes."""
    parts, buf, quote = [], [], None
    for ch in text:
        if quote:
            buf.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            buf.append(ch)
            continue
        if ch == sep:
            parts.append("".join(buf))
            buf = []
            continue
        buf.append(ch)
    parts.append("".join(buf))
    return [p for p in (part.strip() for part in parts) if p]


def parse_condition(text: str) -> tuple[str, Condition]:
    """Parse one pattern condition, e.g. ``type=2`` or ``AC!=0800``."""
    m = _COND_RE.match(text)
    if not m:
        raise ParseError(text, "expected attr=value or attr!=value")
    attr = m.group("attr")
    raw = m.group("value")
    if m.group("op") == "=":
        return attr, Eq(_unquote(raw))
    values = [_unquote(v) for v in _split_top(raw, "|")]
    if not values:
        raise ParseError(text, "empty value list after !=")
    return attr, NotIn(values)


def parse_pattern(text: str) -> PatternTuple:
    """Parse a pattern body (the text between the parentheses)."""
    text = text.strip()
    if not text:
        return PatternTuple()
    conditions = {}
    for part in _split_top(text, ","):
        attr, cond = parse_condition(part)
        if attr in conditions:
            merged = conditions[attr].merge(cond)
            if merged is None:
                raise ParseError(text, f"contradictory conditions on {attr!r}")
            conditions[attr] = merged
        else:
            conditions[attr] = cond
    return PatternTuple(conditions)


def parse_rule(text: str) -> EditingRule:
    """Parse one editing rule line.

    >>> r = parse_rule("p9: (AC=AC) -> city := master.city if (AC!=0800)")
    >>> r.target, r.source.name
    ('city', 'city')
    """
    m = _RULE_RE.match(text.strip())
    if not m:
        raise ParseError(text, "does not match rule grammar 'id: (matches) -> attr := source [if (pattern)]'")
    matches = []
    for part in _split_top(m.group("matches"), ","):
        pm = _MATCH_RE.match(part)
        if not pm:
            raise ParseError(text, f"bad match clause {part!r}")
        matches.append(MatchPair(pm.group("t"), pm.group("m"), pm.group("op") or "exact"))
    source_text = m.group("source")
    if source_text.startswith("master"):
        source: MasterColumn | Constant = MasterColumn(source_text.split(".", 1)[1].strip())
    else:
        source = Constant(_unquote(source_text[len("const"):].strip()))
    pattern = parse_pattern(m.group("pattern") or "")
    return EditingRule(
        rule_id=m.group("id"),
        match=tuple(matches),
        target=m.group("target"),
        source=source,
        pattern=pattern,
    )


def parse_rules(text: str | Iterable[str]) -> list[EditingRule]:
    """Parse many rules: one per line, ``#`` comments and blanks ignored."""
    lines = text.splitlines() if isinstance(text, str) else list(text)
    rules = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            rules.append(parse_rule(stripped))
        except ParseError as exc:
            raise ParseError(line, f"line {lineno}: {exc.reason}") from None
    return rules
