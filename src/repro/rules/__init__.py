"""Rule specification front ends.

Editing rules "can be either explicitly specified by the users, or
derived from integrity constraints, e.g., cfds and matching dependencies"
(paper §2). This subpackage provides both paths: a textual syntax with a
parser (manual specification, what the demo's rule manager imports) and
derivation from CFDs / MDs.
"""

from repro.rules.parser import parse_rule, parse_rules, parse_pattern
from repro.rules.cfd import CFD, CFDViolation, find_violations, satisfies
from repro.rules.md import MatchingDependency, MDMatch
from repro.rules.derive import (
    editing_rules_from_cfd,
    editing_rules_from_cfds,
    editing_rules_from_md,
)

__all__ = [
    "parse_rule",
    "parse_rules",
    "parse_pattern",
    "CFD",
    "CFDViolation",
    "find_violations",
    "satisfies",
    "MatchingDependency",
    "MDMatch",
    "editing_rules_from_cfd",
    "editing_rules_from_cfds",
    "editing_rules_from_md",
]
