"""Conditional functional dependencies (CFDs).

The paper's Example 1 uses CFDs (ψ1: AC=020 → city=Ldn) to motivate
editing rules: CFDs *detect* errors but cannot say which attribute is
wrong. We implement them for three jobs: violation detection, the
heuristic-repair baseline (:mod:`repro.baselines.cfd_repair`), and rule
derivation (:mod:`repro.rules.derive`).

A CFD is ``(X → B, Tp)`` with a pattern tableau over ``X ∪ {B}``; each
tableau row constrains ``X`` with constants/wildcards and ``B`` with a
constant (a *constant* row) or a wildcard (a *variable* row, plain FD
semantics on the rows matching the ``X`` pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import RuleError
from repro.core.pattern import Condition, Eq, PatternTuple
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass(frozen=True)
class CFDRow:
    """One tableau row: an X-pattern plus the B condition."""

    lhs: PatternTuple
    rhs: Condition

    @property
    def is_constant(self) -> bool:
        return isinstance(self.rhs, Eq)


@dataclass(frozen=True)
class CFD:
    """``(lhs → rhs, tableau)``.

    >>> psi1 = CFD("psi1", ("AC",), "city",
    ...            (CFDRow(PatternTuple({"AC": Eq("020")}), Eq("Ldn")),))
    """

    cfd_id: str
    lhs: tuple[str, ...]
    rhs: str
    tableau: tuple[CFDRow, ...]

    def __post_init__(self):
        if not self.lhs and not all(r.is_constant for r in self.tableau):
            raise RuleError(f"CFD {self.cfd_id}: variable rows need a non-empty LHS")
        if self.rhs in self.lhs:
            raise RuleError(f"CFD {self.cfd_id}: RHS {self.rhs!r} cannot appear in the LHS")
        for row in self.tableau:
            bad = [a for a in row.lhs.attrs if a not in self.lhs]
            if bad:
                raise RuleError(f"CFD {self.cfd_id}: tableau constrains non-LHS attributes {bad}")
        if not self.tableau:
            raise RuleError(f"CFD {self.cfd_id}: empty tableau")

    def validate(self, schema: Schema) -> None:
        schema.require(self.lhs + (self.rhs,))

    def render(self) -> str:
        rows = []
        for row in self.tableau:
            lhs = ", ".join(f"{a}{row.lhs.condition(a).render()}" for a in self.lhs) or "()"
            rows.append(f"({lhs} || {self.rhs}{row.rhs.render()})")
        return f"{self.cfd_id}: [{', '.join(self.lhs)}] -> {self.rhs} ; {'; '.join(rows)}"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class CFDViolation:
    """A witness that a relation violates a CFD.

    Constant-row violations involve one tuple (``positions`` has one
    element); variable-row violations involve a pair agreeing on the LHS
    but differing on the RHS.
    """

    cfd_id: str
    row_index: int  # which tableau row
    positions: tuple[int, ...]
    attr: str
    observed: tuple

    def describe(self) -> str:
        kind = "constant" if len(self.positions) == 1 else "variable"
        return (
            f"{self.cfd_id}[{self.row_index}] ({kind}): tuples {list(self.positions)} "
            f"have {self.attr} = {list(self.observed)!r}"
        )


def find_violations(cfd: CFD, relation: Relation) -> list[CFDViolation]:
    """All violations of ``cfd`` in ``relation``.

    Constant rows are checked per tuple; variable rows group tuples by
    their LHS values (hash-based, so this is O(n) per row) and report one
    violation per offending pair of distinct RHS values.
    """
    cfd.validate(relation.schema)
    out: list[CFDViolation] = []
    for row_index, row in enumerate(cfd.tableau):
        if row.is_constant:
            for pos, rel_row in enumerate(relation.rows()):
                if row.lhs.matches(rel_row.to_dict()) and not row.rhs.matches(rel_row[cfd.rhs]):
                    out.append(
                        CFDViolation(
                            cfd.cfd_id, row_index, (pos,), cfd.rhs, (rel_row[cfd.rhs],)
                        )
                    )
            continue
        groups: dict[tuple, list[int]] = {}
        for pos, rel_row in enumerate(relation.rows()):
            values = rel_row.to_dict()
            if not row.lhs.matches(values):
                continue
            if not row.rhs.matches(values[cfd.rhs]):
                continue  # rhs condition (e.g. NotIn) scopes the row
            groups.setdefault(rel_row.project(cfd.lhs), []).append(pos)
        for key, positions in groups.items():
            rhs_values: dict = {}
            for pos in positions:
                rhs_values.setdefault(relation.row(pos)[cfd.rhs], pos)
            if len(rhs_values) > 1:
                items = sorted(rhs_values.items(), key=lambda kv: kv[1])
                out.append(
                    CFDViolation(
                        cfd.cfd_id,
                        row_index,
                        tuple(pos for _, pos in items),
                        cfd.rhs,
                        tuple(v for v, _ in items),
                    )
                )
    return out


def satisfies(cfds: Iterable[CFD], relation: Relation) -> bool:
    """True iff the relation satisfies every CFD."""
    return all(not find_violations(cfd, relation) for cfd in cfds)
