"""Conditional functional dependencies (CFDs).

The paper's Example 1 uses CFDs (ψ1: AC=020 → city=Ldn) to motivate
editing rules: CFDs *detect* errors but cannot say which attribute is
wrong. We implement them for three jobs: violation detection, the
heuristic-repair baseline (:mod:`repro.baselines.cfd_repair`), and rule
derivation (:mod:`repro.rules.derive`).

A CFD is ``(X → B, Tp)`` with a pattern tableau over ``X ∪ {B}``; each
tableau row constrains ``X`` with constants/wildcards and ``B`` with a
constant (a *constant* row) or a wildcard (a *variable* row, plain FD
semantics on the rows matching the ``X`` pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import RuleError
from repro.core.pattern import Condition, Eq, PatternTuple
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass(frozen=True)
class CFDRow:
    """One tableau row: an X-pattern plus the B condition."""

    lhs: PatternTuple
    rhs: Condition

    @property
    def is_constant(self) -> bool:
        return isinstance(self.rhs, Eq)


@dataclass(frozen=True)
class CFD:
    """``(lhs → rhs, tableau)``.

    >>> psi1 = CFD("psi1", ("AC",), "city",
    ...            (CFDRow(PatternTuple({"AC": Eq("020")}), Eq("Ldn")),))
    """

    cfd_id: str
    lhs: tuple[str, ...]
    rhs: str
    tableau: tuple[CFDRow, ...]

    def __post_init__(self):
        if not self.lhs and not all(r.is_constant for r in self.tableau):
            raise RuleError(f"CFD {self.cfd_id}: variable rows need a non-empty LHS")
        if self.rhs in self.lhs:
            raise RuleError(f"CFD {self.cfd_id}: RHS {self.rhs!r} cannot appear in the LHS")
        for row in self.tableau:
            bad = [a for a in row.lhs.attrs if a not in self.lhs]
            if bad:
                raise RuleError(f"CFD {self.cfd_id}: tableau constrains non-LHS attributes {bad}")
        if not self.tableau:
            raise RuleError(f"CFD {self.cfd_id}: empty tableau")

    def validate(self, schema: Schema) -> None:
        schema.require(self.lhs + (self.rhs,))

    def render(self) -> str:
        rows = []
        for row in self.tableau:
            lhs = ", ".join(f"{a}{row.lhs.condition(a).render()}" for a in self.lhs) or "()"
            rows.append(f"({lhs} || {self.rhs}{row.rhs.render()})")
        return f"{self.cfd_id}: [{', '.join(self.lhs)}] -> {self.rhs} ; {'; '.join(rows)}"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class CFDViolation:
    """A witness that a relation violates a CFD.

    Constant-row violations involve one tuple (``positions`` has one
    element); variable-row violations involve a pair agreeing on the LHS
    but differing on the RHS.
    """

    cfd_id: str
    row_index: int  # which tableau row
    positions: tuple[int, ...]
    attr: str
    observed: tuple

    def describe(self) -> str:
        kind = "constant" if len(self.positions) == 1 else "variable"
        return (
            f"{self.cfd_id}[{self.row_index}] ({kind}): tuples {list(self.positions)} "
            f"have {self.attr} = {list(self.observed)!r}"
        )


def find_violations(cfd: CFD, relation: Relation) -> list[CFDViolation]:
    """All violations of ``cfd`` in ``relation``.

    Detection is column-wise: each tableau condition is evaluated once
    per *distinct* value of its column (via
    :meth:`~repro.relational.relation.Relation.predicate_mask`), fanned
    out over the row positions, and combined — a handful of passes over
    flat arrays instead of a dict materialisation per row. Constant
    rows then read positions straight off the combined mask; variable
    rows group the surviving positions by their (decoded) LHS values and
    report one violation per offending set of distinct RHS values, in
    first-occurrence order — exactly the per-row semantics, row for
    row, violation for violation.
    """
    cfd.validate(relation.schema)
    out: list[CFDViolation] = []
    n = len(relation)
    rhs_col = relation.column(cfd.rhs)
    lhs_cols: list[list] | None = None  # decoded lazily, once, for variable rows
    for row_index, row in enumerate(cfd.tableau):
        mask = [True] * n
        for attr in row.lhs.attrs:
            cond_mask = relation.predicate_mask(attr, row.lhs.condition(attr).matches)
            mask = [m and c for m, c in zip(mask, cond_mask)]
        rhs_ok = relation.predicate_mask(cfd.rhs, row.rhs.matches)
        if row.is_constant:
            out.extend(
                CFDViolation(cfd.cfd_id, row_index, (pos,), cfd.rhs, (rhs_col[pos],))
                for pos in range(n)
                if mask[pos] and not rhs_ok[pos]
            )
            continue
        if lhs_cols is None:
            lhs_cols = [relation.column(a) for a in cfd.lhs]
        groups: dict[tuple, list[int]] = {}
        for pos in range(n):
            # rhs condition (e.g. NotIn) scopes the row
            if mask[pos] and rhs_ok[pos]:
                groups.setdefault(tuple(c[pos] for c in lhs_cols), []).append(pos)
        for positions in groups.values():
            rhs_values: dict = {}
            for pos in positions:
                rhs_values.setdefault(rhs_col[pos], pos)
            if len(rhs_values) > 1:
                items = sorted(rhs_values.items(), key=lambda kv: kv[1])
                out.append(
                    CFDViolation(
                        cfd.cfd_id,
                        row_index,
                        tuple(pos for _, pos in items),
                        cfd.rhs,
                        tuple(v for v, _ in items),
                    )
                )
    return out


def satisfies(cfds: Iterable[CFD], relation: Relation) -> bool:
    """True iff the relation satisfies every CFD."""
    return all(not find_violations(cfd, relation) for cfd in cfds)
