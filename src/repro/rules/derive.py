"""Deriving editing rules from CFDs and MDs (paper §2, Rule engine).

"Editing rules can be … derived from integrity constraints, e.g., cfds
and matching dependencies, for which discovery algorithms are already in
place."  The translations follow §2.2 of the companion paper [7]:

* a **constant** CFD row ``(tp[X] → B = b)`` becomes a constant-sourced
  rule: if ``t`` matches the (validated) pattern, ``t[B] := b``;
* a **variable** CFD row over relation R, with a master copy of R,
  becomes a master-sourced rule matching on the row's wildcard LHS
  attributes and constraining the constant ones in the pattern (both
  sides: the constant must hold of ``t`` via the pattern and of ``s`` via
  the match key);
* an **MD** with the second relation played by master data becomes one
  master-sourced rule per identified pair, carrying the MD's similarity
  operators as match operators.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.pattern import Eq, PatternTuple
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.rules.cfd import CFD
from repro.rules.md import MatchingDependency


def editing_rules_from_cfd(cfd: CFD) -> list[EditingRule]:
    """Translate one CFD into editing rules, one per tableau row.

    Rule ids are ``<cfd_id>.<row>``. Variable rows assume the master
    relation shares the input schema's attribute names for ``lhs`` and
    ``rhs`` (a "master copy", as in [7]); validate the resulting rules
    against your actual master schema via :class:`~repro.core.ruleset.RuleSet`.
    """
    rules: list[EditingRule] = []
    for i, row in enumerate(cfd.tableau):
        rule_id = f"{cfd.cfd_id}.{i}"
        if row.is_constant:
            assert isinstance(row.rhs, Eq)
            rules.append(
                EditingRule(
                    rule_id=rule_id,
                    match=(),
                    target=cfd.rhs,
                    source=Constant(row.rhs.value),
                    pattern=row.lhs,
                    description=f"derived from constant CFD row {cfd.render()}",
                )
            )
            continue
        match = tuple(MatchPair(a, a) for a in cfd.lhs)
        rules.append(
            EditingRule(
                rule_id=rule_id,
                match=match,
                target=cfd.rhs,
                source=MasterColumn(cfd.rhs),
                pattern=row.lhs,
                description=f"derived from variable CFD row {cfd.render()}",
            )
        )
    return rules


def editing_rules_from_cfds(cfds: Iterable[CFD]) -> list[EditingRule]:
    """Translate a CFD collection; rule ids stay unique per CFD id/row."""
    out: list[EditingRule] = []
    for cfd in cfds:
        out.extend(editing_rules_from_cfd(cfd))
    return out


def editing_rules_from_md(md: MatchingDependency) -> list[EditingRule]:
    """Translate an MD (second relation = master) into editing rules.

    One rule per identified pair ``(Y1, Y2)``: match on the MD's clauses
    with their similarity operators, fix ``Y1`` from master ``Y2``. Ids
    are ``<md_id>.<Y1>`` (suffixed when one input attribute is
    identified with several master columns).
    """
    match = tuple(MatchPair(m.attr1, m.attr2, m.op) for m in md.lhs)
    seen: dict[str, int] = {}
    rules = []
    for y1, y2 in md.identify:
        seen[y1] = seen.get(y1, 0) + 1
        suffix = "" if seen[y1] == 1 else f".{seen[y1]}"
        rules.append(
            EditingRule(
                rule_id=f"{md.md_id}.{y1}{suffix}",
                match=match,
                target=y1,
                source=MasterColumn(y2),
                pattern=PatternTuple(),
                description=f"derived from MD {md.render()}",
            )
        )
    return rules
