"""Matching dependencies (MDs).

An MD ``R1[X1] ≈ R2[X2] → R1[Y1] ⇌ R2[Y2]`` says: if two tuples match on
``X1/X2`` under similarity operators, their ``Y1/Y2`` attributes identify
the same real-world value. With ``R2`` a master relation this yields an
editing rule directly (Fan et al., "Reasoning about record matching
rules", PVLDB 2009 — reference [6] of the demo): fix ``Y1`` from the
master's ``Y2``. Similarity operators are our normalisers
(:mod:`repro.relational.normalize`), which keeps matching hash-joinable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuleError
from repro.relational.normalize import NORMALIZERS
from repro.relational.schema import Schema


@dataclass(frozen=True)
class MDMatch:
    """One similarity clause ``R1[attr1] ≈op R2[attr2]``."""

    attr1: str
    attr2: str
    op: str = "exact"

    def __post_init__(self):
        if self.op not in NORMALIZERS:
            raise RuleError(f"MD match {self.attr1}≈{self.attr2}: unknown operator {self.op!r}")

    def render(self) -> str:
        sim = "=" if self.op == "exact" else f"≈{self.op}"
        return f"{self.attr1} {sim} {self.attr2}"


@dataclass(frozen=True)
class MatchingDependency:
    """``lhs → identify``: matching clauses imply identified pairs."""

    md_id: str
    lhs: tuple[MDMatch, ...]
    identify: tuple[tuple[str, str], ...]  # (R1 attr, R2 attr) pairs

    def __post_init__(self):
        if not self.lhs:
            raise RuleError(f"MD {self.md_id}: needs at least one matching clause")
        if not self.identify:
            raise RuleError(f"MD {self.md_id}: needs at least one identified pair")

    def validate(self, schema1: Schema, schema2: Schema) -> None:
        schema1.require([m.attr1 for m in self.lhs] + [a for a, _ in self.identify])
        schema2.require([m.attr2 for m in self.lhs] + [b for _, b in self.identify])

    def render(self) -> str:
        lhs = " ∧ ".join(m.render() for m in self.lhs)
        rhs = ", ".join(f"{a} ⇌ {b}" for a, b in self.identify)
        return f"{self.md_id}: {lhs} -> {rhs}"

    def __str__(self) -> str:
        return self.render()
