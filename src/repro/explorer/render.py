"""Monospace table rendering for the explorer, examples and benches.

The demo highlights suggested attributes in yellow and validated ones in
green; text output uses ``[?]`` / ``[ok]`` markers instead
(:func:`highlight`).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    max_width: int = 36,
) -> str:
    """Render rows as an aligned ASCII table.

    Cells longer than ``max_width`` are truncated with an ellipsis so one
    pathological value cannot blow up a whole report.
    """
    def cell(v: Any) -> str:
        text = str(v)
        return text if len(text) <= max_width else text[: max_width - 1] + "…"

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(text))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(t.ljust(w) for t, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, Any], *, title: str | None = None) -> str:
    """Render a key/value block with aligned keys."""
    if not pairs:
        return title or ""
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {v}")
    return "\n".join(lines)


def highlight(values: Mapping[str, Any], suggested: set[str], validated: set[str]) -> str:
    """One-line tuple view with the demo's colour semantics.

    Suggested (yellow in the demo) attributes get ``[?]``, validated
    (green) ones ``[ok]``.
    """
    parts = []
    for attr, value in values.items():
        marker = ""
        if attr in validated:
            marker = "[ok]"
        elif attr in suggested:
            marker = "[?]"
        parts.append(f"{attr}={value!r}{marker}")
    return ", ".join(parts)
