"""The web data explorer (paper Fig. 1, "Web interface").

The demo drives CerFix through a web UI; this module provides the
equivalent HTTP surface on the standard library only — a JSON API over
the same engine facilities the CLI uses, suitable for a browser front
end or curl:

====  =============================  ===========================================
verb  path                           effect
====  =============================  ===========================================
GET   /api/instance                  engine summary (schemas, rule count, mode)
GET   /api/rules                     the rule table (Fig. 2)
GET   /api/rules/check               run the consistency analysis
GET   /api/regions?k=5               top-k certain regions
POST  /api/clean                     {"rows": [...], "truth": [...]?} — batch-clean
                                     a whole relation; returns repaired rows + the
                                     batch report (see repro.batch)
POST  /api/sessions                  {"tuple_id": ..., "values": {...}} — open a
                                     monitor session; returns state + suggestion
GET   /api/sessions/<id>             session state
POST  /api/sessions/<id>/validate    {"assignments": {...}} — user validation;
                                     chases and returns the new state
GET   /api/audit/<tuple_id>          per-tuple change trace (Fig. 4)
GET   /api/audit                     per-attribute statistics (Fig. 4)
====  =============================  ===========================================

Run it programmatically (`serve(engine, port=0)` returns the bound
server; `.port` carries the ephemeral port) or from the CLI::

    cerfix serve --scenario uk --port 8384
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.audit.stats import attribute_stats, overall_stats
from repro.engine import CerFix
from repro.errors import CerFixError, MonitorError
from repro.monitor.session import MonitorSession


def _session_state(session: MonitorSession) -> dict[str, Any]:
    suggestion = None if session.is_complete else session.suggestion()
    return {
        "tuple_id": session.tuple_id,
        "values": {k: str(v) for k, v in session.current_values().items()},
        "validated": sorted(session.validated),
        "complete": session.is_complete,
        "round": session.round_no,
        "conflicts": [c.describe() for c in session.conflicts],
        "suggestion": None
        if suggestion is None
        else {
            "attrs": list(suggestion.attrs),
            "strategy": suggestion.strategy.value,
            "rationale": suggestion.rationale,
        },
    }


class CerFixWebApp:
    """Routes HTTP requests onto one engine. Thread-safe via one lock —
    sessions are interactive, not high-throughput. Note that the lock
    also serializes ``POST /api/clean``: a large batch clean blocks the
    other routes for its duration (the engine's audit log and master
    indexes are not safe under concurrent mutation). Front a dedicated
    :class:`~repro.batch.pipeline.BatchCleaner` for heavy batch traffic."""

    def __init__(self, engine: CerFix):
        self.engine = engine
        self.sessions: dict[str, MonitorSession] = {}
        self._lock = threading.Lock()

    # -- route handlers; each returns (status, payload) ----------------------

    def handle(self, method: str, path: str, body: dict | None) -> tuple[int, dict | list]:
        parsed = urlparse(path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        try:
            return self._route(method, parts, query, body or {})
        except MonitorError as exc:
            return 409, {"error": str(exc)}
        except CerFixError as exc:
            return 400, {"error": str(exc)}

    def _route(self, method, parts, query, body) -> tuple[int, dict | list]:
        if parts == ["api", "instance"] and method == "GET":
            engine = self.engine
            return 200, {
                "input_schema": list(engine.ruleset.input_schema.names),
                "master_schema": list(engine.ruleset.master_schema.names),
                "rules": len(engine.ruleset),
                "master_tuples": len(engine.master),
                "mode": engine.mode.value,
                "strategy": engine.strategy.value,
                "store": engine.master.store.stats(),
            }
        if parts == ["api", "rules"] and method == "GET":
            return 200, [
                {"id": r.rule_id, "rule": r.render(), "description": r.description}
                for r in self.engine.ruleset
            ]
        if parts == ["api", "rules", "check"] and method == "GET":
            report = self.engine.check_consistency(samples=int(query.get("samples", 20)))
            return 200, {
                "consistent": report.is_consistent,
                "conflicts": [c.describe() for c in report.conflicts],
                "cross_entity": [c.describe() for c in report.cross_entity_conflicts],
                "ambiguities": [a.describe() for a in report.ambiguities],
            }
        if parts == ["api", "regions"] and method == "GET":
            k = int(query.get("k", 5))
            regions = self.engine.precompute_regions(k=k)
            return 200, [
                {
                    "rank": i + 1,
                    "attrs": list(r.region.attrs),
                    "tableau": [p.render() for p in r.region.tableau],
                    "coverage": r.coverage,
                }
                for i, r in enumerate(regions)
            ]
        if parts == ["api", "clean"] and method == "POST":
            from repro.relational.relation import Relation

            rows = body.get("rows")
            if not isinstance(rows, list) or not rows:
                return 400, {"error": "body must carry a non-empty 'rows' array"}
            schema = self.engine.ruleset.input_schema
            dirty = Relation(schema, rows)
            truth_rows = body.get("truth")
            truth = Relation(schema, truth_rows) if truth_rows else None
            try:
                workers = int(body.get("workers", 1))
            except (TypeError, ValueError):
                return 400, {"error": f"'workers' must be an integer, got {body.get('workers')!r}"}
            result = self.engine.clean_relation(
                dirty,
                truth,
                workers=workers,
                backend=str(body.get("backend", "thread")),
                dedupe=bool(body.get("dedupe", True)),
                validated=tuple(body.get("validated", ())),
            )
            return 200, {
                "rows": [r.to_dict() for r in result.relation.rows()],
                "report": result.report.to_json(),
            }
        if parts == ["api", "sessions"] and method == "POST":
            tuple_id = str(body.get("tuple_id", f"web{len(self.sessions)}"))
            values = body.get("values")
            if not isinstance(values, dict):
                return 400, {"error": "body must carry a 'values' object"}
            if tuple_id in self.sessions:
                return 409, {"error": f"session {tuple_id!r} already exists"}
            session = self.engine.session(values, tuple_id)
            self.sessions[tuple_id] = session
            return 201, _session_state(session)
        if len(parts) == 3 and parts[:2] == ["api", "sessions"] and method == "GET":
            session = self.sessions.get(parts[2])
            if session is None:
                return 404, {"error": f"no session {parts[2]!r}"}
            return 200, _session_state(session)
        if (
            len(parts) == 4
            and parts[:2] == ["api", "sessions"]
            and parts[3] == "validate"
            and method == "POST"
        ):
            session = self.sessions.get(parts[2])
            if session is None:
                return 404, {"error": f"no session {parts[2]!r}"}
            assignments = body.get("assignments")
            if not isinstance(assignments, dict):
                return 400, {"error": "body must carry an 'assignments' object"}
            session.validate(assignments)
            return 200, _session_state(session)
        if parts == ["api", "audit"] and method == "GET":
            stats = attribute_stats(self.engine.audit)
            overall = overall_stats(self.engine.audit)
            return 200, {
                "attributes": [
                    {
                        "attr": s.attr,
                        "by_user": s.user_validations,
                        "by_cerfix": s.rule_fixes,
                        "pct_user": s.pct_user,
                        "pct_auto": s.pct_auto,
                    }
                    for s in stats
                ],
                "overall": {
                    "tuples": overall.tuples,
                    "user_share": overall.user_share,
                    "auto_share": overall.auto_share,
                },
            }
        if len(parts) == 3 and parts[:2] == ["api", "audit"] and method == "GET":
            events = self.engine.audit.by_tuple(parts[2])
            return 200, [e.to_json() for e in events]
        return 404, {"error": f"no route {method} /{'/'.join(parts)}"}


class _Handler(BaseHTTPRequestHandler):
    app: CerFixWebApp  # set by serve()

    def _respond(self, status: int, payload) -> None:
        data = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                self._respond(400, {"error": "request body is not valid JSON"})
                return
        with self.app._lock:
            status, payload = self.app.handle(method, self.path, body)
        self._respond(status, payload)

    def do_GET(self):  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def log_message(self, fmt, *args):  # silence request logging
        pass


class CerFixServer:
    """A running web explorer; use as a context manager in tests."""

    def __init__(self, engine: CerFix, host: str = "127.0.0.1", port: int = 0):
        self.app = CerFixWebApp(engine)
        handler = type("BoundHandler", (_Handler,), {"app": self.app})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.host = host
        self.port = self.httpd.server_address[1]
        self._thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CerFixServer":
        if not self._thread.is_alive():
            self._thread.start()
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()

    def __enter__(self) -> "CerFixServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def serve(engine: CerFix, host: str = "127.0.0.1", port: int = 0) -> CerFixServer:
    """Start the web explorer in a background thread; returns the server."""
    return CerFixServer(engine, host, port).start()
