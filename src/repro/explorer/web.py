"""The web data explorer (paper Fig. 1, "Web interface").

The demo drives CerFix through a web UI; this module provides the
equivalent HTTP surface on the standard library only — a JSON API over
the same engine facilities the CLI uses, suitable for a browser front
end or curl:

====  =============================  ===========================================
verb  path                           effect
====  =============================  ===========================================
GET   /api/instance                  engine summary (schemas, rule count, mode)
GET   /api/rules                     the rule table (Fig. 2)
GET   /api/rules/check               run the consistency analysis
GET   /api/regions?k=5               top-k certain regions
POST  /api/clean                     {"rows": [...], "truth": [...]?} — batch-clean
                                     a whole relation; returns repaired rows + the
                                     batch report (see repro.batch)
POST  /api/sessions                  {"tuple_id": ..., "values": {...}} — open a
                                     monitor session; returns state + suggestion
GET   /api/sessions/<id>             session state
POST  /api/sessions/<id>/validate    {"assignments": {...}} — user validation;
                                     chases and returns the new state
DELETE /api/sessions/<id>            drop a session
GET   /api/audit/<tuple_id>          per-tuple change trace (Fig. 4)
GET   /api/audit                     per-attribute statistics (Fig. 4)
GET   /api/metrics                   service metrics (same schema as the
                                     async entry service);
                                     ``?format=prometheus`` (also at
                                     ``/metrics``) answers the Prometheus
                                     text exposition instead
====  =============================  ===========================================

Run it programmatically (`serve(engine, port=0)` returns the bound
server; `.port` carries the ephemeral port) or from the CLI::

    cerfix serve --scenario uk --port 8384
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine import CerFix
from repro.monitor.session import MonitorSession
from repro.obs import promfmt
from repro.obs.metrics import get_registry
from repro.obs.monitor import install_process_gauges
from repro.service.app import RoutingCore, classify_route, session_state
from repro.service.metrics import ServiceMetrics

# Backwards-compatible alias: the session JSON view now lives with the
# shared routing table in repro.service.app.
_session_state = session_state


class CerFixWebApp:
    """Routes HTTP requests onto one engine, serially.

    The routing table itself is the shared
    :class:`~repro.service.app.RoutingCore` — the same one the async
    entry service multiplexes concurrent sessions through — so the two
    surfaces cannot drift. This app is the *serial* deployment: one
    lock, one request at a time; sessions here are interactive, not
    high-throughput. Note that the lock also serializes ``POST
    /api/clean``: a large batch clean blocks the other routes for its
    duration. For concurrent entry traffic run ``cerfix serve --async``
    (see :mod:`repro.service`)."""

    def __init__(self, engine: CerFix):
        self.engine = engine
        #: Same counters/latency windows (and therefore the same
        #: ``GET /api/metrics`` schema) as the async entry service; the
        #: probe micro-batching counters simply stay zero here — the
        #: serial app probes inline.
        self.metrics = ServiceMetrics()
        self.core = RoutingCore(engine, metrics_json=self._metrics_json)
        self._lock = threading.Lock()
        registry = get_registry()
        self.metrics.register(registry, "explorer")
        install_process_gauges(registry)
        # The serial app admits one request at a time and has no session
        # cap; publish those limits as gauges so the registry dump says
        # so explicitly rather than by omission.
        registry.set_gauge("cerfix.explorer.max_inflight", 1)
        registry.set_gauge("cerfix.explorer.max_session_pending", 1)

    def _metrics_json(self) -> dict:
        """The ``GET /api/metrics`` payload, async-schema-compatible.

        The serial app has no *service-owned* probe cache or memo, but
        ``POST /api/clean`` runs the batch pipeline, which publishes its
        probe-cache and suggestion-memo totals into the process-wide
        registry — so those sections report the live registry values
        instead of hardwired zeros. No admission control: ``limits``
        reports unbounded sessions and a serial request pipeline. A
        dashboard written against the async service reads this
        unchanged."""
        registry = get_registry()
        data = self.metrics.to_json()
        hits = registry.counter_value("cerfix.probe_cache.hits")
        misses = registry.counter_value("cerfix.probe_cache.misses")
        data["probe_cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "evictions": registry.counter_value("cerfix.probe_cache.evictions"),
            "size": int(registry.gauge_value("cerfix.probe_cache.size", 0) or 0),
            "maxsize": int(registry.gauge_value("cerfix.probe_cache.maxsize", 0) or 0),
        }
        memo_hits = registry.counter_value("cerfix.suggestion_memo.hits")
        memo_misses = registry.counter_value("cerfix.suggestion_memo.misses")
        data["suggestion_memo"] = {
            "hits": memo_hits,
            "misses": memo_misses,
            "hit_rate": (
                memo_hits / (memo_hits + memo_misses) if memo_hits + memo_misses else 0.0
            ),
            "size": int(registry.gauge_value("cerfix.suggestion_memo.size", 0) or 0),
            "maxsize": int(registry.gauge_value("cerfix.suggestion_memo.maxsize", 0) or 0),
        }
        data["limits"] = {
            "max_sessions": None,
            "max_inflight": int(registry.gauge_value("cerfix.explorer.max_inflight", 1) or 1),
            "max_session_pending": int(
                registry.gauge_value("cerfix.explorer.max_session_pending", 1) or 1
            ),
        }
        data["dispatch"] = "serial"
        data["registry"] = registry.dump()
        return data

    @property
    def sessions(self) -> dict[str, MonitorSession]:
        return self.core.sessions

    def handle(self, method: str, path: str, body: dict | None) -> tuple[int, dict | list]:
        parts = [p for p in path.partition("?")[0].split("/") if p]
        route_class, session_id = classify_route(method, parts)
        evicting = (
            self.core.sessions.get(session_id)
            if method == "DELETE" and session_id is not None
            else None
        )
        self.metrics.request_started()
        start = time.perf_counter()
        status = 500
        try:
            status, payload = self.core.handle(method, path, body)
        finally:
            self.metrics.request_finished(
                route_class, status, time.perf_counter() - start
            )
        if route_class == "open" and status == 201:
            self.metrics.session_opened()
            if isinstance(payload, dict) and payload.get("complete"):
                self.metrics.session_completed()
        elif route_class == "validate" and status == 200:
            if isinstance(payload, dict) and payload.get("complete"):
                self.metrics.session_completed()
        elif evicting is not None and status == 200:
            # Dropping an unfinished session is an eviction; dropping a
            # completed one was already counted as completed.
            if not evicting.is_complete:
                self.metrics.session_evicted()
        return status, payload


class _Handler(BaseHTTPRequestHandler):
    app: CerFixWebApp  # set by serve()

    def _respond(self, status: int, payload) -> None:
        data = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _respond_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        if method == "GET" and path in ("/metrics", "/api/metrics") and (
            "format=prometheus" in query
        ):
            registry = get_registry()
            registry.record_snapshot()
            self._respond_text(200, promfmt.render(registry.dump()), promfmt.CONTENT_TYPE)
            return
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                self._respond(400, {"error": "request body is not valid JSON"})
                return
        with self.app._lock:
            status, payload = self.app.handle(method, self.path, body)
        self._respond(status, payload)

    def do_GET(self):  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, fmt, *args):  # silence request logging
        pass


class CerFixServer:
    """A running web explorer; use as a context manager in tests."""

    def __init__(self, engine: CerFix, host: str = "127.0.0.1", port: int = 0):
        self.app = CerFixWebApp(engine)
        handler = type("BoundHandler", (_Handler,), {"app": self.app})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.host = host
        self.port = self.httpd.server_address[1]
        self._thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CerFixServer":
        if not self._thread.is_alive():
            self._thread.start()
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()

    def __enter__(self) -> "CerFixServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def serve(engine: CerFix, host: str = "127.0.0.1", port: int = 0) -> CerFixServer:
    """Start the web explorer in a background thread; returns the server."""
    return CerFixServer(engine, host, port).start()
