"""The data explorer (paper Fig. 1): rule management and inspection.

The demo ships a web interface; the reproduction ships the ``cerfix``
command-line explorer plus text rendering used throughout the
benchmarks. Both drive exactly the same library facilities.
"""

from repro.explorer.render import format_kv, format_table, highlight

__all__ = ["format_table", "format_kv", "highlight"]
