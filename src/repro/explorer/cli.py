"""The ``cerfix`` command-line explorer.

Substitutes for the demo's web interface (DESIGN.md, substitution 1):
every subcommand drives the same library facilities the web UI would.

Subcommands::

    cerfix rules    [--scenario uk|hospital] [--rules FILE] [--check]
    cerfix regions  [--scenario ...] [-k N] [--mode strict|anchored|scenario]
    cerfix fix      [--scenario ...] --input CSV --truth CSV [--out CSV]
    cerfix clean    [--scenario ...] --input CSV [--truth CSV] [--workers N]
                    [--cache FILE]  # cross-run probe-cache persistence
                    [--store single|sharded|sqlite|remote [--store-shards N]
                     [--store-path DB] [--shard-urls URL,..[;URL,..]]]
    cerfix clean    [--scenario ...|--instance DIR] --db FILE [--table T]
                    [--page-rows N] [--dry-run] [--resume RUN_ID]
                    [--validated A,B]             # DB-native paged cleaning
    cerfix undo     [--instance DIR] --db FILE (RUN_ID | --list) [--table T]
    cerfix monitor  [--scenario ...]              # interactive, stdin-driven
    cerfix serve    [--scenario ...|--instance DIR] [--port N]
                    [--async [--max-sessions N] [--cache-size N]]
    cerfix shard-server  (--instance DIR | --scenario ... [--master CSV])
                    --shard-id I --shards N [--host H] [--port P]
    cerfix audit    --log FILE [--attr NAME] [--tuple ID]
    cerfix trace    FILE [--trace-id PREFIX] [--audit LOG]   # span-file analysis
    cerfix health   --shard-urls URL,..[;URL,..] [--service URL] [--json]
    cerfix top      --shard-urls URL,..[;URL,..] [--service URL]
                    [--interval S] [--iterations N]
    cerfix generate [--scenario ...] --master-out CSV --out CSV --truth-out CSV
    cerfix demo                                   # the Fig. 3 walkthrough

``clean`` and ``serve`` accept ``--trace FILE [--trace-sample Q]`` to
export structured spans (JSON lines) for ``cerfix trace`` to analyse,
and ``--slowlog FILE [--slow-ms T]`` to append spans slower than the
threshold to a structured slowlog (also a ``cerfix trace`` input);
shard servers inherit both through ``CERFIX_TRACE`` /
``CERFIX_SLOW_SPAN``. ``health`` exits 0 only when the cluster rollup
is ``ok`` — 1 on degraded/down, so it slots into scripts and probes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.audit.log import AuditLog
from repro.audit.stats import attribute_stats, overall_stats, tuple_trace
from repro.core.certainty import CertaintyMode
from repro.core.ruleset import RuleSet
from repro.engine import CerFix
from repro.errors import CerFixError
from repro.explorer.render import format_kv, format_table, highlight
from repro.monitor.suggest import SuggestionStrategy
from repro.obs import trace as tracing
from repro.relational.csvio import read_csv, write_csv
from repro.relational.relation import Relation
from repro.rules.parser import parse_rules
from repro.scenarios import hospital, uk_customers


def _load_scenario(args) -> tuple[RuleSet, Relation, Any]:
    """(ruleset, master relation, scenario generator) for the CLI flags."""
    name = getattr(args, "scenario", "uk")
    if getattr(args, "rules", None):
        text = Path(args.rules).read_text(encoding="utf-8")
        if not getattr(args, "master", None):
            raise CerFixError("--rules requires --master CSV (schemas are inferred)")
        master = read_csv(args.master, relation_name="master")
        sample = read_csv(args.input, relation_name="input") if getattr(args, "input", None) else None
        if sample is None:
            raise CerFixError("--rules requires --input CSV to infer the input schema")
        ruleset = RuleSet(parse_rules(text), sample.schema, master.schema)
        return ruleset, master, None
    if name == "uk":
        master = (
            read_csv(args.master, schema=uk_customers.MASTER_SCHEMA)
            if getattr(args, "master", None)
            else uk_customers.paper_master()
        )
        return uk_customers.paper_ruleset(), master, uk_customers.scenario_tuples(master)
    if name == "hospital":
        master = (
            read_csv(args.master, schema=hospital.MASTER_SCHEMA)
            if getattr(args, "master", None)
            else hospital.generate_master(50)
        )
        return hospital.hospital_ruleset(), master, hospital.scenario_tuples(master)
    raise CerFixError(f"unknown scenario {name!r} (expected uk or hospital)")


def _engine(args) -> CerFix:
    ruleset, master, scenario = _load_scenario(args)
    mode = CertaintyMode(getattr(args, "mode", "scenario"))
    if mode is CertaintyMode.SCENARIO and scenario is None:
        mode = CertaintyMode.STRICT
    store = getattr(args, "store", None)
    if store == "sqlite" and not getattr(args, "store_path", None):
        raise CerFixError("--store sqlite requires --store-path for the snapshot file")
    shard_urls = _parse_shard_urls(args)
    if store == "remote" and not shard_urls:
        raise CerFixError(
            "--store remote requires --shard-urls (comma-separated shard "
            "server urls, one per shard, in shard-id order; use ';' between "
            "shards to give each a comma-separated replica list)"
        )
    store_shards = getattr(args, "store_shards", None)
    return CerFix(
        ruleset,
        master,
        mode=mode,
        scenario=scenario,
        strategy=SuggestionStrategy(getattr(args, "strategy", "core_first")),
        store=store,
        store_shards=store_shards if store_shards is not None else 4,
        store_path=getattr(args, "store_path", None),
        store_urls=shard_urls,
    )


def _configure_trace(args) -> None:
    """Turn on span export when ``--trace`` / ``--slowlog`` were given.

    Also mirrors the targets into ``CERFIX_TRACE`` /
    ``CERFIX_SLOW_SPAN`` so subprocesses this command spawns
    (process-backend workers, shard servers launched from the same
    shell) append to the same files — multi-process runs yield one
    connected trace and one fleet-wide slowlog."""
    import os

    slowlog = getattr(args, "slowlog", None)
    if slowlog:
        slow_ms = getattr(args, "slow_ms", 100.0)
        tracing.configure_slowlog(slowlog, slow_ms)
        os.environ["CERFIX_SLOW_SPAN"] = tracing.slow_env_value(slowlog, slow_ms)
    path = getattr(args, "trace", None)
    if not path:
        tracing.configure_from_env()
        return
    sample = getattr(args, "trace_sample", 1.0)
    tracing.configure(path, sample)
    os.environ["CERFIX_TRACE"] = tracing.env_value(path, sample)


def _parse_shard_urls(args) -> list | None:
    """``--shard-urls`` → the remote store's url topology.

    Commas separate shards: ``a,b,c`` is three unreplicated shards
    (the legacy form, returned flat). Semicolons separate shards when
    replicas are in play: ``a,b;c,d`` is two shards with two replicas
    each — within a ``;`` group, commas separate that shard's replicas.
    """
    raw = getattr(args, "shard_urls", None)
    if not raw:
        return None
    if ";" not in raw:
        urls = [u.strip() for u in raw.split(",") if u.strip()]
        return urls or None
    groups: list[list[str]] = []
    for chunk in raw.split(";"):
        replicas = [u.strip() for u in chunk.split(",") if u.strip()]
        if replicas:
            groups.append(replicas)
    return groups or None


# -- subcommands -------------------------------------------------------------


def cmd_rules(args) -> int:
    engine = _engine(args)
    rows = [
        (r.rule_id, r.render(), r.description)
        for r in engine.ruleset
    ]
    print(format_table(("id", "rule", "description"), rows,
                       title=f"{len(rows)} editing rules", max_width=64))
    if args.check:
        report = engine.check_consistency()
        print()
        print(report.describe())
        return 0 if report.is_consistent else 1
    return 0


def cmd_regions(args) -> int:
    engine = _engine(args)
    regions = engine.precompute_regions(k=args.k, max_combos=args.max_combos)
    rows = [(i + 1, r.region.size, r.region.render(), f"{r.coverage:.2f}", r.combos_checked)
            for i, r in enumerate(regions)]
    print(format_table(("rank", "size", "region", "coverage", "checked"), rows,
                       title=f"top-{args.k} certain regions (mode={engine.mode.value})",
                       max_width=72))
    return 0


def cmd_fix(args) -> int:
    engine = _engine(args)
    dirty = read_csv(args.input, schema=engine.ruleset.input_schema)
    truth = read_csv(args.truth, schema=engine.ruleset.input_schema)
    report = engine.stream(dirty, truth)
    print(format_kv({
        "tuples": report.tuples,
        "certain fixes": report.completed,
        "mean rounds": f"{report.mean_rounds:.2f}",
        "user-validated cells": f"{report.user_cells} ({report.user_share:.0%})",
        "auto-fixed cells": f"{report.rule_cells} ({report.auto_share:.0%})",
        "throughput (tuples/s)": f"{report.throughput:.0f}",
    }, title="stream result"))
    if args.out:
        fixed = Relation(engine.ruleset.input_schema)
        for i, row in enumerate(dirty.rows()):
            events = engine.audit.by_tuple(f"t{i}")
            values = row.to_dict()
            for e in events:
                values[e.attr] = e.new
            fixed.append(values)
        write_csv(fixed, args.out)
        print(f"fixed tuples written to {args.out}")
    if args.log:
        engine.audit.to_jsonl(args.log)
        print(f"audit log written to {args.log}")
    return 0


def _dirty_target(args, config=None, base: Path | None = None):
    """(db, table, page_rows) from flags, instance document, or both.

    Flags win over the instance's ``dirty`` section; the section's
    relative ``db`` path resolves against the instance directory.
    """
    db = getattr(args, "db", None)
    table = getattr(args, "table", None)
    page_rows = getattr(args, "page_rows", None)
    section = getattr(config, "dirty", None) or {}
    if db is None and section.get("db"):
        db = str((base / section["db"]) if base is not None else section["db"])
    if table is None:
        table = section.get("table", "dirty")
    if page_rows is None:
        page_rows = section.get("page_rows")
    return db, table, page_rows


def _instance_engine(args):
    """(engine, config, instance dir) when ``--instance`` was given."""
    if not getattr(args, "instance", None):
        return None
    from repro.config import load_instance

    engine, config = load_instance(args.instance)
    base = Path(args.instance)
    if base.is_file():
        base = base.parent
    return engine, config, base


def cmd_clean(args) -> int:
    """Whole-relation cleaning: batch pipeline (--input) or paged DB (--db)."""
    import json as _json

    _configure_trace(args)
    loaded = _instance_engine(args)
    if loaded is not None:
        engine, config, base = loaded
        db, table, page_rows = _dirty_target(args, config, base)
        _require_one_source(args, db)
    else:
        db, table, page_rows = _dirty_target(args)
        _require_one_source(args, db)
        engine = _engine(args)
    if db is not None:
        return _clean_db(args, engine, db, table, page_rows)
    dirty = read_csv(args.input, schema=engine.ruleset.input_schema)
    truth = (
        read_csv(args.truth, schema=engine.ruleset.input_schema) if args.truth else None
    )
    validated = tuple(a for a in (args.validated or "").split(",") if a)
    result = engine.clean_relation(
        dirty,
        truth,
        workers=args.workers,
        backend=args.backend,
        shards=args.shards,
        dedupe=not args.no_dedupe,
        validated=validated,
        journal_path=args.journal,
        cache_path=args.cache,
    )
    print(result.report.describe())
    if args.out:
        write_csv(result.relation, args.out)
        print(f"repaired relation written to {args.out}")
    if args.report:
        Path(args.report).write_text(
            _json.dumps(result.report.to_json(), indent=2, default=str) + "\n",
            encoding="utf-8",
        )
        print(f"batch report written to {args.report}")
    if args.log:
        engine.audit.to_jsonl(args.log)
        print(f"audit log written to {args.log}")
    if getattr(args, "trace", None):
        print(f"trace spans written to {args.trace} (analyse with `cerfix trace {args.trace}`)")
    return 0


def _require_one_source(args, db) -> None:
    if (args.input is None) == (db is None):
        raise CerFixError(
            "give exactly one dirty-data source: --input CSV (in-memory "
            "batch path) or --db FILE (paged DB-native path; an instance "
            "document's 'dirty' section also provides it)"
        )


def _clean_db(args, engine: CerFix, db: str, table: str, page_rows) -> int:
    """The paged DB-native path of ``cerfix clean``."""
    if args.truth:
        raise CerFixError(
            "--truth drives an oracle user and only applies to --input; the "
            "DB path runs rule-only repairs (use --validated for trusted columns)"
        )
    validated = tuple(a for a in (args.validated or "").split(",") if a)
    result = engine.clean_table(
        db,
        table=table,
        page_rows=page_rows,
        dry_run=args.dry_run,
        resume=args.resume,
        workers=args.workers,
        backend=args.backend,
        shards=args.shards,
        dedupe=not args.no_dedupe,
        validated=validated,
        journal_dir=args.journal,
    )
    print(result.describe())
    if result.dry_run:
        rows = [
            (c.row_key, c.column, repr(c.old), repr(c.new), c.rule_id or "")
            for c in result.changes[:20]
        ]
        if rows:
            title = f"first {len(rows)} of {len(result.changes)} would-be changes"
            print(format_table(("row", "column", "old", "new", "rule"), rows,
                               title=title, max_width=64))
        print("dry run: nothing was committed")
    else:
        print(f"reversible archive recorded in {db}; "
              f"undo with `cerfix undo --db {db} {result.run_id}`")
    if args.log:
        engine.audit.to_jsonl(args.log)
        print(f"audit log written to {args.log}")
    if getattr(args, "trace", None):
        print(f"trace spans written to {args.trace} (analyse with `cerfix trace {args.trace}`)")
    return 0


def cmd_undo(args) -> int:
    """Restore the pre-run table of a recorded clean run (digest-verified)."""
    from repro.dirty import DirtyTable, list_runs, undo_run

    loaded = _instance_engine(args)
    if loaded is not None:
        _, config, base = loaded
        db, table, _ = _dirty_target(args, config, base)
    else:
        db, table, _ = _dirty_target(args)
    if db is None:
        raise CerFixError(
            "--db FILE is required (or an --instance with a 'dirty' section)"
        )
    dirty_table = DirtyTable(db, table)
    if args.list:
        rows = [
            (r.run_id, r.status, f"{r.pages_done}/{r.pages_total}",
             r.changed_cells, r.row_count)
            for r in list_runs(dirty_table)
        ]
        print(format_table(("run", "status", "pages", "cells", "rows"), rows,
                           title=f"clean runs of {db}:{table}"))
        return 0
    if not args.run_id:
        raise CerFixError("give a RUN_ID to undo, or --list to see recorded runs")
    record = undo_run(dirty_table, args.run_id)
    print(f"run {record.run_id} undone: {record.changed_cells} cells restored, "
          f"table digest-verified against the pre-run state")
    return 0


def cmd_trace(args) -> int:
    """Analyse a span file: flame summary, stage latency, critical path."""
    from repro.obs import tracecli

    return tracecli.run(args)


def _monitor_from_args(args, *, fail_threshold: int):
    from repro.obs.monitor import ClusterMonitor

    shard_urls = _parse_shard_urls(args)
    if not shard_urls:
        raise CerFixError(
            "--shard-urls is required: comma-separated shard-server urls in "
            "shard-id order (';' separates shards with replica lists)"
        )
    return ClusterMonitor(
        shard_urls,
        service_url=getattr(args, "service", None),
        timeout=args.timeout,
        fail_threshold=fail_threshold,
    )


def cmd_health(args) -> int:
    """One-shot cluster health rollup; exit 0 only when everything is ok."""
    import json as _json

    from repro.obs.monitor import describe_rollup

    # One shot means one scrape: a single failure must already count as
    # an open circuit, or a dead replica would need a second run to name.
    monitor = _monitor_from_args(args, fail_threshold=1)
    snapshot = monitor.scrape_once()
    rollup = snapshot["rollup"]
    if args.json:
        print(_json.dumps(snapshot, indent=2, default=str))
    else:
        for line in describe_rollup(rollup):
            print(line)
    return 0 if rollup["status"] == "ok" else 1


def cmd_top(args) -> int:
    """Live terminal dashboard over the cluster (curses-free)."""
    import time as _time

    from repro.obs.monitor import render_top

    monitor = _monitor_from_args(args, fail_threshold=2)
    iterations = args.iterations
    n = 0
    try:
        while True:
            snapshot = monitor.scrape_once()
            frame = render_top(snapshot, monitor.rates())
            n += 1
            if iterations and n >= iterations:
                # Final (or only) frame: plain print, no screen control —
                # what scripts and tests capture.
                print(frame, end="")
                return 0
            print("\x1b[2J\x1b[H" + frame, end="", flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_shard_server(args) -> int:
    """Run one master-data shard server in the foreground."""
    from repro.master import shardserver

    return shardserver.run_from_args(args)


def cmd_monitor(args) -> int:
    engine = _engine(args)
    schema = engine.ruleset.input_schema
    print(f"enter a tuple, one '{schema.names[0]}' .. '{schema.names[-1]}' value per prompt")
    values = {}
    for name in schema.names:
        values[name] = input(f"  {name} = ").strip()
    session = engine.session(values, "cli")
    while not session.is_complete:
        suggestion = session.suggestion()
        if suggestion is None:
            break
        print()
        print(highlight(session.current_values(), set(suggestion.attrs), set(session.validated)))
        print(f"suggest: {suggestion.render()}")
        raw = input("validate attr=value[,attr=value..] (empty = assure suggested): ").strip()
        if not raw:
            session.assure(suggestion.attrs)
            continue
        assignments = {}
        for part in raw.split(","):
            attr, _, value = part.partition("=")
            assignments[attr.strip()] = value.strip()
        session.validate(assignments)
    print()
    print(highlight(session.current_values(), set(), set(session.validated)))
    print(f"certain fix reached in {session.round_no} round(s)")
    for line in tuple_trace(session.audit, "cli"):
        print("  " + line)
    return 0


def cmd_audit(args) -> int:
    log = AuditLog.from_jsonl(args.log)
    if args.tuple:
        for line in tuple_trace(log, args.tuple):
            print(line)
        return 0
    stats = attribute_stats(log)
    if args.attr:
        stats = [s for s in stats if s.attr == args.attr]
    rows = [
        (s.attr, s.user_validations, s.rule_fixes, f"{s.pct_user:.0f}%",
         f"{s.pct_auto:.0f}%", s.normalizations, s.value_changes)
        for s in stats
    ]
    print(format_table(
        ("attr", "by user", "by CerFix", "%user", "%auto", "normalized", "changed"),
        rows, title="data auditing (Fig. 4)"))
    overall = overall_stats(log)
    print()
    print(format_kv({
        "tuples": overall.tuples,
        "user share": f"{overall.user_share:.0%}",
        "auto share": f"{overall.auto_share:.0%}",
    }))
    return 0


def cmd_generate(args) -> int:
    if args.scenario == "hospital":
        master = hospital.generate_master(args.master_size, seed=args.seed)
        workload = hospital.generate_workload(master, args.n, rate=args.rate, seed=args.seed)
    else:
        master = uk_customers.generate_master(args.master_size, seed=args.seed)
        workload = uk_customers.generate_workload(master, args.n, rate=args.rate, seed=args.seed)
    write_csv(master, args.master_out)
    write_csv(workload.dirty, args.out)
    write_csv(workload.clean, args.truth_out)
    print(f"master: {len(master)} rows -> {args.master_out}")
    print(f"dirty:  {len(workload.dirty)} rows ({workload.error_cells} corrupted cells) -> {args.out}")
    print(f"truth:  {len(workload.clean)} rows -> {args.truth_out}")
    return 0


def cmd_demo(args) -> int:
    """The Fig. 3 walkthrough, narrated."""
    engine = CerFix(
        uk_customers.paper_ruleset(),
        uk_customers.paper_master(),
        mode=CertaintyMode.SCENARIO,
        scenario=uk_customers.scenario_tuples(uk_customers.paper_master()),
    )
    truth = uk_customers.fig3_truth()
    session = engine.session(uk_customers.fig3_tuple(), "fig3")
    print("input tuple (Fig. 3):")
    print("  " + highlight(session.current_values(), set(), set()))
    round_no = 0
    while not session.is_complete:
        suggestion = session.suggestion()
        if suggestion is None:
            break
        round_no += 1
        print(f"\nround {round_no}: CerFix suggests validating {set(suggestion.attrs)}")
        session.validate({a: truth[a] for a in suggestion.attrs})
        print("  " + highlight(session.current_values(), set(), set(session.validated)))
    print(f"\ncertain fix reached in {session.round_no} rounds; audit trail:")
    for line in tuple_trace(session.audit, "fig3"):
        print("  " + line)
    return 0


def cmd_init(args) -> int:
    """Write an instance directory: instance.json + master.csv + rules.txt."""
    from repro.config import InstanceConfig, save_instance
    from repro.scenarios import hospital as hosp

    if args.scenario == "hospital":
        master = hosp.generate_master(args.master_size or 50, seed=args.seed)
        ruleset = hosp.hospital_ruleset()
        config = InstanceConfig("hospital", hosp.INPUT_SCHEMA, hosp.MASTER_SCHEMA,
                                mode=CertaintyMode.ANCHORED)
    else:
        master = (
            uk_customers.generate_master(args.master_size, seed=args.seed)
            if args.master_size
            else uk_customers.paper_master()
        )
        ruleset = uk_customers.paper_ruleset()
        config = InstanceConfig("uk-customers", uk_customers.INPUT_SCHEMA,
                                uk_customers.MASTER_SCHEMA,
                                mode=CertaintyMode.ANCHORED)
    path = save_instance(args.out, config, master, ruleset)
    print(f"instance written to {path} ({len(master)} master tuples, {len(ruleset)} rules)")
    return 0


def cmd_serve(args) -> int:
    _configure_trace(args)
    service_cfg: dict[str, Any] = {}
    if args.instance:
        if (
            args.store
            or args.store_path
            or args.store_shards is not None
            or getattr(args, "shard_urls", None)
        ):
            raise CerFixError(
                "--store flags conflict with --instance: configure the "
                "backend in the instance document's 'store' section"
            )
        from repro.config import load_instance

        engine, config = load_instance(args.instance)
        service_cfg = dict(config.service)
        print(f"serving instance {config.name!r}")
    else:
        engine = _engine(args)
    if args.use_async:
        return _serve_async(engine, args, service_cfg)
    from repro.explorer.web import serve

    server = serve(engine, port=args.port)
    print(f"cerfix web explorer listening on {server.url} (Ctrl-C to stop)")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _serve_async(engine: CerFix, args, service_cfg: dict[str, Any]) -> int:
    """Run the asyncio entry service in the foreground (Ctrl-C stops)."""
    import asyncio

    from repro.service.app import AsyncCerFixService
    from repro.service.http import AsyncCerFixServer

    if args.max_sessions is not None:
        service_cfg["max_sessions"] = args.max_sessions
    if args.cache_size is not None:
        service_cfg["cache_size"] = args.cache_size
    service = AsyncCerFixService(engine, **service_cfg)
    server = AsyncCerFixServer(service, port=args.port)

    async def _main() -> None:
        await server.bind()
        print(
            f"cerfix async entry service listening on {server.url} "
            f"(max_sessions={service.admission.max_sessions}, "
            f"cache={service.cache.maxsize}; Ctrl-C to stop)"
        )
        await server.serve()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


# -- argument parsing -----------------------------------------------------------


def _add_scenario_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scenario", choices=("uk", "hospital"), default="uk")
    p.add_argument("--rules", help="rule file (textual syntax) instead of a scenario")
    p.add_argument("--master", help="master data CSV (overrides the scenario default)")
    p.add_argument("--mode", choices=tuple(m.value for m in CertaintyMode), default="scenario")
    p.add_argument("--strategy", choices=tuple(s.value for s in SuggestionStrategy),
                   default="core_first")


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", help="export structured spans (JSON lines) to this file")
    p.add_argument("--trace-sample", type=float, default=1.0, dest="trace_sample",
                   help="fraction of traces to export, 0..1 (default 1.0)")
    p.add_argument("--slowlog", help="append spans slower than --slow-ms to this "
                   "file (JSON lines; analyse with `cerfix trace`)")
    p.add_argument("--slow-ms", type=float, default=100.0, dest="slow_ms",
                   help="slowlog threshold in milliseconds (default 100)")


def _add_store_flags(p: argparse.ArgumentParser) -> None:
    from repro.master import STORE_BACKENDS

    p.add_argument("--store", choices=STORE_BACKENDS, default=None,
                   help="master store backend (default: single in-memory relation)")
    p.add_argument("--store-shards", type=int, default=None, dest="store_shards",
                   help="shard count for --store sharded (default 4)")
    p.add_argument("--store-path", dest="store_path",
                   help="snapshot file for --store sqlite")
    p.add_argument("--shard-urls", dest="shard_urls",
                   help="shard-server urls for --store remote, in shard-id "
                        "order: commas separate shards (host:a,host:b), or "
                        "semicolons separate shards and commas their replicas "
                        "(host:a,host:b;host:c,host:d = 2 shards x 2 replicas "
                        "with client-side failover)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cerfix",
        description="CerFix: cleaning data with certain fixes (PVLDB 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("rules", help="list editing rules; --check runs the static analysis")
    _add_scenario_flags(p)
    p.add_argument("--check", action="store_true")
    p.set_defaults(func=cmd_rules)

    p = sub.add_parser("regions", help="compute top-k certain regions")
    _add_scenario_flags(p)
    p.add_argument("-k", type=int, default=5)
    p.add_argument("--max-combos", type=int, default=50_000, dest="max_combos")
    p.set_defaults(func=cmd_regions)

    p = sub.add_parser("fix", help="fix a CSV of input tuples with an oracle user")
    _add_scenario_flags(p)
    p.add_argument("--input", required=True)
    p.add_argument("--truth", required=True)
    p.add_argument("--out", help="write fixed tuples here")
    p.add_argument("--log", help="write the audit log (JSON lines) here")
    p.set_defaults(func=cmd_fix)

    p = sub.add_parser(
        "clean",
        help="clean a whole relation: a CSV through the batch pipeline "
             "(--input) or a database table in pages (--db)",
    )
    _add_scenario_flags(p)
    _add_store_flags(p)
    p.add_argument("--input", help="dirty CSV (in-memory batch path)")
    p.add_argument("--db", help="sqlite file holding the dirty table "
                   "(paged DB-native path; fixes archive reversibly)")
    p.add_argument("--table", default=None,
                   help="dirty table name for --db (default: dirty)")
    p.add_argument("--page-rows", type=int, default=None, dest="page_rows",
                   help="rows per page for --db (default: CERFIX_PAGE_ROWS or 4096)")
    p.add_argument("--dry-run", action="store_true", dest="dry_run",
                   help="--db: validate and report without committing anything "
                        "(the database is opened read-only)")
    p.add_argument("--resume", help="--db: resume an interrupted run by run id")
    p.add_argument("--instance", help="load engine and dirty-table location "
                   "from a saved instance directory")
    p.add_argument("--truth", help="ground-truth CSV driving an oracle user (optional)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--backend", choices=("thread", "process"), default="thread")
    p.add_argument("--shards", type=int, help="shard count (default: 4 per worker)")
    p.add_argument("--no-dedupe", action="store_true", dest="no_dedupe",
                   help="disable duplicate-signature collapsing")
    p.add_argument("--validated", help="comma-separated trusted columns (rule-only mode)")
    p.add_argument("--journal", help="checkpoint journal path (enables crash-safe resume)")
    p.add_argument("--cache", help="probe-cache snapshot path (warm-starts repeat runs "
                   "against unchanged master data and rules)")
    p.add_argument("--out", help="write the repaired relation here")
    p.add_argument("--report", help="write the batch report (JSON) here")
    p.add_argument("--log", help="write the audit log (JSON lines) here")
    _add_trace_flags(p)
    p.set_defaults(func=cmd_clean)

    p = sub.add_parser(
        "undo",
        help="restore the exact pre-run dirty table of a recorded clean "
             "run (digest-verified); --list shows recorded runs",
    )
    p.add_argument("run_id", nargs="?", help="run id to undo (from `cerfix clean --db`)")
    p.add_argument("--db", help="sqlite file holding the dirty table and archive")
    p.add_argument("--table", default=None,
                   help="dirty table name (default: dirty)")
    p.add_argument("--instance", help="take the dirty-table location from a "
                   "saved instance directory")
    p.add_argument("--list", action="store_true",
                   help="list recorded clean runs instead of undoing")
    p.set_defaults(func=cmd_undo)

    p = sub.add_parser(
        "shard-server",
        help="serve one master-data shard over HTTP (the remote store's "
             "server side; run one per shard)",
    )
    from repro.master import shardserver

    shardserver.add_arguments(p)
    p.set_defaults(func=cmd_shard_server)

    p = sub.add_parser("monitor", help="interactively fix one tuple")
    _add_scenario_flags(p)
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser("audit", help="inspect an audit log")
    p.add_argument("--log", required=True)
    p.add_argument("--attr")
    p.add_argument("--tuple", dest="tuple")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("trace", help="analyse a span file written by --trace")
    p.add_argument("file", help="span file (JSON lines)")
    p.add_argument("--trace-id", dest="trace_id",
                   help="only show traces whose id starts with this prefix")
    p.add_argument("--audit", help="audit log (JSON lines) to join fixes onto spans")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "health",
        help="scrape a cluster once and report the health rollup "
             "(exit 0 only when status is ok)",
    )
    p.add_argument("--shard-urls", dest="shard_urls", required=True,
                   help="shard-server urls, shard-id order; ';' separates "
                        "shards with comma-separated replica lists")
    p.add_argument("--service", help="entry-service url to include in the rollup")
    p.add_argument("--timeout", type=float, default=2.0,
                   help="per-endpoint scrape timeout in seconds (default 2)")
    p.add_argument("--json", action="store_true",
                   help="print the full cluster snapshot as JSON")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard: rates, per-shard latency "
             "percentiles, circuits, failovers",
    )
    p.add_argument("--shard-urls", dest="shard_urls", required=True,
                   help="shard-server urls, shard-id order; ';' separates "
                        "shards with comma-separated replica lists")
    p.add_argument("--service", help="entry-service url to include")
    p.add_argument("--timeout", type=float, default=2.0,
                   help="per-endpoint scrape timeout in seconds (default 2)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh interval in seconds (default 2)")
    p.add_argument("--iterations", type=int, default=0,
                   help="stop after N frames (0 = run until Ctrl-C)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("generate", help="generate master data and a dirty workload")
    p.add_argument("--scenario", choices=("uk", "hospital"), default="uk")
    p.add_argument("--master-size", type=int, default=200, dest="master_size")
    p.add_argument("-n", type=int, default=500)
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--master-out", required=True, dest="master_out")
    p.add_argument("--out", required=True)
    p.add_argument("--truth-out", required=True, dest="truth_out")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("demo", help="run the Fig. 3 walkthrough")
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("init", help="write an instance directory (the demo's initialisation step)")
    p.add_argument("--scenario", choices=("uk", "hospital"), default="uk")
    p.add_argument("--master-size", type=int, default=0, dest="master_size",
                   help="generate this many master tuples (0 = the paper data for uk)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="instance directory to create")
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("serve", help="run the web explorer (JSON API)")
    _add_scenario_flags(p)
    _add_store_flags(p)
    p.add_argument("--instance", help="serve a saved instance directory instead")
    p.add_argument("--port", type=int, default=8384)
    p.add_argument("--async", action="store_true", dest="use_async",
                   help="run the concurrent asyncio entry service instead of "
                        "the serial explorer (shared probe cache, micro-batched "
                        "master lookups, 429 backpressure, /api/metrics)")
    p.add_argument("--max-sessions", type=int, default=None, dest="max_sessions",
                   help="async: max concurrently active sessions before 429 (default 256)")
    p.add_argument("--cache-size", type=int, default=None, dest="cache_size",
                   help="async: shared probe cache entries (default 8192)")
    _add_trace_flags(p)
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CerFixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
