"""Audit events: one record per cell change or validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ValidationError

#: Event sources. ``user`` — the user validated (and possibly corrected)
#: the cell; ``rule`` — an editing rule fixed it from master data;
#: ``normalize`` — a self-normalising rule rewrote an already-validated
#: cell to its master canonical form.
SOURCES = ("user", "rule", "normalize")


@dataclass(frozen=True)
class ChangeEvent:
    """One validation or fix, with full provenance.

    ``old == new`` is meaningful: it records a *confirmation* (the value
    was already correct). ``master_positions`` point into the master
    relation used by the session, so the explorer can show "where the
    correct value comes from" (paper §3, data auditing).
    """

    seq: int
    tuple_id: str
    attr: str
    old: Any
    new: Any
    source: str
    rule_id: str | None = None
    master_positions: tuple[int, ...] = ()
    round_no: int = 0
    #: Trace correlation (the QFix-style diagnosis seam): when tracing
    #: is enabled, the span active while this fix was produced —
    #: ``cerfix trace --audit`` joins fixes back to probes/chases.
    trace_id: str | None = None
    span_id: str | None = None

    def __post_init__(self):
        if self.source not in SOURCES:
            raise ValidationError(f"unknown audit source {self.source!r} (expected one of {SOURCES})")

    @property
    def changed(self) -> bool:
        return self.old != self.new

    def describe(self) -> str:
        what = f"{self.attr}: {self.old!r}"
        if self.changed:
            what += f" -> {self.new!r}"
        else:
            what += " (confirmed)"
        if self.source == "user":
            via = "validated by user"
        else:
            via = f"{'normalized' if self.source == 'normalize' else 'fixed'} by rule {self.rule_id}"
            if self.master_positions:
                via += f" with master tuple(s) {list(self.master_positions)}"
        return f"[{self.tuple_id} r{self.round_no}] {what} — {via}"

    def to_json(self) -> dict:
        out = {
            "seq": self.seq,
            "tuple_id": self.tuple_id,
            "attr": self.attr,
            "old": self.old,
            "new": self.new,
            "source": self.source,
            "rule_id": self.rule_id,
            "master_positions": list(self.master_positions),
            "round_no": self.round_no,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
        return out

    @classmethod
    def from_json(cls, obj: dict) -> "ChangeEvent":
        return cls(
            seq=obj["seq"],
            tuple_id=obj["tuple_id"],
            attr=obj["attr"],
            old=obj["old"],
            new=obj["new"],
            source=obj["source"],
            rule_id=obj.get("rule_id"),
            master_positions=tuple(obj.get("master_positions", ())),
            round_no=obj.get("round_no", 0),
            trace_id=obj.get("trace_id"),
            span_id=obj.get("span_id"),
        )
