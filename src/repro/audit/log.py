"""The audit log: an append-only store of change events."""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.audit.events import ChangeEvent
from repro.obs import trace as tracing


class AuditLog:
    """Append-only change history with simple secondary views.

    One log typically serves a whole monitoring stream; events carry the
    tuple id, so per-tuple traces and per-attribute statistics are just
    filters over it.

    Thread-safe: the async entry service records events from many
    concurrent sessions into one log, so appends (and the sequence
    numbers they assign) happen under a lock, and every read works over
    an atomic snapshot. Global sequence order then reflects the actual
    interleaving; *per-tuple* order is what the certain-fix semantics
    guarantee (a session is only ever touched by one thread at a time).
    """

    def __init__(self):
        self._events: list[ChangeEvent] = []
        self._by_tuple: dict[str, list[ChangeEvent]] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {"events": list(self._events)}

    def __setstate__(self, state: dict) -> None:
        self._events = list(state["events"])
        self._by_tuple = {}
        for event in self._events:
            self._by_tuple.setdefault(event.tuple_id, []).append(event)
        self._lock = threading.Lock()

    def record(
        self,
        tuple_id: str,
        attr: str,
        old: Any,
        new: Any,
        source: str,
        *,
        rule_id: str | None = None,
        master_positions: Iterable[int] = (),
        round_no: int = 0,
        trace_id: str | None = None,
        span_id: str | None = None,
    ) -> ChangeEvent:
        """Append one event; the sequence number is assigned here.

        When tracing is enabled and no explicit ids are given, the
        event is stamped with the active span — batch replay passes the
        ids recorded *in the worker* instead, so provenance points at
        the group-chase that actually produced the fix."""
        if trace_id is None:
            trace_id, span_id = tracing.current_ids()
        with self._lock:
            event = ChangeEvent(
                seq=len(self._events),
                tuple_id=tuple_id,
                attr=attr,
                old=old,
                new=new,
                source=source,
                rule_id=rule_id,
                master_positions=tuple(master_positions),
                round_no=round_no,
                trace_id=trace_id,
                span_id=span_id,
            )
            self._events.append(event)
            self._by_tuple.setdefault(tuple_id, []).append(event)
        return event

    @property
    def events(self) -> tuple[ChangeEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def filter(self, predicate: Callable[[ChangeEvent], bool]) -> list[ChangeEvent]:
        return [e for e in self.events if predicate(e)]

    def by_tuple(self, tuple_id: str) -> list[ChangeEvent]:
        """All events for one tuple, in order — the demo's per-tuple trace.

        Served from a per-tuple index maintained on append, so the
        monitoring stream's per-row trace stays O(events for that tuple)
        instead of O(all events) — the difference between linear and
        quadratic total stream cost."""
        with self._lock:
            return list(self._by_tuple.get(tuple_id, ()))

    def by_attr(self, attr: str) -> list[ChangeEvent]:
        """All events for one attribute (column) — the Fig. 4 column view."""
        return self.filter(lambda e: e.attr == attr)

    def stats(self) -> dict:
        """Registry-source summary (see :mod:`repro.obs.metrics`)."""
        with self._lock:
            return {"events": len(self._events), "tuples": len(self._by_tuple)}

    def tuple_ids(self) -> list[str]:
        """Distinct tuple ids, in first-seen order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.tuple_id)
        return list(seen)

    # -- persistence -------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> None:
        path = Path(path)
        with path.open("w", encoding="utf-8") as f:
            for event in self.events:
                f.write(json.dumps(event.to_json(), default=str))
                f.write("\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "AuditLog":
        log = cls()
        path = Path(path)
        with path.open(encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    event = ChangeEvent.from_json(json.loads(line))
                    log._events.append(event)
                    log._by_tuple.setdefault(event.tuple_id, []).append(event)
        return log

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[ChangeEvent]:
        return iter(self.events)
