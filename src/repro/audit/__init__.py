"""Data auditing (paper Fig. 1 / Fig. 4).

Tracks every change to every tuple — by users or by CerFix with editing
rules and master data — and serves the statistics the demo shows: per-
attribute percentages of user-validated vs automatically-fixed values,
and per-cell provenance ("fixed by normalising 'M.' to 'Mark', by rule ϕ4
with master tuple 2").
"""

from repro.audit.events import ChangeEvent, SOURCES
from repro.audit.log import AuditLog
from repro.audit.stats import (
    AttributeStat,
    OverallStats,
    attribute_stats,
    cell_provenance,
    overall_stats,
    tuple_trace,
)

__all__ = [
    "ChangeEvent",
    "SOURCES",
    "AuditLog",
    "AttributeStat",
    "OverallStats",
    "attribute_stats",
    "cell_provenance",
    "overall_stats",
    "tuple_trace",
]
