"""Audit statistics: the numbers behind paper Fig. 4.

"When FN is selected, CerFix presents the statistics about the attribute
FN, namely, the percentage of FN values that were validated by the users
and the percentage of values that were automatically fixed by CerFix.
Our experimental study indicates that in average, 20% of values are
validated by users while CerFix automatically fixes 80% of the data."

The accounting model: each cell (tuple, attribute) is *validated* exactly
once, either by a user event or by a rule fix; later ``normalize`` events
refine an already-validated cell and are reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.audit.events import ChangeEvent
from repro.audit.log import AuditLog


@dataclass(frozen=True)
class AttributeStat:
    """Per-attribute validation provenance (one Fig. 4 bar)."""

    attr: str
    user_validations: int
    rule_fixes: int
    normalizations: int
    value_changes: int  # events where old != new (actual repairs)
    confirmations: int  # validations where the value was already right

    @property
    def validated_cells(self) -> int:
        return self.user_validations + self.rule_fixes

    @property
    def pct_user(self) -> float:
        total = self.validated_cells
        return 100.0 * self.user_validations / total if total else 0.0

    @property
    def pct_auto(self) -> float:
        total = self.validated_cells
        return 100.0 * self.rule_fixes / total if total else 0.0


@dataclass(frozen=True)
class OverallStats:
    """Whole-log provenance (the paper's 20% / 80% headline)."""

    tuples: int
    user_cells: int
    auto_cells: int
    normalizations: int
    value_changes: int

    @property
    def validated_cells(self) -> int:
        return self.user_cells + self.auto_cells

    @property
    def user_share(self) -> float:
        total = self.validated_cells
        return self.user_cells / total if total else 0.0

    @property
    def auto_share(self) -> float:
        total = self.validated_cells
        return self.auto_cells / total if total else 0.0


def _first_validations(events: Iterable[ChangeEvent]) -> dict[tuple[str, str], ChangeEvent]:
    """The first user/rule event per (tuple, attr) — the validating one."""
    first: dict[tuple[str, str], ChangeEvent] = {}
    for e in events:
        if e.source == "normalize":
            continue
        first.setdefault((e.tuple_id, e.attr), e)
    return first


def attribute_stats(log: AuditLog, attrs: Iterable[str] | None = None) -> list[AttributeStat]:
    """Per-attribute statistics over the whole log.

    ``attrs`` fixes the output order (e.g. schema order); defaults to
    first-seen order of attributes in the log.
    """
    first = _first_validations(log.events)
    if attrs is None:
        seen: dict[str, None] = {}
        for e in log.events:
            seen.setdefault(e.attr)
        attrs = list(seen)
    out = []
    for attr in attrs:
        user = sum(1 for e in first.values() if e.attr == attr and e.source == "user")
        rule = sum(1 for e in first.values() if e.attr == attr and e.source == "rule")
        norm = sum(1 for e in log.events if e.attr == attr and e.source == "normalize")
        changes = sum(1 for e in log.events if e.attr == attr and e.changed)
        confirmed = sum(
            1 for e in first.values() if e.attr == attr and not e.changed
        )
        out.append(
            AttributeStat(
                attr=attr,
                user_validations=user,
                rule_fixes=rule,
                normalizations=norm,
                value_changes=changes,
                confirmations=confirmed,
            )
        )
    return out


def overall_stats(log: AuditLog) -> OverallStats:
    """Aggregate provenance across all cells in the log."""
    first = _first_validations(log.events)
    user = sum(1 for e in first.values() if e.source == "user")
    auto = sum(1 for e in first.values() if e.source == "rule")
    norm = sum(1 for e in log.events if e.source == "normalize")
    changes = sum(1 for e in log.events if e.changed)
    return OverallStats(
        tuples=len(log.tuple_ids()),
        user_cells=user,
        auto_cells=auto,
        normalizations=norm,
        value_changes=changes,
    )


def tuple_trace(log: AuditLog, tuple_id: str) -> list[str]:
    """Human-readable per-tuple history (the demo's tuple inspector)."""
    return [e.describe() for e in log.by_tuple(tuple_id)]


def cell_provenance(log: AuditLog, tuple_id: str, attr: str) -> list[ChangeEvent]:
    """All events that touched one cell — "what master tuples and editing
    rules have been employed to make the change" (paper §3)."""
    return [e for e in log.by_tuple(tuple_id) if e.attr == attr]
