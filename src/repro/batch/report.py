"""Batch reports: what a whole-relation cleaning run did, and how fast.

The :class:`BatchReport` is the batch counterpart of the stream's
:class:`~repro.monitor.stream.StreamReport`: it aggregates the fix/
validation split the paper's Fig. 4 is about (user vs rule cells),
plus the batch-only dimensions — dedup ratio, probe-cache efficiency,
per-shard timings and resume accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.batch.cache import CacheStats
from repro.batch.executor import ShardResult


@dataclass(frozen=True)
class ShardStats:
    """One shard's contribution (timing + exact cache counters)."""

    shard_id: int
    groups: int
    tuples: int
    elapsed_seconds: float
    cache: CacheStats
    resumed: bool

    @classmethod
    def from_result(cls, result: ShardResult) -> "ShardStats":
        return cls(
            shard_id=result.shard_id,
            groups=result.groups,
            tuples=result.tuples,
            elapsed_seconds=result.elapsed_seconds,
            cache=CacheStats(hits=result.cache_hits, misses=result.cache_misses),
            resumed=result.resumed,
        )

    def to_json(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "groups": self.groups,
            "tuples": self.tuples,
            "elapsed_seconds": self.elapsed_seconds,
            "cache": self.cache.to_json(),
            "resumed": self.resumed,
        }


@dataclass
class BatchReport:
    """Aggregate outcome of one batch cleaning run."""

    tuples: int = 0
    groups: int = 0
    duplicates_collapsed: int = 0
    completed: int = 0  # tuples that reached a certain fix
    conflicts: int = 0
    user_cells: int = 0
    rule_cells: int = 0
    normalized_cells: int = 0
    changed_cells: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    shards: list[ShardStats] = field(default_factory=list)
    workers: int = 1
    backend: str = "thread"
    elapsed_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)
    #: What cross-run probe-cache persistence did this run (``""`` when
    #: no cache path was given): "warm start (N entries from ...)" /
    #: "cold start (...)" / "skipped (...)", plus "; saved N entries".
    persistence: str = ""

    @property
    def incomplete(self) -> int:
        return self.tuples - self.completed

    @property
    def resumed_shards(self) -> int:
        return sum(1 for s in self.shards if s.resumed)

    @property
    def executed_shards(self) -> int:
        return sum(1 for s in self.shards if not s.resumed)

    @property
    def user_share(self) -> float:
        """Fraction of validated cells the user provided (paper: ~20%)."""
        total = self.user_cells + self.rule_cells
        return self.user_cells / total if total else 0.0

    @property
    def auto_share(self) -> float:
        """Fraction of validated cells CerFix fixed itself (paper: ~80%)."""
        total = self.user_cells + self.rule_cells
        return self.rule_cells / total if total else 0.0

    @property
    def throughput(self) -> float:
        """Tuples per second, wall clock (duplicates count — they were cleaned)."""
        return self.tuples / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def dedup_ratio(self) -> float:
        """How many input tuples each resolved group served on average."""
        return self.tuples / self.groups if self.groups else 0.0

    def describe(self) -> str:
        lines = [
            f"batch: {self.tuples} tuples in {self.elapsed_seconds:.3f}s "
            f"({self.throughput:.0f} tuples/s; {self.workers} worker(s), {self.backend})",
            f"  plan: {self.groups} groups, {self.duplicates_collapsed} duplicates collapsed "
            f"(x{self.dedup_ratio:.2f})",
            f"  fixes: {self.completed}/{self.tuples} certain, {self.conflicts} conflicts; "
            f"cells {self.user_cells} user / {self.rule_cells} rule "
            f"({self.auto_share:.0%} auto), {self.normalized_cells} normalized, "
            f"{self.changed_cells} changed",
            f"  cache: {self.cache.hits} hits / {self.cache.misses} misses "
            f"({self.cache.hit_rate:.0%} hit rate), {self.cache.evictions} evictions",
            f"  shards: {len(self.shards)} total, {self.resumed_shards} resumed from journal",
        ]
        if self.persistence:
            lines.append(f"  probe cache persistence: {self.persistence}")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "tuples": self.tuples,
            "groups": self.groups,
            "duplicates_collapsed": self.duplicates_collapsed,
            "dedup_ratio": self.dedup_ratio,
            "completed": self.completed,
            "incomplete": self.incomplete,
            "conflicts": self.conflicts,
            "user_cells": self.user_cells,
            "rule_cells": self.rule_cells,
            "user_share": self.user_share,
            "auto_share": self.auto_share,
            "normalized_cells": self.normalized_cells,
            "changed_cells": self.changed_cells,
            "cache": self.cache.to_json(),
            "shards": [s.to_json() for s in self.shards],
            "workers": self.workers,
            "backend": self.backend,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput": self.throughput,
            "resumed_shards": self.resumed_shards,
            "persistence": self.persistence,
            "notes": list(self.notes),
        }


def build_report(
    results: Sequence[ShardResult],
    *,
    tuples: int,
    groups: int,
    workers: int,
    backend: str,
    elapsed_seconds: float,
    evictions: int = 0,
    notes: Sequence[str] = (),
) -> BatchReport:
    """Aggregate shard results into one report.

    Per-group statistics are weighted by member count: every duplicate
    row received the group's repair, so it counts like the tuple it is.
    """
    report = BatchReport(
        tuples=tuples,
        groups=groups,
        duplicates_collapsed=tuples - groups,
        workers=workers,
        backend=backend,
        elapsed_seconds=elapsed_seconds,
        notes=list(notes),
    )
    cache = CacheStats(evictions=evictions)
    for result in results:
        report.shards.append(ShardStats.from_result(result))
        cache += CacheStats(hits=result.cache_hits, misses=result.cache_misses)
        for outcome in result.outcomes:
            n = len(outcome.members)
            if outcome.complete:
                report.completed += n
            report.conflicts += outcome.conflicts * n
            report.user_cells += outcome.user_cells * n
            report.rule_cells += outcome.rule_cells * n
            report.normalized_cells += outcome.normalized_cells * n
            report.changed_cells += outcome.changed_cells * n
    report.cache = cache
    report.shards.sort(key=lambda s: s.shard_id)
    return report
