"""The shard executor: run a repair plan serially or concurrently.

Each shard resolves its groups independently — monitor sessions never
mutate the master data, so groups are embarrassingly parallel and the
result of a group depends only on the group and the engine
configuration, never on scheduling. That is what makes the parallel
backends *bit-identical* to the serial path.

Backends:

``workers=1``
    The deterministic serial path: shards run in shard-id order on the
    calling thread, sharing one probe cache.
``backend="thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`; all shards share
    one probe cache (cross-shard hits) and the already-built master
    indexes. Best when probing dominates (index lookups release no
    meaningful GIL work, but cache sharing is maximal).
``backend="process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; the context is
    shipped to each worker once via the pool initializer and every
    process keeps its own probe cache. Best on multi-core hosts where
    the chase itself is the bottleneck.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import CerFixError
from repro.audit.log import AuditLog
from repro.batch.cache import CachingMasterDataManager, ProbeCache
from repro.batch.planner import PlanGroup, Shard
from repro.core.certainty import CertaintyMode, Scenario
from repro.core.region import RankedRegion
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager
from repro.monitor.session import MonitorSession
from repro.monitor.suggest import SuggestionStrategy
from repro.monitor.user import OracleUser
from repro.obs import trace
from repro.service.cache import LRUMemo

BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class BatchContext:
    """Everything a shard worker needs, picklable for the process backend.

    ``master`` carries its configured
    :class:`~repro.master.store.MasterStore` backend along: a sharded
    store pickles as raw tuples and rebuilds only the shards a worker's
    probes route to; the single store rebuilds its indexes eagerly in
    the worker (see :func:`_init_process`).

    ``scenario`` is typically a closure and therefore unpicklable; the
    pipeline downgrades ``backend="process"`` to threads when the
    context cannot be shipped (see :meth:`BatchCleaner.clean`).
    """

    ruleset: RuleSet
    master: MasterDataManager
    mode: CertaintyMode = CertaintyMode.STRICT
    scenario: Scenario | None = None
    strategy: SuggestionStrategy = SuggestionStrategy.CORE_FIRST
    regions: tuple[RankedRegion, ...] = ()
    validated: tuple[str, ...] = ()
    use_index: bool = True
    max_combos: int = 50_000
    max_rounds: int | None = None
    cache_size: int = 4096
    #: The clean-run's trace context (a picklable
    #: :class:`~repro.obs.trace.TraceCarrier`, or None with tracing
    #: off): thread workers re-activate it, process workers additionally
    #: configure their own exporter from its path/sample — so shard
    #: spans land in the same trace whatever the backend.
    trace: Any = None


@dataclass(frozen=True)
class GroupOutcome:
    """One resolved group: the repaired values plus per-tuple statistics."""

    members: tuple[int, ...]
    values: dict[str, Any]  # repaired values, shared by every member
    complete: bool
    rounds: int
    user_cells: int
    rule_cells: int
    normalized_cells: int
    changed_cells: int
    conflicts: int
    audit_events: tuple[dict, ...]  # serialized per-cell provenance

    def to_json(self) -> dict:
        return {
            "members": list(self.members),
            "values": self.values,
            "complete": self.complete,
            "rounds": self.rounds,
            "user_cells": self.user_cells,
            "rule_cells": self.rule_cells,
            "normalized_cells": self.normalized_cells,
            "changed_cells": self.changed_cells,
            "conflicts": self.conflicts,
            "audit_events": list(self.audit_events),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "GroupOutcome":
        events = tuple(
            {**e, "master_positions": tuple(e.get("master_positions", ()))}
            for e in obj["audit_events"]
        )
        return cls(
            members=tuple(obj["members"]),
            values=dict(obj["values"]),
            complete=obj["complete"],
            rounds=obj["rounds"],
            user_cells=obj["user_cells"],
            rule_cells=obj["rule_cells"],
            normalized_cells=obj["normalized_cells"],
            changed_cells=obj["changed_cells"],
            conflicts=obj["conflicts"],
            audit_events=events,
        )


@dataclass
class ShardResult:
    """What one shard produced, with exact per-shard cache counters."""

    shard_id: int
    outcomes: tuple[GroupOutcome, ...]
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0  # evictions while this shard ran (exact when
    # shards on one cache run serially — i.e. the serial and process paths)
    resumed: bool = False

    @property
    def groups(self) -> int:
        return len(self.outcomes)

    @property
    def tuples(self) -> int:
        return sum(len(o.members) for o in self.outcomes)

    def to_json(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "outcomes": [o.to_json() for o in self.outcomes],
        }

    @classmethod
    def from_json(cls, obj: dict, *, resumed: bool = False) -> "ShardResult":
        return cls(
            shard_id=obj["shard_id"],
            outcomes=tuple(GroupOutcome.from_json(o) for o in obj["outcomes"]),
            elapsed_seconds=obj["elapsed_seconds"],
            cache_hits=obj["cache_hits"],
            cache_misses=obj["cache_misses"],
            cache_evictions=obj.get("cache_evictions", 0),
            resumed=resumed,
        )


def _serialize_events(audit: AuditLog) -> tuple[dict, ...]:
    """Audit events as plain dicts (seq/tuple_id dropped — the pipeline
    reassigns both when replaying onto member tuples)."""
    return tuple(
        {
            "attr": e.attr,
            "old": e.old,
            "new": e.new,
            "source": e.source,
            "rule_id": e.rule_id,
            "master_positions": tuple(e.master_positions),
            "round_no": e.round_no,
        }
        for e in audit
    )


class _TranscriptRecorder:
    """An audit sink recording straight into the serialized event form.

    A group session's audit trail only ever becomes the replay template
    shipped in :attr:`GroupOutcome.audit_events`; recording through a
    full :class:`AuditLog` (lock, sequence numbers, per-tuple index,
    frozen event objects) just to strip all of that back off was
    measurable at batch scale. Same dict shape as
    :func:`_serialize_events` — seq/tuple_id are per-member anyway and
    get assigned at replay time.
    """

    __slots__ = ("events",)

    def __init__(self):
        self.events: list[dict] = []

    def record(
        self,
        tuple_id,
        attr,
        old,
        new,
        source,
        *,
        rule_id=None,
        master_positions=(),
        round_no=0,
    ) -> None:
        event = {
            "attr": attr,
            "old": old,
            "new": new,
            "source": source,
            "rule_id": rule_id,
            "master_positions": tuple(master_positions),
            "round_no": round_no,
        }
        # Stamp in the worker, where the group-chase span is live — the
        # pipeline replays these ids so provenance points at the span
        # that actually produced the fix, not the replay loop.
        trace_id, span_id = trace.current_ids()
        if trace_id is not None:
            event["trace_id"] = trace_id
            event["span_id"] = span_id
        self.events.append(event)


def _resolve_group(
    group: PlanGroup,
    ctx: BatchContext,
    manager: MasterDataManager,
    memo: LRUMemo | None = None,
    chase_memo: LRUMemo | None = None,
) -> GroupOutcome:
    """Clean one group's representative tuple.

    With truth, an :class:`OracleUser` drives the full monitor loop (the
    same machinery as the point-of-entry stream). Without truth, the
    chase runs from the trusted ``ctx.validated`` attributes and stops —
    rule-only repair; unvalidated cells keep their input values.
    """
    audit = _TranscriptRecorder()
    with trace.span(
        "group-chase", rep=group.representative, members=len(group.members)
    ):
        return _resolve_group_inner(group, ctx, manager, memo, chase_memo, audit)


def _resolve_group_inner(
    group: PlanGroup,
    ctx: BatchContext,
    manager: MasterDataManager,
    memo: LRUMemo | None,
    chase_memo: LRUMemo | None,
    audit: _TranscriptRecorder,
) -> GroupOutcome:
    session = MonitorSession(
        ctx.ruleset,
        manager,
        group.values,
        f"g{group.representative}",
        regions=ctx.regions,
        strategy=ctx.strategy,
        mode=ctx.mode,
        scenario=ctx.scenario,
        audit=audit,
        use_index=ctx.use_index,
        max_combos=ctx.max_combos,
        suggestion_memo=memo,
        chase_memo=chase_memo,
        trace=False,  # the group-chase span covers the whole session
    )
    if group.truth is not None:
        seed = [a for a in ctx.validated if a not in session.validated]
        if seed and not session.is_complete:
            session.validate({a: group.truth[a] for a in seed})
        session.run(OracleUser(group.truth), max_rounds=ctx.max_rounds)
    else:
        seed = [a for a in ctx.validated if a not in session.validated]
        if seed and not session.is_complete:
            session.assure(seed)
    provenance = session.provenance
    events = tuple(audit.events)
    return GroupOutcome(
        members=group.members,
        values=session.current_values(),
        complete=session.is_complete,
        rounds=session.round_no,
        user_cells=sum(1 for s in provenance.values() if s == "user"),
        rule_cells=sum(1 for s in provenance.values() if s == "rule"),
        normalized_cells=sum(1 for e in events if e["source"] == "normalize"),
        changed_cells=sum(1 for e in events if e["old"] != e["new"]),
        conflicts=len(session.conflicts),
        audit_events=events,
    )


def _run_shard(
    shard: Shard,
    ctx: BatchContext,
    base: MasterDataManager,
    cache: ProbeCache,
    memo: LRUMemo | None = None,
    chase_memo: LRUMemo | None = None,
) -> ShardResult:
    """Resolve every group of one shard behind a caching manager.

    The caching manager wraps the base manager's *store*, so whatever
    backend the run configured (single, sharded, sqlite) answers the
    cache misses — and its probe structures are shared across shards.
    ``memo`` is the run's shared suggestion memo: a suggestion is a
    deterministic function of the validated (attr, value) pairs plus
    the engine configuration — constant across one batch run — so
    sharing it across shards reorders when inference work happens but
    never what any group observes (the bit-identity guarantee holds).
    """
    manager = CachingMasterDataManager(base.store, cache)
    evictions_before = cache.evictions
    start = time.perf_counter()
    # Pool threads (and process workers) have no ambient span; the
    # carrier in the context re-parents this shard under the clean-run.
    with trace.activate(ctx.trace):
        with trace.span("shard", shard=shard.shard_id, groups=len(shard.groups)):
            outcomes = tuple(
                _resolve_group(g, ctx, manager, memo, chase_memo) for g in shard.groups
            )
    return ShardResult(
        shard_id=shard.shard_id,
        outcomes=outcomes,
        elapsed_seconds=time.perf_counter() - start,
        cache_hits=manager.hits,
        cache_misses=manager.misses,
        cache_evictions=cache.evictions - evictions_before,
    )


# -- process-backend plumbing -------------------------------------------------
# The context is shipped once per worker process via the pool initializer
# and parked in a module global; shard tasks then only carry the shard.

_PROCESS_CTX: BatchContext | None = None
_PROCESS_CACHE: ProbeCache | None = None
_PROCESS_MEMO: LRUMemo | None = None
_PROCESS_CHASE_MEMO: LRUMemo | None = None


def _init_process(ctx: BatchContext) -> None:
    global _PROCESS_CTX, _PROCESS_CACHE, _PROCESS_MEMO, _PROCESS_CHASE_MEMO
    _PROCESS_CTX = ctx
    # A spawned worker starts with tracing unconfigured; the carrier
    # ships the exporter config so worker spans reach the same file.
    if ctx.trace is not None and ctx.trace.path:
        trace.configure(ctx.trace.path, ctx.trace.sample)
    _PROCESS_CACHE = ProbeCache(ctx.cache_size)
    _PROCESS_MEMO = LRUMemo(max(ctx.cache_size, 1))
    _PROCESS_CHASE_MEMO = LRUMemo(max(ctx.cache_size, 1))
    # Store-specific warm-up: the single store rebuilds its (pickle-
    # stripped) indexes eagerly; the sharded store stays lazy so this
    # worker only materialises the shards its probes actually route to.
    ctx.master.prepare_worker(ctx.ruleset)


def _process_shard(shard: Shard) -> ShardResult:
    assert _PROCESS_CTX is not None and _PROCESS_CACHE is not None
    return _run_shard(
        shard,
        _PROCESS_CTX,
        _PROCESS_CTX.master,
        _PROCESS_CACHE,
        _PROCESS_MEMO,
        _PROCESS_CHASE_MEMO,
    )


class ShardExecutor:
    """Run shards under the selected backend, reporting results in
    completion order to an optional callback (the checkpoint journal)."""

    def __init__(
        self,
        ctx: BatchContext,
        *,
        workers: int = 1,
        backend: str = "thread",
        cache: ProbeCache | None = None,
    ):
        if workers < 1:
            raise CerFixError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise CerFixError(f"unknown backend {backend!r} (expected one of {BACKENDS})")
        self.ctx = ctx
        self.workers = workers
        self.backend = backend
        #: The serial/thread paths share one cache; exposed for reporting.
        #: A preloaded ``cache`` (cross-run persistence, see
        #: :func:`repro.batch.cache.load_probe_cache`) is used as-is.
        self.cache = cache if cache is not None else ProbeCache(ctx.cache_size)
        #: ...and one suggestion memo (see :func:`_run_shard`) plus one
        #: chase-transcript memo (see :func:`repro.core.chase.chase_memoized`
        #: — identical validated states across groups chase once).
        self.memo = LRUMemo(max(ctx.cache_size, 1))
        self.chase_memo = LRUMemo(max(ctx.cache_size, 1))

    def run(
        self,
        shards: Sequence[Shard],
        *,
        on_result: Callable[[ShardResult], None] | None = None,
    ) -> list[ShardResult]:
        """Execute ``shards``; returns results ordered by shard id.

        ``on_result`` fires once per shard as it completes (journal
        checkpointing); a worker failure propagates after already
        completed shards have been reported.
        """
        if not shards:
            return []
        if self.workers == 1:
            results = []
            for shard in shards:
                result = _run_shard(
                    shard, self.ctx, self.ctx.master, self.cache, self.memo,
                    self.chase_memo,
                )
                if on_result is not None:
                    on_result(result)
                results.append(result)
            return results
        if self.backend == "thread":
            pool = ThreadPoolExecutor(max_workers=self.workers)
            submit = lambda shard: pool.submit(  # noqa: E731
                _run_shard, shard, self.ctx, self.ctx.master, self.cache, self.memo,
                self.chase_memo,
            )
        else:
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_process,
                initargs=(self.ctx,),
            )
            submit = lambda shard: pool.submit(_process_shard, shard)  # noqa: E731
        results: dict[int, ShardResult] = {}
        with pool:
            pending = {submit(shard) for shard in shards}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    result = future.result()  # propagates worker failures
                    results[result.shard_id] = result
                    if on_result is not None:
                        on_result(result)
        return [results[s.shard_id] for s in shards]
