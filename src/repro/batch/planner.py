"""The batch planner: fingerprint, deduplicate and shard a dirty relation.

Whole-relation workloads are repetitive: the same customer re-enters the
same transaction, the same noise pattern corrupts the same clean tuple.
The planner exploits this by fingerprinting every tuple with its *repair
signature* — the value vector that determines the repair transcript —
and grouping rows that share one. Each group is resolved once by a
shard worker and the outcome is replayed onto every member row.

The signature covers the dirty values of **all** attributes plus (when
ground truth drives an oracle user) the truth values: a monitor session
may ask the user about any attribute, so any cell can influence the
transcript. Two rows collapse into one group exactly when their repair
is guaranteed identical.

Groups are dealt round-robin into :class:`Shard` s (deterministically,
by first-seen order), so shard workloads stay balanced without
inspecting group cost. The plan's ``fingerprint`` ties a checkpoint
journal to the exact inputs and partitioning that produced it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import CerFixError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def repair_signature(
    values: Mapping[str, Any],
    truth: Mapping[str, Any] | None,
    schema: Schema,
) -> tuple:
    """The value vector that determines a tuple's repair transcript."""
    sig = tuple(values[n] for n in schema.names)
    if truth is not None:
        sig += tuple(truth[n] for n in schema.names)
    return sig


@dataclass(frozen=True)
class PlanGroup:
    """Rows sharing one repair signature; resolved once per batch."""

    representative: int  # position of the first member in the dirty relation
    members: tuple[int, ...]  # all positions sharing the signature
    values: dict[str, Any]  # the (dirty) input values
    truth: dict[str, Any] | None  # oracle answers, when truth is supplied

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class Shard:
    """One unit of (possibly concurrent) execution."""

    shard_id: int
    groups: tuple[PlanGroup, ...]

    @property
    def tuples(self) -> int:
        return sum(g.size for g in self.groups)


@dataclass(frozen=True)
class RepairPlan:
    """The full batch plan: deduplicated groups dealt into shards."""

    groups: tuple[PlanGroup, ...]
    shards: tuple[Shard, ...]
    total_tuples: int
    fingerprint: str
    dedupe: bool

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def duplicates_collapsed(self) -> int:
        """Rows that ride along on another row's repair."""
        return self.total_tuples - self.n_groups

    def describe(self) -> str:
        return (
            f"plan: {self.total_tuples} tuples -> {self.n_groups} groups "
            f"({self.duplicates_collapsed} duplicates collapsed) in "
            f"{len(self.shards)} shard(s)"
        )


def build_plan(
    dirty: Relation,
    truth: Relation | None = None,
    *,
    shards: int = 1,
    dedupe: bool = True,
    context: Sequence[str] = (),
) -> RepairPlan:
    """Plan the batch repair of ``dirty`` (optionally oracle-backed by
    ``truth``).

    ``context`` is extra identity (rule ids, mode, …) folded into the
    plan fingerprint so a checkpoint journal written under one engine
    configuration is never resumed under another.
    """
    if shards < 1:
        raise CerFixError(f"shards must be >= 1, got {shards}")
    if truth is not None and len(truth) != len(dirty):
        raise CerFixError(
            f"truth has {len(truth)} rows but the dirty relation has {len(dirty)}"
        )
    schema = dirty.schema
    by_signature: dict[tuple, list[int]] = {}
    signatures: list[tuple] = []
    for i, row in enumerate(dirty.rows()):
        truth_row = truth.row(i).to_dict() if truth is not None else None
        sig = repair_signature(row.to_dict(), truth_row, schema)
        if not dedupe:
            sig = sig + (i,)  # unique per row: every row is its own group
        signatures.append(sig)
        by_signature.setdefault(sig, []).append(i)

    groups = []
    for members in by_signature.values():  # insertion (first-seen) order
        rep = members[0]
        groups.append(
            PlanGroup(
                representative=rep,
                members=tuple(members),
                values=dirty.row(rep).to_dict(),
                truth=truth.row(rep).to_dict() if truth is not None else None,
            )
        )

    n_shards = max(1, min(shards, len(groups))) if groups else 1
    shard_list = tuple(
        Shard(shard_id=i, groups=tuple(groups[i::n_shards]))
        for i in range(n_shards)
    )

    digest = hashlib.sha256()
    digest.update(repr(tuple(schema.names)).encode("utf-8"))
    digest.update(repr(tuple(context)).encode("utf-8"))
    digest.update(f"shards={n_shards};dedupe={dedupe}".encode("utf-8"))
    for sig in signatures:
        digest.update(repr(sig).encode("utf-8"))

    return RepairPlan(
        groups=tuple(groups),
        shards=shard_list,
        total_tuples=len(dirty),
        fingerprint=digest.hexdigest(),
        dedupe=dedupe,
    )
