"""The batch planner: fingerprint, deduplicate and shard a dirty relation.

Whole-relation workloads are repetitive: the same customer re-enters the
same transaction, the same noise pattern corrupts the same clean tuple.
The planner exploits this by fingerprinting every tuple with its *repair
signature* — the value vector that determines the repair transcript —
and grouping rows that share one. Each group is resolved once by a
shard worker and the outcome is replayed onto every member row.

The signature covers the dirty values of the *transcript-relevant*
attributes plus (when ground truth drives an oracle user) the truth
values of **all** attributes. Relevant means: read by some rule (its
LHS or pattern), written by some rule (its target — the chase compares
the prescribed value against the current one when checking conflicts),
mentioned by a precomputed region's attributes or tableau, or seeded
as trusted. A dirty value *outside* that set can influence exactly two
things — the ``old`` field of the user-validation audit event and the
final value when the cell is never validated — and the pipeline
restores both per member row at assembly/replay time
(:meth:`repro.batch.pipeline.BatchCleaner`), so two rows collapse into
one group exactly when their repair is guaranteed identical. Pass
``projection=None`` to fall back to whole-row signatures.

Groups are dealt round-robin into :class:`Shard` s (deterministically,
by first-seen order), so shard workloads stay balanced without
inspecting group cost. The plan's ``fingerprint`` ties a checkpoint
journal to the exact inputs and partitioning that produced it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.ruleset import RuleSet
from repro.errors import CerFixError
from repro.obs.metrics import get_registry
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: Sentinel replacing projected-out dirty values in a repair signature.
_ELIDED = "\x00<elided>"


def transcript_projection(
    ruleset: RuleSet,
    *,
    regions: Sequence[Any] = (),
    validated: Sequence[str] = (),
) -> frozenset[str]:
    """The attributes whose *dirty* values can influence a repair
    transcript.

    Everything a session's machinery reads from unvalidated state:
    rule reads (LHS + pattern — gate rule firing), rule targets (the
    chase's conflict check compares the prescribed value against the
    current cell), region attributes and tableau patterns (region
    compatibility checks), and the trusted seed columns. Suggestions
    read only *validated* values (every strategy treats unvalidated
    cells as unknown), so they add nothing beyond the above.
    """
    attrs: set[str] = set(validated)
    for rule in ruleset:
        attrs |= set(rule.reads)
        attrs.add(rule.target)
    for ranked in regions:
        region = getattr(ranked, "region", ranked)
        attrs |= set(region.attrs)
        for pattern in region.tableau:
            attrs |= set(pattern.attrs)
    return frozenset(attrs)


def repair_signature(
    values: Mapping[str, Any],
    truth: Mapping[str, Any] | None,
    schema: Schema,
    projection: frozenset[str] | None = None,
) -> tuple:
    """The value vector that determines a tuple's repair transcript.

    With a ``projection``, dirty values outside it are elided (see
    :func:`transcript_projection`); truth values always cover the whole
    schema — every validated cell ends at its truth value.
    """
    if projection is None:
        sig = tuple(values[n] for n in schema.names)
    else:
        sig = tuple(values[n] if n in projection else _ELIDED for n in schema.names)
    if truth is not None:
        sig += tuple(truth[n] for n in schema.names)
    return sig


@dataclass(frozen=True)
class PlanGroup:
    """Rows sharing one repair signature; resolved once per batch."""

    representative: int  # position of the first member in the dirty relation
    members: tuple[int, ...]  # all positions sharing the signature
    values: dict[str, Any]  # the (dirty) input values
    truth: dict[str, Any] | None  # oracle answers, when truth is supplied

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class Shard:
    """One unit of (possibly concurrent) execution."""

    shard_id: int
    groups: tuple[PlanGroup, ...]

    @property
    def tuples(self) -> int:
        return sum(g.size for g in self.groups)


@dataclass(frozen=True)
class RepairPlan:
    """The full batch plan: deduplicated groups dealt into shards."""

    groups: tuple[PlanGroup, ...]
    shards: tuple[Shard, ...]
    total_tuples: int
    fingerprint: str
    dedupe: bool

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def duplicates_collapsed(self) -> int:
        """Rows that ride along on another row's repair."""
        return self.total_tuples - self.n_groups

    def describe(self) -> str:
        return (
            f"plan: {self.total_tuples} tuples -> {self.n_groups} groups "
            f"({self.duplicates_collapsed} duplicates collapsed) in "
            f"{len(self.shards)} shard(s)"
        )


def build_plan(
    dirty: Relation,
    truth: Relation | None = None,
    *,
    shards: int = 1,
    dedupe: bool = True,
    context: Sequence[str] = (),
    projection: frozenset[str] | None = None,
) -> RepairPlan:
    """Plan the batch repair of ``dirty`` (optionally oracle-backed by
    ``truth``).

    ``context`` is extra identity (rule ids, mode, …) folded into the
    plan fingerprint so a checkpoint journal written under one engine
    configuration is never resumed under another. ``projection``
    restricts the dirty half of the repair signature to the
    transcript-relevant attributes (:func:`transcript_projection`),
    collapsing rows that differ only in payload columns; the caller
    (the pipeline) is responsible for restoring per-member payload
    values at assembly/replay time.
    """
    if shards < 1:
        raise CerFixError(f"shards must be >= 1, got {shards}")
    if truth is not None and len(truth) != len(dirty):
        raise CerFixError(
            f"truth has {len(truth)} rows but the dirty relation has {len(dirty)}"
        )
    schema = dirty.schema
    by_signature: dict[tuple, list[int]] = {}
    signatures: list[tuple] = []
    if projection is not None and projection >= frozenset(schema.names):
        projection = None  # everything is relevant — whole-row semantics
    # Signatures are computed column-wise: one decode pass per attribute
    # over the relation's value arrays (elided attributes never decode at
    # all), then one zip — same tuples, in the same order, as the
    # per-row :func:`repair_signature`, without materialising a dict per
    # row. ``repair_signature`` remains the specification (and the
    # parity tests hold the two paths together).
    n_rows = len(dirty)
    parts: list[list] = [
        dirty.column(name)
        if projection is None or name in projection
        else [_ELIDED] * n_rows
        for name in schema.names
    ]
    if truth is not None:
        parts.extend(truth.column(name) for name in schema.names)
    sig_rows = zip(*parts) if parts else iter(() for _ in range(n_rows))
    for i, sig in enumerate(sig_rows):
        if not dedupe:
            sig = sig + (i,)  # unique per row: every row is its own group
        signatures.append(sig)
        by_signature.setdefault(sig, []).append(i)

    groups = []
    for members in by_signature.values():  # insertion (first-seen) order
        rep = members[0]
        groups.append(
            PlanGroup(
                representative=rep,
                members=tuple(members),
                values=dirty.row(rep).to_dict(),
                truth=truth.row(rep).to_dict() if truth is not None else None,
            )
        )

    n_shards = max(1, min(shards, len(groups))) if groups else 1
    shard_list = tuple(
        Shard(shard_id=i, groups=tuple(groups[i::n_shards]))
        for i in range(n_shards)
    )

    digest = hashlib.sha256()
    digest.update(repr(tuple(schema.names)).encode("utf-8"))
    digest.update(repr(tuple(context)).encode("utf-8"))
    digest.update(f"shards={n_shards};dedupe={dedupe}".encode("utf-8"))
    projected = "*" if projection is None else ",".join(sorted(projection))
    digest.update(f"projection={projected}".encode("utf-8"))
    for sig in signatures:
        digest.update(repr(sig).encode("utf-8"))

    reg = get_registry()
    reg.inc("cerfix.plan.rows", len(dirty))
    reg.inc("cerfix.plan.groups", len(groups))
    reg.inc("cerfix.plan.deduped_rows", len(dirty) - len(groups))

    return RepairPlan(
        groups=tuple(groups),
        shards=shard_list,
        total_tuples=len(dirty),
        fingerprint=digest.hexdigest(),
        dedupe=dedupe,
    )
