"""The checkpoint journal: crash-safe progress for batch runs.

A batch run over millions of rows must survive interruption without
recleaning what it already finished. The journal is an append-only JSONL
file: a header line binding it to one plan fingerprint, then one line
per completed shard carrying everything the pipeline needs to assemble
that shard's contribution (repaired values, statistics, audit events).

On resume the pipeline loads the journal, keeps shards whose header
matches the current plan fingerprint, and executes only the rest. A
journal written under a different input relation, sharding, or engine
configuration fingerprints differently and is discarded wholesale — a
stale checkpoint can never leak rows into a fresh run. A torn final
line (the classic mid-write crash) is dropped silently.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.batch.executor import ShardResult


class CheckpointJournal:
    """Per-shard checkpointing for one batch run.

    >>> journal = CheckpointJournal(path)
    >>> done = journal.open(plan.fingerprint)   # {} on a fresh/stale journal
    >>> journal.record(shard_result)            # append + flush one shard
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fingerprint: str | None = None

    def load(self, fingerprint: str) -> dict[int, ShardResult]:
        """Completed shards recorded for ``fingerprint`` (stale → empty)."""
        if not self.path.exists():
            return {}
        done: dict[int, ShardResult] = {}
        header_ok = False
        with self.path.open(encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a mid-write crash; ignore the rest
                if obj.get("kind") == "header":
                    if obj.get("fingerprint") != fingerprint:
                        return {}
                    header_ok = True
                elif obj.get("kind") == "shard" and header_ok:
                    result = ShardResult.from_json(obj, resumed=True)
                    done[result.shard_id] = result
        return done if header_ok else {}

    def open(self, fingerprint: str) -> dict[int, ShardResult]:
        """Load resumable shards and (re)initialise the file for appends.

        A fresh or stale journal is rewritten with a new header; a
        matching one is compacted to header + valid shard lines (torn
        tails dropped) so subsequent appends are clean.
        """
        done = self.load(fingerprint)
        self._fingerprint = fingerprint
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic rewrite: a crash mid-compaction must not destroy the
        # checkpoints being compacted, so write aside and rename over.
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as f:
            f.write(json.dumps({"kind": "header", "fingerprint": fingerprint}) + "\n")
            for shard_id in sorted(done):
                f.write(json.dumps({"kind": "shard", **done[shard_id].to_json()}) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path)
        return done

    def record(self, result: ShardResult) -> None:
        """Append one completed shard and flush it to disk."""
        if self._fingerprint is None:
            raise RuntimeError("journal.record() before journal.open()")
        with self.path.open("a", encoding="utf-8") as f:
            f.write(json.dumps({"kind": "shard", **result.to_json()}) + "\n")
            f.flush()
            os.fsync(f.fileno())
