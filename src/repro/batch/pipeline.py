"""The batch cleaning pipeline: plan → execute → assemble.

:class:`BatchCleaner` is the orchestrator behind
:meth:`CerFix.clean_relation`: it fingerprints and deduplicates the
dirty relation (:mod:`repro.batch.planner`), resumes any checkpointed
shards (:mod:`repro.batch.journal`), runs the rest under the selected
backend (:mod:`repro.batch.executor`), then assembles the repaired
relation, replays per-cell provenance into the engine's audit log, and
aggregates a :class:`~repro.batch.report.BatchReport`.

Scheduling never influences output: groups are independent and probing
is deterministic, so ``workers=4`` (threads or processes) produces the
same repaired relation, byte for byte, as the serial path — the
property the batch test suite pins down.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import CerFixError
from repro.audit.log import AuditLog
from repro.batch.cache import load_probe_cache, save_probe_cache
from repro.batch.executor import BatchContext, ShardExecutor, ShardResult
from repro.batch.journal import CheckpointJournal
from repro.batch.planner import build_plan, transcript_projection
from repro.batch.report import BatchReport, build_report
from repro.core.certainty import CertaintyMode, Scenario
from repro.core.region import RankedRegion
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager
from repro.master.store import MasterStore, resolve_master
from repro.monitor.suggest import SuggestionStrategy
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.relational.relation import Relation


@dataclass
class BatchResult:
    """A repaired relation plus the run's report."""

    relation: Relation
    report: BatchReport

    def __len__(self) -> int:
        return len(self.relation)


class BatchCleaner:
    """Whole-relation cleaning with dedup, caching, sharding and resume.

    Construction mirrors :class:`~repro.engine.CerFix`; per-run knobs
    (workers, backend, sharding, journal) live on :meth:`clean`.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        master: Relation | MasterDataManager | MasterStore,
        *,
        mode: CertaintyMode = CertaintyMode.STRICT,
        scenario: Scenario | None = None,
        strategy: SuggestionStrategy = SuggestionStrategy.CORE_FIRST,
        regions: Sequence[RankedRegion] = (),
        audit: AuditLog | None = None,
        use_index: bool = True,
        max_combos: int = 50_000,
        cache_size: int = 4096,
        store: str | None = None,
        store_shards: int = 4,
        store_path: str | Path | None = None,
        store_urls: Sequence | None = None,
    ):
        """``master`` may be a bare relation, a manager, or a
        :class:`~repro.master.store.MasterStore`. ``store`` selects a
        backend by name for the bare-relation form (``"single"``,
        ``"sharded"``, ``"sqlite"``, ``"remote"``); ``store_shards`` /
        ``store_path`` / ``store_urls`` parameterise the sharded,
        sqlite and remote backends (``store_urls`` entries may be
        replica-url lists — see
        :class:`~repro.master.remote.RemoteMasterStore`)."""
        self.ruleset = ruleset
        master = resolve_master(
            master, store, shards=store_shards, path=store_path, urls=store_urls
        )
        if master is None:
            raise CerFixError(
                "master data is required (master=None is only valid with "
                "store='remote')"
            )
        self.master = master if isinstance(master, MasterDataManager) else MasterDataManager(master)
        self.mode = mode
        self.scenario = scenario
        self.strategy = strategy
        self.regions = tuple(regions)
        self.audit = audit if audit is not None else AuditLog()
        self.use_index = use_index
        self.max_combos = max_combos
        self.cache_size = cache_size

    def clean(
        self,
        dirty: Relation,
        truth: Relation | None = None,
        *,
        workers: int = 1,
        backend: str = "thread",
        shards: int | None = None,
        dedupe: bool = True,
        validated: Sequence[str] = (),
        journal_path: str | Path | None = None,
        cache_path: str | Path | None = None,
        tuple_ids: Sequence[str] | None = None,
        max_rounds: int | None = None,
        root_span: bool = True,
    ) -> BatchResult:
        """Clean ``dirty`` and return the repaired relation + report.

        With ``truth``, every tuple is driven through the full monitor
        loop by an oracle user (the batch equivalent of
        :meth:`CerFix.stream`). Without it, the chase runs rule-only
        repairs from the trusted ``validated`` columns. ``journal_path``
        enables checkpoint/resume; an interrupted run picks up where it
        stopped as long as inputs and configuration are unchanged.
        ``cache_path`` persists the probe cache across runs: the run
        starts warm from a snapshot stamped for this exact (master
        content, rule set) pair — anything else degrades to a cold
        start — and saves the cache back on completion. The report's
        ``persistence`` line says which happened.

        ``root_span=False`` suppresses the ``clean-run`` span for
        callers that already own one — the paged DB cleaner wraps a
        whole run in its own ``clean-run`` and nests each call here
        under a ``page`` span instead.
        """
        got, want = set(dirty.schema.names), set(self.ruleset.input_schema.names)
        if got != want:
            raise CerFixError(
                f"dirty relation does not match the input schema: "
                f"missing {sorted(want - got)}, unexpected {sorted(got - want)}"
            )
        if tuple_ids is not None and len(tuple_ids) != len(dirty):
            raise CerFixError(
                f"got {len(tuple_ids)} tuple ids for {len(dirty)} rows"
            )
        unknown = [a for a in validated if a not in self.ruleset.input_schema]
        if unknown:
            raise CerFixError(f"validated attributes {unknown} not in the input schema")
        if root_span:
            with trace.span(
                "clean-run", rows=len(dirty), workers=workers, backend=backend
            ):
                return self._clean(
                    dirty,
                    truth,
                    workers=workers,
                    backend=backend,
                    shards=shards,
                    dedupe=dedupe,
                    validated=validated,
                    journal_path=journal_path,
                    cache_path=cache_path,
                    tuple_ids=tuple_ids,
                    max_rounds=max_rounds,
                )
        return self._clean(
            dirty,
            truth,
            workers=workers,
            backend=backend,
            shards=shards,
            dedupe=dedupe,
            validated=validated,
            journal_path=journal_path,
            cache_path=cache_path,
            tuple_ids=tuple_ids,
            max_rounds=max_rounds,
        )

    def _clean(
        self,
        dirty: Relation,
        truth: Relation | None,
        *,
        workers: int,
        backend: str,
        shards: int | None,
        dedupe: bool,
        validated: Sequence[str],
        journal_path: str | Path | None,
        cache_path: str | Path | None,
        tuple_ids: Sequence[str] | None,
        max_rounds: int | None,
    ) -> BatchResult:
        start = time.perf_counter()
        notes: list[str] = []

        n_shards = shards if shards is not None else max(1, workers) * 4
        # Dedup on transcript-relevant attributes only: payload columns
        # no rule or region ever looks at cannot change a repair, so
        # rows differing only there share one group. Assembly and audit
        # replay restore each member's own payload values below.
        projection = transcript_projection(
            self.ruleset, regions=self.regions, validated=validated
        )
        if projection >= frozenset(self.ruleset.input_schema.names):
            projection = None
        with trace.span("plan", rows=len(dirty), shards=n_shards):
            plan = build_plan(
                dirty,
                truth,
                shards=n_shards,
                dedupe=dedupe,
                # The master content digest is O(|master|); only the journal
                # ever consumes the fingerprint, so only pay for it then.
                context=self._context_key(
                    validated, max_rounds, include_master=journal_path is not None
                ),
                projection=projection,
            )

        # The scenario generator is only ever consulted under SCENARIO
        # mode; dropping it otherwise keeps the context picklable (it is
        # typically a closure), which is what the process backend needs.
        scenario = self.scenario if self.mode is CertaintyMode.SCENARIO else None
        ctx = BatchContext(
            ruleset=self.ruleset,
            master=self.master,
            mode=self.mode,
            scenario=scenario,
            strategy=self.strategy,
            regions=self.regions,
            validated=tuple(validated),
            use_index=self.use_index,
            max_combos=self.max_combos,
            max_rounds=max_rounds,
            cache_size=self.cache_size,
            trace=trace.carrier(),  # the clean-run span, ready to ship
        )
        # Probe only the fields that can realistically be unpicklable
        # (scenario closures, exotic regions/rules) — not the master
        # relation, whose serialization can be large and is known-good.
        if workers > 1 and backend == "process" and not _picklable(
            (ctx.scenario, ctx.regions, ctx.ruleset)
        ):
            backend = "thread"
            notes.append(
                "process backend unavailable (context not picklable — typically a "
                "scenario closure); fell back to threads"
            )
        # Workers of the process backend rebuild the master indexes
        # themselves (pickling strips them); the parent only needs them
        # when it resolves shards on its own threads.
        if not (workers > 1 and backend == "process"):
            self.master.prebuild(self.ruleset)

        journal = CheckpointJournal(journal_path) if journal_path is not None else None
        done: dict[int, ShardResult] = journal.open(plan.fingerprint) if journal else {}
        pending = [s for s in plan.shards if s.shard_id not in done]

        # Cross-run probe-cache persistence (serial/thread paths only:
        # process workers hold private caches the parent never sees).
        persistence = ""
        preloaded = None
        cache_stamp: dict | None = None
        if cache_path is not None:
            if workers > 1 and backend == "process":
                persistence = "skipped (process workers hold private caches)"
            else:
                cache_stamp = {
                    "master_digest": self.master.content_digest(),
                    "rule_ids": [r.rule_id for r in self.ruleset],
                }
                preloaded, persistence = load_probe_cache(
                    cache_path, maxsize=self.cache_size, **cache_stamp
                )

        executor = ShardExecutor(
            ctx, workers=workers, backend=backend, cache=preloaded
        )
        on_result = journal.record if journal is not None else None
        fresh = executor.run(pending, on_result=on_result)
        results = sorted(
            list(done.values()) + list(fresh), key=lambda r: r.shard_id
        )

        relation = self._assemble(dirty, results, projection)
        changed_cells = self._replay_audit(results, tuple_ids, dirty, projection)
        # The serial/thread paths share the executor's cache (its counter
        # is exact there); process workers each hold a private cache, so
        # their evictions only exist as per-shard deltas.
        if workers > 1 and backend == "process":
            evictions = sum(r.cache_evictions for r in results if not r.resumed)
        else:
            evictions = executor.cache.evictions
        report = build_report(
            results,
            tuples=plan.total_tuples,
            groups=plan.n_groups,
            workers=workers,
            backend=backend,
            elapsed_seconds=time.perf_counter() - start,
            evictions=evictions,
            notes=notes,
        )
        # The replay count is per-member exact (projected groups patch
        # the old values member by member); the per-group aggregate
        # would over- or under-count payload-column changes.
        report.changed_cells = changed_cells
        self._publish_metrics(executor, results, evictions)
        if cache_stamp is not None:
            saved = save_probe_cache(executor.cache, cache_path, **cache_stamp)
            persistence += f"; saved {saved} entries"
        report.persistence = persistence
        return BatchResult(relation=relation, report=report)

    # -- internals -----------------------------------------------------------

    def _publish_metrics(
        self,
        executor: ShardExecutor,
        results: Sequence[ShardResult],
        evictions: int,
    ) -> None:
        """Fold this run's totals into the process-wide registry — the
        live numbers behind the explorers' ``/api/metrics`` probe-cache
        and suggestion-memo sections (per-shard deltas, so the counts
        are exact under every backend, process workers included)."""
        reg = get_registry()
        reg.inc("cerfix.batch.runs")
        reg.inc("cerfix.batch.tuples", sum(r.tuples for r in results))
        reg.inc("cerfix.batch.groups", sum(r.groups for r in results))
        reg.inc("cerfix.probe_cache.hits", sum(r.cache_hits for r in results))
        reg.inc("cerfix.probe_cache.misses", sum(r.cache_misses for r in results))
        reg.inc("cerfix.probe_cache.evictions", evictions)
        reg.set_gauge("cerfix.probe_cache.size", len(executor.cache))
        reg.set_gauge("cerfix.probe_cache.maxsize", executor.cache.maxsize)
        memo_stats = executor.memo.stats
        reg.inc("cerfix.suggestion_memo.hits", memo_stats.hits)
        reg.inc("cerfix.suggestion_memo.misses", memo_stats.misses)
        reg.set_gauge("cerfix.suggestion_memo.size", len(executor.memo))
        reg.set_gauge("cerfix.suggestion_memo.maxsize", executor.memo.maxsize)

    def _context_key(
        self,
        validated: Sequence[str],
        max_rounds: int | None,
        *,
        include_master: bool = True,
    ) -> tuple[str, ...]:
        """Engine-configuration identity folded into the plan fingerprint.

        The master data is identified by *content* digest, not cardinality:
        a checkpoint computed against different master tuples must never be
        resumed, even when the row count happens to match. The digest is
        store-backend-independent (see
        :meth:`~repro.master.store.MasterStore.content_digest`), so a
        journal written under one backend resumes under another."""
        if include_master:
            master_id = self.master.content_digest()
        else:
            master_id = "unjournaled"
        return (
            ",".join(r.rule_id for r in self.ruleset),
            f"master={master_id}",
            self.mode.value,
            self.strategy.value,
            f"validated={','.join(validated)}",
            f"max_rounds={max_rounds}",
            f"regions={len(self.regions)}",
        )

    def _assemble(
        self,
        dirty: Relation,
        results: Sequence[ShardResult],
        projection: frozenset[str] | None = None,
    ) -> Relation:
        """Assemble the repaired relation from group outcomes.

        Under a projection, a payload attribute (outside the projection)
        that the transcript never touched kept its *input* value — which
        differs per member — so those cells are restored from each
        member's own dirty row rather than the representative's."""
        schema = self.ruleset.input_schema
        names = schema.names
        rows: list[tuple | None] = [None] * len(dirty)
        raw = dirty.raw_tuples() if projection is not None else None
        for result in results:
            for outcome in result.outcomes:
                values = tuple(outcome.values[n] for n in names)
                untouched = self._untouched_payload(outcome, projection)
                if not untouched:
                    for member in outcome.members:
                        rows[member] = values
                    continue
                for member in outcome.members:
                    member_row = raw[member]
                    patched = list(values)
                    for i in untouched:
                        patched[i] = member_row[i]
                    rows[member] = tuple(patched)
        missing = [i for i, r in enumerate(rows) if r is None]
        if missing:
            raise CerFixError(f"batch results left rows {missing[:5]}... unassembled")
        return Relation(schema, rows)

    def _untouched_payload(self, outcome, projection: frozenset[str] | None) -> list[int]:
        """Column positions outside the projection with no audit event —
        cells the repair provably never read or wrote."""
        if projection is None:
            return []
        touched = {e["attr"] for e in outcome.audit_events}
        return [
            i
            for i, n in enumerate(self.ruleset.input_schema.names)
            if n not in projection and n not in touched
        ]

    def _replay_audit(
        self,
        results: Sequence[ShardResult],
        tuple_ids: Sequence[str] | None,
        dirty: Relation,
        projection: frozenset[str] | None = None,
    ) -> int:
        """Replay per-cell provenance onto every member tuple; returns
        the exact changed-cell count across all members.

        Each duplicate member genuinely received the group's repair, so
        each gets its own audit trail (ids follow the stream convention:
        ``t<row>`` unless ``tuple_ids`` overrides). Under a projection,
        a user validation of a payload attribute replays with *this
        member's* input value as ``old`` — that is what a serial monitor
        session on the member would have recorded."""
        changed = 0
        names = self.ruleset.input_schema.names
        position = {n: i for i, n in enumerate(names)}
        raw = dirty.raw_tuples() if projection is not None else None
        for result in results:
            for outcome in result.outcomes:
                for member in outcome.members:
                    tid = tuple_ids[member] if tuple_ids is not None else f"t{member}"
                    for e in outcome.audit_events:
                        old = e["old"]
                        if projection is not None and e["attr"] not in projection:
                            old = raw[member][position[e["attr"]]]
                        if old != e["new"]:
                            changed += 1
                        self.audit.record(
                            tid,
                            e["attr"],
                            old,
                            e["new"],
                            e["source"],
                            rule_id=e["rule_id"],
                            master_positions=tuple(e["master_positions"]),
                            round_no=e["round_no"],
                            # Worker-recorded span ids: provenance points
                            # at the group-chase that produced the fix.
                            trace_id=e.get("trace_id"),
                            span_id=e.get("span_id"),
                        )
        return changed


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False
