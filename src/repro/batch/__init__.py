"""Batch repair pipeline: sharded, parallel, cache-accelerated
whole-relation cleaning.

CerFix's monitor cleans one tuple at the point of entry; this package
scales the same certain-fix machinery to whole relations:

- :mod:`~repro.batch.planner` — fingerprint tuples, collapse duplicate
  repair signatures, deal groups into shards;
- :mod:`~repro.batch.cache` — a bounded LRU over master-data probes;
- :mod:`~repro.batch.executor` — serial / thread / process shard
  execution with bit-identical output;
- :mod:`~repro.batch.journal` — per-shard checkpoints for crash-safe
  resume;
- :mod:`~repro.batch.report` — the run's aggregate accounting;
- :mod:`~repro.batch.pipeline` — the orchestrator behind
  :meth:`CerFix.clean_relation`.
"""

from repro.batch.cache import CacheStats, CachingMasterDataManager, ProbeCache
from repro.batch.executor import BatchContext, GroupOutcome, ShardExecutor, ShardResult
from repro.batch.journal import CheckpointJournal
from repro.batch.pipeline import BatchCleaner, BatchResult
from repro.batch.planner import PlanGroup, RepairPlan, Shard, build_plan, repair_signature
from repro.batch.report import BatchReport, ShardStats, build_report

__all__ = [
    "BatchCleaner",
    "BatchContext",
    "BatchReport",
    "BatchResult",
    "CacheStats",
    "CachingMasterDataManager",
    "CheckpointJournal",
    "GroupOutcome",
    "PlanGroup",
    "ProbeCache",
    "RepairPlan",
    "Shard",
    "ShardExecutor",
    "ShardResult",
    "ShardStats",
    "build_plan",
    "build_report",
    "repair_signature",
]
